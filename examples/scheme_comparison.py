#!/usr/bin/env python3
"""Compare Baseline, Dedup_SHA1, DeWrite, and ESD head-to-head.

Reproduces the core of the paper's evaluation (Figures 11/12/13/16 in
miniature) on a handful of applications: write reduction, write/read
speedups, energy, and IPC — all normalized to the Baseline scheme.

Run:
    python examples/scheme_comparison.py [app ...]
"""

import sys

from repro.analysis.reporting import format_table
from repro.dedup import SCHEME_NAMES
from repro.sim import run_app, scaled_system_config

DEFAULT_APPS = ["gcc", "deepsjeng", "lbm", "leela"]
REQUESTS = 15_000


def compare(app: str) -> list:
    results = run_app(app, SCHEME_NAMES, requests=REQUESTS,
                      system=scaled_system_config())
    base = results["Baseline"]
    rows = []
    for name in SCHEME_NAMES:
        r = results[name]
        rows.append([
            app,
            name,
            r.write_reduction,
            base.mean_write_latency_ns / r.mean_write_latency_ns,
            base.mean_read_latency_ns / r.mean_read_latency_ns,
            r.total_energy_nj / base.total_energy_nj,
            r.ipc / base.ipc,
        ])
    return rows


def main() -> None:
    apps = sys.argv[1:] or DEFAULT_APPS
    rows = []
    for app in apps:
        print(f"simulating {app} ({REQUESTS} requests x 4 schemes)...")
        rows.extend(compare(app))
    print()
    print(format_table(
        ["app", "scheme", "write_reduction", "write_speedup",
         "read_speedup", "energy_vs_base", "ipc_vs_base"],
        rows,
        title="Scheme comparison (all ratios vs Baseline)",
        float_format="{:.2f}"))
    print()
    print("Expected shapes (paper, Section IV): ESD has the highest "
          "speedups and lowest energy;")
    print("Dedup_SHA1 degrades most applications; DeWrite sits in between.")


if __name__ == "__main__":
    main()
