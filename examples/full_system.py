#!/usr/bin/env python3
"""End-to-end demo: CPU loads/stores -> L1/L2/L3 -> ESD -> encrypted PCM.

Unlike the grid experiments (which drive schemes with post-LLC traffic
directly), this example runs the complete pipeline of the paper's Figure 6,
including the cache hierarchy that filters CPU traffic, and finishes with
an ECC fault-injection demonstration: reusing the ECC as a dedup
fingerprint must not weaken its error protection.

Run:
    python examples/full_system.py
"""

from repro import FullSystem, make_scheme
from repro.ecc import RandomFaultInjector
from repro.sim import scaled_system_config
from repro.workloads import CPUAccessGenerator


def run_full_stack() -> None:
    config = scaled_system_config()
    system = FullSystem(make_scheme("ESD", config))
    accesses = CPUAccessGenerator("facesim", seed=11).generate(
        30_000, rereference_prob=0.65)
    print("running 30,000 CPU accesses through L1/L2/L3 -> ESD -> PCM ...")
    result = system.run(accesses, app="facesim")
    system.drain()

    stats = system.cache_stats()
    print(f"L1 hit rate:            {stats.l1_hit_rate:.1%}")
    print(f"L2 hit rate:            {stats.l2_hit_rate:.1%}")
    print(f"L3 hit rate:            {stats.l3_hit_rate:.1%}")
    print(f"fills from memory:      {stats.fills_from_memory}")
    print(f"write-backs to memory:  {stats.writebacks_to_memory}")
    print(f"write-backs deduped:    {system.scheme.duplicates_eliminated}")
    # Most dirty lines leave the (large) LLC only at the final drain, so
    # read the controller after draining rather than from the mid-run result.
    print(f"PCM data writes:        {system.scheme.controller.data_writes}")
    print(f"IPC:                    {result.ipc:.3f}")


def demonstrate_ecc_protection() -> None:
    print("\nECC protection is intact (ESD only *reads* the ECC):")
    injector = RandomFaultInjector(seed=5)
    single = injector.single_bit_campaign(trials=500)
    double_same = injector.double_bit_campaign(trials=500, same_word=True)
    double_cross = injector.double_bit_campaign(trials=500, same_word=False)
    print(f"  single-bit faults corrected:       "
          f"{sum(o.recovered for o in single)}/500")
    print(f"  double-bit (same word) detected:   "
          f"{sum(o.detected_uncorrectable for o in double_same)}/500")
    print(f"  double-bit (cross word) corrected: "
          f"{sum(o.recovered for o in double_cross)}/500")
    print(f"  silent corruptions:                "
          f"{sum(o.silent_corruption for o in single + double_same + double_cross)}")


def main() -> None:
    run_full_stack()
    demonstrate_ecc_protection()


if __name__ == "__main__":
    main()
