#!/usr/bin/env python3
"""Endurance study: deduplication + wear leveling + counter integrity.

The paper motivates ESD partly by endurance: every eliminated duplicate
write is PCM wear that never happens.  This example quantifies that
(Figure 11's metric plus per-frame wear statistics), shows how Start-Gap
wear leveling spreads the writes that remain, and runs the counter
integrity tree that protects the encryption counters every scheme relies
on (Section III-E's consistency discussion).

Run:
    python examples/endurance_study.py
"""

from repro import make_scheme, TraceGenerator
from repro.analysis.reporting import format_table
from repro.common.errors import IntegrityError
from repro.crypto import CounterIntegrityTree, CounterTable
from repro.nvmm import StartGapWearLeveler, WearLevelerConfig, PCMDevice
from repro.common.config import PCMConfig
from repro.common.units import mib
from repro.sim import scaled_system_config


def dedup_wear_comparison() -> None:
    trace = TraceGenerator("mcf", seed=3).generate_list(20_000)
    rows = []
    for name in ("Baseline", "ESD"):
        scheme = make_scheme(name, scaled_system_config())
        for req in trace:
            if req.is_write:
                scheme.handle_write(req)
        stats = scheme.controller.device.wear_stats()
        rows.append([name, stats.total_writes, stats.frames_touched,
                     stats.max_writes_per_frame,
                     f"{stats.wear_imbalance:.2f}"])
    print(format_table(
        ["scheme", "pcm_writes", "frames_touched", "max_per_frame",
         "imbalance"],
        rows, title="Wear under mcf (20,000 requests): dedup eliminates "
                    "writes outright"))


def wear_leveling_demo() -> None:
    device = PCMDevice(PCMConfig(capacity_bytes=mib(1), num_banks=4))
    leveler = StartGapWearLeveler(
        num_frames=256, config=WearLevelerConfig(gap_move_interval=16))
    # Hammer a handful of hot frames (what dedup's surviving hot unique
    # lines look like).
    for step in range(20_000):
        hot_frame = step % 4
        device.write_line(leveler.translate(hot_frame),
                          bytes([step % 256]) * 64)
        leveler.record_write(device)
    stats = device.wear_stats()
    print("\nStart-Gap wear leveling on 4 hot frames / 256 slots:")
    print(f"  frames touched:        {stats.frames_touched}")
    print(f"  max writes per frame:  {stats.max_writes_per_frame}  "
          f"(no leveling would be 5000)")
    print(f"  wear imbalance:        {stats.wear_imbalance:.2f}")
    print(f"  gap moves (overhead):  {leveler.gap_moves} "
          f"({leveler.write_overhead():.1%} extra writes)")


def integrity_demo() -> None:
    counters = CounterTable()
    tree = CounterIntegrityTree(counters, num_lines=64 * 1024)
    for line in range(0, 4096, 7):
        counters.advance(line)
        tree.update(line)
    tree.verify_all_touched()
    print("\nCounter integrity tree:")
    print(f"  depth {tree.depth}, {tree.node_count()} materialized nodes, "
          f"{tree.verifications} verifications OK")
    # A rollback attack on an encryption counter is detected immediately.
    counters.counters[7] -= 1
    try:
        tree.verify(7)
        print("  ERROR: rollback went undetected!")
    except IntegrityError:
        print("  counter-rollback attack detected (pad reuse prevented)")


def main() -> None:
    dedup_wear_comparison()
    wear_leveling_demo()
    integrity_demo()


if __name__ == "__main__":
    main()
