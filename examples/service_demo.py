#!/usr/bin/env python3
"""Dedup-as-a-service walkthrough: server, tenants, metrics, parity.

Spins up the :mod:`repro.serve` server in-process, drives three tenants
concurrently — each with its own scheme, workload, and (for one of
them) per-tenant config overrides — then prints the per-tenant summary
rows, the serve-side metrics the server accumulated, and a parity check
of every served result against a direct in-process run.

This is the "millions of users" framing from the roadmap scaled down to
a demo: many independent trace sources multiplexed onto one shared
engine, with bounded queues and backpressure keeping any one tenant
from monopolizing it (DESIGN.md §11).

Run:
    python examples/service_demo.py
"""

import sys
import threading
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.reporting import format_table
from repro.registry import make_scheme
from repro.serve import BackgroundServer, ServeClient, ServeConfig
from repro.sim.engine import EngineConfig, SimulationEngine
from repro.sim.export import result_to_state
from repro.sim.runner import scaled_system_config
from repro.workloads.generator import TraceGenerator

#: tenant -> (scheme, app, requests, seed, per-tenant config overrides)
TENANTS = {
    "alice": ("ESD", "gcc", 8000, 21, None),
    "bob": ("Dedup_SHA1", "lbm", 6000, 22, None),
    "carol": ("ESD", "deepsjeng", 6000, 23, {"esd.decay_period": 512}),
}


def drive_tenant(port, tenant, payloads):
    scheme, app, requests, seed, options = TENANTS[tenant]
    trace = TraceGenerator(app, seed=seed).generate_list(requests)
    with ServeClient("127.0.0.1", port) as client:
        payloads[tenant] = client.run_trace(
            iter(trace), scheme, tenant=tenant, app=app,
            total_hint=len(trace), options=options)


def direct_state(tenant):
    scheme, app, requests, seed, options = TENANTS[tenant]
    trace = TraceGenerator(app, seed=seed).generate_list(requests)
    config = scaled_system_config()
    if options:
        config = config.with_options(options)
    engine = SimulationEngine(make_scheme(scheme, config), EngineConfig())
    return result_to_state(engine.run(iter(trace), app=app,
                                      total_hint=len(trace)))


def main() -> None:
    payloads = {}
    with BackgroundServer(ServeConfig(max_sessions=8)) as server:
        print(f"server up on 127.0.0.1:{server.port}\n")
        threads = [threading.Thread(target=drive_tenant,
                                    args=(server.port, tenant, payloads))
                   for tenant in TENANTS]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        rows = []
        for tenant, (scheme, app, requests, _seed, options) in TENANTS.items():
            summary = payloads[tenant]["summary"]
            rows.append([tenant, scheme, app, requests,
                         f"{summary['write_reduction'] * 100:.1f}",
                         f"{summary['write_latency_ns']:.0f}",
                         "yes" if options else "-"])
        print(format_table(
            ["tenant", "scheme", "app", "requests", "write_red_%",
             "avg_write_ns", "overrides"],
            rows, title="Per-tenant served results"))

        with ServeClient("127.0.0.1", server.port) as client:
            flat = client.metrics()["flat"]
        print("\nServe metrics (selection):")
        for key in sorted(flat):
            if key.startswith(("serve_requests_total", "serve_sessions",
                               "serve_rejected_total")):
                print(f"  {key} = {flat[key]}")

    print(f"\nserver drained clean: {server.drained_clean}")

    # Concurrent sessions share the process-global memo caches, so the
    # cache-statistics extras depend on interleaving; everything else —
    # latencies, counters, energy, IPC — must match a direct run exactly.
    print("\nParity vs direct runs (cache-stat extras excluded):")
    for tenant in TENANTS:
        served = dict(payloads[tenant]["state"])
        expected = direct_state(tenant)
        strip = ("memo_", "vec_batched_ecc_lines", "vec_batched_fp_lines")
        for state in (served, expected):
            state["extras"] = {k: v for k, v in state["extras"].items()
                               if not k.startswith(strip)}
        status = "exact" if served == expected else "MISMATCH"
        print(f"  {tenant:6s} {status}")


if __name__ == "__main__":
    main()
