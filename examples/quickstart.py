#!/usr/bin/env python3
"""Quickstart: run ESD on one application and inspect the results.

Builds the ESD scheme (ECC-assisted selective deduplication for encrypted
NVMM), generates a gcc-like LLC-eviction trace, and runs it through the
trace-driven simulator.

Run:
    python examples/quickstart.py
"""

from repro import SimulationEngine, TraceGenerator, make_scheme
from repro.sim import scaled_system_config


def main() -> None:
    # 1. Configure the system (Table I of the paper, with metadata caches
    #    scaled to simulation-length traces).
    config = scaled_system_config()

    # 2. Build the ESD scheme: EFIT + LRCU + AMT over a PCM controller.
    scheme = make_scheme("ESD", config)

    # 3. Generate a synthetic trace with gcc's measured characteristics
    #    (duplicate rate, zero-line share, content locality, r/w mix).
    trace = TraceGenerator("gcc", seed=42).generate_list(20_000)

    # 4. Run. The engine throttles arrivals like a real core (finite
    #    outstanding requests), warms up, and verifies data integrity on
    #    every read.
    engine = SimulationEngine(scheme)
    result = engine.run(iter(trace), app="gcc", total_hint=len(trace))

    # 5. Inspect.
    print(f"application:           {result.app}")
    print(f"scheme:                {result.scheme}")
    print(f"writes handled:        {result.writes}")
    print(f"write reduction:       {result.write_reduction:.1%}")
    print(f"mean write latency:    {result.mean_write_latency_ns:.1f} ns")
    print(f"p99 write latency:     {result.write_latency.percentile(99):.1f} ns")
    print(f"mean read latency:     {result.mean_read_latency_ns:.1f} ns")
    print(f"total energy:          {result.total_energy_nj / 1e6:.3f} mJ")
    print(f"IPC:                   {result.ipc:.3f}")
    print(f"EFIT hit rate:         {result.extras['efit_hit_rate']:.1%}")
    print(f"AMT hit rate:          {result.extras['amt_hit_rate']:.1%}")
    footprint = result.metadata
    print(f"metadata on-chip:      {footprint.onchip_bytes} B")
    print(f"metadata in NVMM:      {footprint.nvmm_bytes} B")
    print()
    print("Write-path latency profile (Figure 17's view):")
    for stage, share in sorted(result.breakdown_fractions().items(),
                               key=lambda kv: -kv[1]):
        print(f"  {str(stage):26s} {share:6.1%}")


if __name__ == "__main__":
    main()
