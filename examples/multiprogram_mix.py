#!/usr/bin/env python3
"""Multiprogrammed mixes: dedup behaviour on co-scheduled applications.

The paper's 8-core system runs one application at a time; a natural
extension is co-running several.  The merged controller stream is denser
(more bank pressure) and the dedup structures see interleaved content
pools.  This example compares ESD against Baseline on canonical
high-duplication, low-duplication, and balanced mixes, and exports the
results as JSON/CSV.

Run:
    python examples/multiprogram_mix.py
"""

import tempfile
from pathlib import Path

from repro.analysis.reporting import format_table
from repro.dedup import make_scheme
from repro.sim import SimulationEngine, scaled_system_config, write_json
from repro.workloads import CANONICAL_MIXES, make_mix

REQUESTS = 20_000


def run_mix(mix_name: str) -> list:
    trace = make_mix(mix_name, seed=11).generate_list(REQUESTS)
    rows = []
    results = {}
    for scheme_name in ("Baseline", "ESD"):
        scheme = make_scheme(scheme_name, scaled_system_config())
        engine = SimulationEngine(scheme)
        result = engine.run(iter(trace), app=mix_name,
                            total_hint=len(trace))
        results[scheme_name] = result
    base, esd = results["Baseline"], results["ESD"]
    rows.append([
        mix_name,
        "+".join(CANONICAL_MIXES[mix_name]),
        esd.write_reduction,
        base.mean_write_latency_ns / esd.mean_write_latency_ns,
        base.mean_read_latency_ns / esd.mean_read_latency_ns,
        esd.total_energy_nj / base.total_energy_nj,
    ])
    return rows, results


def main() -> None:
    all_rows = []
    last_results = None
    for mix_name in CANONICAL_MIXES:
        print(f"simulating {mix_name} "
              f"({'+'.join(CANONICAL_MIXES[mix_name])}) ...")
        rows, last_results = run_mix(mix_name)
        all_rows.extend(rows)
    print()
    print(format_table(
        ["mix", "applications", "esd_write_red", "esd_write_speedup",
         "esd_read_speedup", "esd_energy_vs_base"],
        all_rows,
        title="ESD on multiprogrammed mixes (vs Baseline)",
        float_format="{:.2f}"))

    # Export the last mix's results (the JSON/CSV workflow).
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "mix_results.json"
        write_json(last_results["ESD"], path)
        print(f"\nexported ESD result JSON ({path.stat().st_size} bytes), "
              f"e.g. keys: {sorted(__import__('json').loads(path.read_text()))[:6]} ...")


if __name__ == "__main__":
    main()
