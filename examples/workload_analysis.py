#!/usr/bin/env python3
"""Workload characterization: the paper's motivation figures (1 and 3).

Generates traces for all 20 applications, measures duplicate rates and
reference-count distributions, and demonstrates trace serialization (the
artifact's trace file format).

Run:
    python examples/workload_analysis.py
"""

import tempfile
from pathlib import Path

from repro.analysis.reporting import format_table
from repro.workloads import (
    TraceGenerator,
    app_names,
    duplicate_stats,
    read_trace_list,
    reference_count_distribution,
    write_trace,
)

REQUESTS = 10_000


def main() -> None:
    rows = []
    bucket_rows = []
    for app in app_names():
        trace = TraceGenerator(app, seed=7).generate_list(REQUESTS)
        stats = duplicate_stats(trace)
        dist = reference_count_distribution(trace)
        rows.append([app, stats.duplicate_rate * 100,
                     stats.zero_share_of_duplicates * 100,
                     stats.unique_contents])
        bucket_rows.append([app] + [dist.volume_share(b) * 100 for b in
                                    ("num1", "num10", "num100", "num1000",
                                     "num1000+")])

    print(format_table(
        ["application", "dup_rate_%", "zero_share_%", "unique_contents"],
        rows, title="Figure 1 view: duplicate rates per application",
        float_format="{:.1f}"))
    mean = sum(r[1] for r in rows) / len(rows)
    print(f"\nmean duplicate rate: {mean:.1f}%  (paper: 62.9%)\n")

    print(format_table(
        ["application", "num1_%", "num10_%", "num100_%", "num1000_%",
         "num1000+_%"],
        bucket_rows,
        title="Figure 3b view: pre-dedup volume by reference-count bucket",
        float_format="{:.1f}"))

    # Trace serialization round-trip (the artifact's regulation format).
    trace = TraceGenerator("gcc", seed=7).generate_list(1_000)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "gcc.esdtrace"
        count = write_trace(trace, path)
        restored = read_trace_list(path)
        print(f"\ntrace round-trip: wrote {count} records "
              f"({path.stat().st_size} bytes), read back {len(restored)}; "
              f"identical={all(a.data == b.data for a, b in zip(trace, restored))}")


if __name__ == "__main__":
    main()
