#!/usr/bin/env python3
"""Tail-latency study: write-latency CDFs across dedup schemes (Figure 15).

Plots ASCII CDFs of write latency for one application under Dedup_SHA1,
DeWrite, and ESD, plus a percentile table — the QoS view the paper uses to
show ESD's shorter tails.

Run:
    python examples/tail_latency.py [app]
"""

import sys

from repro.analysis.reporting import format_table
from repro.sim import run_app, scaled_system_config

SCHEMES = ["Dedup_SHA1", "DeWrite", "ESD"]


def ascii_cdf(name: str, xs, ys, width: int = 60) -> str:
    """A crude monospace CDF: one row per decile."""
    if not xs:
        return f"{name}: (no samples)"
    lines = [f"{name} write-latency CDF:"]
    max_x = xs[-1]
    for target in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
        # Find the first latency reaching this cumulative fraction.
        latency = next((x for x, y in zip(xs, ys) if y >= target), xs[-1])
        bar = "#" * max(1, int(width * latency / max_x))
        lines.append(f"  p{int(target * 100):>2} {latency:9.0f} ns |{bar}")
    return "\n".join(lines)


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "leela"
    print(f"simulating {app} under {SCHEMES} ...")
    results = run_app(app, SCHEMES, requests=15_000,
                      system=scaled_system_config())

    rows = []
    for name in SCHEMES:
        rec = results[name].write_latency
        rows.append([name, rec.mean_ns, rec.percentile(50),
                     rec.percentile(90), rec.percentile(99),
                     rec.percentile(99.9)])
    print()
    print(format_table(
        ["scheme", "mean_ns", "p50_ns", "p90_ns", "p99_ns", "p99.9_ns"],
        rows, title=f"Write latency percentiles ({app})",
        float_format="{:.0f}"))
    print()
    for name in SCHEMES:
        xs, ys = results[name].write_cdf(points=200)
        print(ascii_cdf(name, xs, ys))
        print()
    print("Expected shape (paper Fig. 15): ESD's CDF rises fastest; "
          "Dedup_SHA1 has the longest tail.")


if __name__ == "__main__":
    main()
