"""Phased workloads: applications whose duplicate behaviour shifts mid-run.

Real programs move through phases (initialization zero-fills, compute
loops, output flushes) with very different duplicate rates.  Phase changes
are the stress case for the *adaptive* parts of the schemes: DeWrite's
predictor must re-train, and ESD's LRCU decay must flush stale hot
fingerprints.  A :class:`PhasedTraceGenerator` concatenates per-phase
streams (each driven by a normal profile) on a single monotonic clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple, Union

from ..common.types import MemoryRequest, request_unchecked
from .generator import TraceGenerator
from .profiles import get_profile


@dataclass(frozen=True)
class Phase:
    """One workload phase: a profile and how many requests it runs for."""

    app: str
    requests: int

    def __post_init__(self) -> None:
        get_profile(self.app)  # validate
        if self.requests <= 0:
            raise ValueError("phase length must be positive")


#: Canonical phase scripts: a zero-heavy init phase, a low-duplication
#: compute phase, and a duplicate-heavy output phase.
CANONICAL_PHASES: Tuple[Phase, ...] = (
    Phase(app="deepsjeng", requests=4_000),   # init: ~100% dup (zeros)
    Phase(app="namd", requests=4_000),        # compute: ~33% dup
    Phase(app="lbm", requests=4_000),         # output: ~85% dup, bursty
)


class PhasedTraceGenerator:
    """Concatenates per-phase streams on one monotonic clock.

    All phases share one logical address space (later phases overwrite
    earlier phases' lines, exercising remap/GC across behaviour shifts).
    """

    def __init__(self, phases: Sequence[Union[Phase, Tuple[str, int]]],
                 seed: int = 2023) -> None:
        if not phases:
            raise ValueError("need at least one phase")
        normalized: List[Phase] = []
        for phase in phases:
            if isinstance(phase, Phase):
                normalized.append(phase)
            else:
                app, requests = phase
                normalized.append(Phase(app=app, requests=requests))
        self.phases = tuple(normalized)
        self.seed = seed

    @property
    def total_requests(self) -> int:
        return sum(p.requests for p in self.phases)

    def generate(self) -> Iterator[MemoryRequest]:
        """Yield every phase's requests with a continuous clock and seq.

        Re-basing a phase onto the shared clock only shifts a request the
        inner generator already validated, so the requests are rebuilt
        through trusted construction instead of paying dataclass
        re-validation per record.  The next phase starts at the *latest*
        issue time seen, not the last one: zero-interarrival ties (and
        any non-monotonic tail the per-core interleave can emit) must not
        drag the clock backwards across a phase boundary.
        """
        clock_offset = 0.0
        seq = 0
        for index, phase in enumerate(self.phases):
            gen = TraceGenerator(phase.app, seed=self.seed * 17 + index)
            phase_end = clock_offset
            for request in gen.generate(phase.requests):
                seq += 1
                issue = clock_offset + request.issue_time_ns
                if issue > phase_end:
                    phase_end = issue
                yield request_unchecked(request.address, request.access,
                                        request.data, issue,
                                        request.core, seq)
            clock_offset = phase_end

    def generate_list(self) -> List[MemoryRequest]:
        return list(self.generate())

    def phase_boundaries(self) -> List[int]:
        """Request indices where a new phase begins (first phase at 0)."""
        bounds = [0]
        for phase in self.phases[:-1]:
            bounds.append(bounds[-1] + phase.requests)
        return bounds
