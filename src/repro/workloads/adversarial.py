"""Adversarial request streams for long-run stress studies.

The paper's 20-app roster characterizes *typical* programs; the streams
here are deliberately hostile.  Two are plain :class:`WorkloadProfile`
entries (registered in :data:`~repro.workloads.profiles.PROFILES` under
the ``adversarial`` suite) whose statistics sit at the schemes' worst
corners; the third is a phase-shifting mix that whiplashes between them
and two roster apps so every adaptive structure (DeWrite's predictor,
ESD's LRCU decay, the bank queues) re-trains mid-run.

* ``adv-dedup-worst`` — ~2 % duplicates, write-heavy, memory-intense:
  every dedup lookup is pure overhead, bounding scheme cost below.
* ``adv-collision-heavy`` — ~92 % duplicates with near-zero popularity
  skew, a huge working set, and a 95 % recurrence tail: the fingerprint
  indexes thrash on long-range matches instead of riding a hot set.
* ``adv-phase-shift`` — alternates dedup-worst / deepsjeng (all-zero
  duplicates) / collision-heavy / lbm (bursty non-zero duplicates) on
  one continuous clock via :class:`PhasedTraceGenerator`.

All three stream in bounded memory — :func:`adversarial_stream` returns
a generator, so they compose with the v2 trace capture and checkpointed
runs for arbitrarily long endurance studies.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ..common.types import MemoryRequest
from .generator import TraceGenerator
from .phases import Phase, PhasedTraceGenerator
from .profiles import PROFILES, adversarial_names, get_profile

#: The phase-shifting mix's script: adversarial corners interleaved with
#: the roster's extreme apps (all-zero dup init, bursty non-zero output).
PHASE_SHIFT_SCRIPT: Tuple[str, ...] = (
    "adv-dedup-worst", "deepsjeng", "adv-collision-heavy", "lbm",
)

PHASE_SHIFT_NAME = "adv-phase-shift"

#: Instructions-per-access used for the phase-shifting mix (the blend has
#: no single profile; this matches the adversarial profiles' intensity).
PHASE_SHIFT_IPA = 150


def adversarial_stream_names() -> List[str]:
    """Every adversarial stream resolvable by :func:`adversarial_stream`."""
    return adversarial_names() + [PHASE_SHIFT_NAME]


def phase_shift_phases(requests: int) -> List[Phase]:
    """Deterministically split ``requests`` across the phase script.

    The split is even (remainder spread over the leading phases); with
    fewer requests than script entries, only the leading phases run.
    """
    if requests <= 0:
        raise ValueError("requests must be positive")
    script = PHASE_SHIFT_SCRIPT[:min(len(PHASE_SHIFT_SCRIPT), requests)]
    base, extra = divmod(requests, len(script))
    return [Phase(app=app, requests=base + (1 if i < extra else 0))
            for i, app in enumerate(script)]


def adversarial_stream(name: str, requests: int,
                       seed: int = 2023) -> Iterator[MemoryRequest]:
    """Open a named adversarial stream as a bounded-memory generator."""
    if name == PHASE_SHIFT_NAME:
        return PhasedTraceGenerator(phase_shift_phases(requests),
                                    seed=seed).generate()
    profile = PROFILES.get(name)
    if profile is None or profile.suite != "adversarial":
        raise KeyError(
            f"unknown adversarial stream {name!r}; "
            f"known: {adversarial_stream_names()}")
    return TraceGenerator(profile, seed=seed).generate(requests)


def stream_instructions_per_access(name: str) -> int:
    """IPC-model intensity for a stream name (profile-backed or mix)."""
    if name == PHASE_SHIFT_NAME:
        return PHASE_SHIFT_IPA
    return get_profile(name).instructions_per_access
