"""Per-application workload profiles for the 20 evaluated benchmarks.

The paper drives its evaluation with 12 SPEC CPU 2017 applications and
8 PARSEC 2.1 applications.  We cannot replay the authors' gem5 traces, so
each application is characterized by the statistics the dedup schemes
actually react to, calibrated to the paper's published numbers:

* **duplicate_rate** — fraction of written (LLC-evicted) cache lines whose
  content was written before (Figure 1: 33.1 %–99.9 %, mean 62.9 %;
  deepsjeng and roms ≈ 99.9 %).
* **zero_fraction** — share of duplicate writes that are the all-zero line
  (the paper notes deepsjeng/roms duplicates are largely zero lines, while
  lbm/mcf/roms also carry many *non-zero* duplicates).
* **locality_skew** — Zipf exponent of content popularity.  Higher skew
  concentrates references on few unique lines, producing the content
  locality of Figure 3 (0.08 % of unique lines hold >1000 references and
  42.7 % of pre-dedup volume).
* **dup_burstiness** — probability that consecutive writes keep the same
  duplicate/unique state (a 2-state Markov chain).  High burstiness makes
  history-based duplication prediction accurate — the paper singles out lbm
  as the application where DeWrite's "content locality and accurate
  prediction" beat ESD.
* **tail_dup_fraction** — share of duplicate writes that re-reference a
  uniformly random *old* unique content (long-range recurrence) instead of
  a hot one.  These are the duplicates only a full NVMM-resident
  fingerprint index can catch (Figure 5's "filtered by NVMM" split, 13.7 %
  of duplicates on average) and the ones ESD's selective EFIT deliberately
  misses (the ~18 pp write-reduction gap of Figure 11).
* **read_fraction** — share of memory-controller requests that are reads.
* **working_set_lines** — distinct logical cache-line addresses touched.
* **instructions_per_access** — non-memory instructions retired between
  memory-controller requests (feeds the IPC model).
* **mean_interarrival_ns** — memory-controller request spacing (memory
  intensity; drives bank queueing pressure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..common.errors import ConfigError


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical description of one application's LLC traffic."""

    name: str
    suite: str  # "spec2017" | "parsec" | "adversarial"
    duplicate_rate: float
    zero_fraction: float
    locality_skew: float
    dup_burstiness: float
    read_fraction: float
    working_set_lines: int
    instructions_per_access: int
    mean_interarrival_ns: float
    tail_dup_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.suite not in ("spec2017", "parsec", "adversarial"):
            raise ConfigError(f"unknown suite {self.suite!r}")
        for field_name in ("duplicate_rate", "zero_fraction", "dup_burstiness",
                           "read_fraction", "tail_dup_fraction"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{self.name}.{field_name} must be in [0,1]")
        if self.locality_skew <= 0:
            raise ConfigError(f"{self.name}: locality_skew must be positive")
        if self.working_set_lines <= 0:
            raise ConfigError(f"{self.name}: working set must be positive")
        if self.instructions_per_access <= 0:
            raise ConfigError(
                f"{self.name}: instructions_per_access must be positive")
        if self.mean_interarrival_ns <= 0:
            raise ConfigError(
                f"{self.name}: mean_interarrival_ns must be positive")


def _spec(name: str, dup: float, zero: float, skew: float, burst: float,
          reads: float, ws: int, ipa: int, inter: float,
          tail: float = 0.25) -> WorkloadProfile:
    return WorkloadProfile(name=name, suite="spec2017", duplicate_rate=dup,
                           zero_fraction=zero, locality_skew=skew,
                           dup_burstiness=burst, read_fraction=reads,
                           working_set_lines=ws, instructions_per_access=ipa,
                           mean_interarrival_ns=inter, tail_dup_fraction=tail)


def _parsec(name: str, dup: float, zero: float, skew: float, burst: float,
            reads: float, ws: int, ipa: int, inter: float,
            tail: float = 0.25) -> WorkloadProfile:
    return WorkloadProfile(name=name, suite="parsec", duplicate_rate=dup,
                           zero_fraction=zero, locality_skew=skew,
                           dup_burstiness=burst, read_fraction=reads,
                           working_set_lines=ws, instructions_per_access=ipa,
                           mean_interarrival_ns=inter, tail_dup_fraction=tail)


#: The 12 SPEC CPU 2017 applications the paper evaluates.  Duplicate rates
#: are calibrated so the 20-app mean lands at the paper's 62.9 % with
#: deepsjeng/roms at 99.9 % and namd at the 33.1 % floor.
SPEC_PROFILES: Tuple[WorkloadProfile, ...] = (
    _spec("cactuBSSN",  0.45, 0.30, 1.05, 0.55, 0.55, 40_000, 220, 34.0, 0.28),
    _spec("deepsjeng",  0.999, 0.92, 1.35, 0.90, 0.45, 24_000, 260, 30.0, 0.02),
    _spec("gcc",        0.55, 0.35, 1.10, 0.60, 0.60, 48_000, 240, 32.0, 0.30),
    _spec("imagick",    0.38, 0.25, 0.95, 0.50, 0.50, 36_000, 200, 38.0, 0.30),
    # lbm: moderate-high *non-zero* duplication, high write ratio, very
    # bursty, and a wide recurrence tail -> DeWrite's full dedup + accurate
    # prediction beat ESD's selective dedup here (paper Sec. IV-C).
    _spec("lbm",        0.85, 0.05, 1.25, 0.97, 0.35, 32_000, 150, 20.0, 0.40),
    # leela: the paper's other worst-case app (Fig. 2 left): moderate dup
    # rate, write-heavy, poorly predictable.
    _spec("leela",      0.48, 0.28, 0.95, 0.35, 0.40, 30_000, 180, 24.0, 0.30),
    _spec("mcf",        0.82, 0.08, 1.20, 0.75, 0.55, 56_000, 210, 24.0, 0.30),
    _spec("nab",        0.40, 0.25, 1.00, 0.50, 0.55, 34_000, 230, 38.0, 0.25),
    _spec("namd",       0.331, 0.20, 0.90, 0.45, 0.60, 30_000, 250, 42.0, 0.25),
    _spec("roms",       0.999, 0.88, 1.35, 0.90, 0.40, 26_000, 240, 28.0, 0.02),
    _spec("wrf",        0.52, 0.30, 1.05, 0.55, 0.58, 44_000, 230, 36.0, 0.28),
    _spec("xalancbmk",  0.60, 0.35, 1.10, 0.60, 0.62, 40_000, 240, 34.0, 0.28),
)

#: The 8 PARSEC 2.1 applications (multithreaded).
PARSEC_PROFILES: Tuple[WorkloadProfile, ...] = (
    _parsec("blackscholes", 0.70, 0.40, 1.15, 0.65, 0.55, 28_000, 210, 34.0, 0.22),
    _parsec("bodytrack",    0.58, 0.32, 1.05, 0.55, 0.58, 36_000, 220, 36.0, 0.28),
    _parsec("dedup",        0.80, 0.35, 1.20, 0.70, 0.50, 44_000, 200, 28.0, 0.25),
    _parsec("facesim",      0.70, 0.30, 1.10, 0.60, 0.55, 48_000, 210, 32.0, 0.25),
    _parsec("fluidanimate", 0.62, 0.33, 1.08, 0.58, 0.52, 40_000, 205, 30.0, 0.28),
    _parsec("rtview",       0.55, 0.30, 1.00, 0.50, 0.60, 36_000, 225, 36.0, 0.28),
    _parsec("swaptions",    0.72, 0.38, 1.15, 0.62, 0.56, 26_000, 215, 34.0, 0.22),
    _parsec("x264",         0.50, 0.28, 1.00, 0.48, 0.55, 42_000, 220, 34.0, 0.30),
)

ALL_PROFILES: Tuple[WorkloadProfile, ...] = SPEC_PROFILES + PARSEC_PROFILES


def _adv(name: str, dup: float, zero: float, skew: float, burst: float,
         reads: float, ws: int, ipa: int, inter: float,
         tail: float) -> WorkloadProfile:
    return WorkloadProfile(name=name, suite="adversarial",
                           duplicate_rate=dup, zero_fraction=zero,
                           locality_skew=skew, dup_burstiness=burst,
                           read_fraction=reads, working_set_lines=ws,
                           instructions_per_access=ipa,
                           mean_interarrival_ns=inter,
                           tail_dup_fraction=tail)


#: Adversarial stream profiles for long-run stress studies.  They are
#: first-class profiles — resolvable through :func:`get_profile`, the CLI,
#: and the trace generator — but deliberately *not* part of the paper's
#: 20-app roster (``ALL_PROFILES`` / :func:`app_names` / the figure
#: aggregates stay untouched).
ADVERSARIAL_PROFILES: Tuple[WorkloadProfile, ...] = (
    # Dedup worst case: almost every write is unique, write-heavy and
    # memory-intense, with the few duplicates scattered across the deep
    # recurrence tail — every fingerprint/ECC-compare the schemes spend is
    # wasted, maximizing their overhead relative to the baseline.
    _adv("adv-dedup-worst",     0.02, 0.00, 0.60, 0.05, 0.25, 96_000, 150,
         18.0, 0.90),
    # Fingerprint-collision heavy: near-total duplication with almost no
    # popularity skew and a huge working set, so the fingerprint indexes
    # (EFIT/CFIT, DeWrite tables) thrash on long-range recurrences instead
    # of riding a hot set — the stress case for index capacity/eviction.
    _adv("adv-collision-heavy", 0.92, 0.02, 0.35, 0.30, 0.30, 80_000, 150,
         18.0, 0.95),
)

#: Name -> profile lookup (roster apps plus adversarial profiles).
PROFILES: Dict[str, WorkloadProfile] = {
    p.name: p for p in ALL_PROFILES + ADVERSARIAL_PROFILES
}

#: The 8 applications whose write-latency CDFs Figure 15 plots.
TAIL_LATENCY_APPS: Tuple[str, ...] = (
    "gcc", "leela", "bodytrack", "dedup", "facesim", "fluidanimate",
    "wrf", "x264",
)

#: The two worst-case applications of Figure 2.
WORST_CASE_APPS: Tuple[str, ...] = ("leela", "lbm")


def get_profile(name: str) -> WorkloadProfile:
    """Look up a profile by application name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; known: {sorted(PROFILES)}"
        ) from None


def app_names() -> List[str]:
    """All 20 application names in the paper's presentation order."""
    return [p.name for p in ALL_PROFILES]


def adversarial_names() -> List[str]:
    """Names of the registered adversarial stream profiles."""
    return [p.name for p in ADVERSARIAL_PROFILES]


def mean_duplicate_rate() -> float:
    """Average configured duplicate rate across the 20 applications."""
    return sum(p.duplicate_rate for p in ALL_PROFILES) / len(ALL_PROFILES)
