"""Trace record serialization.

Traces can be generated on the fly (the common path), but persisting them
lets experiments replay byte-identical request streams across schemes and
sessions — the artifact-appendix workflow of the paper ("users can generate
other corresponding traces ... kept in the same regulation format").

Format (version 1), little-endian:

============  =======================================================
Header        magic ``b"ESDTRACE"``, u16 version, u16 reserved,
              u64 record count
Record        u8 kind (0=read, 1=write), u8 core, u16 reserved,
              u32 seq, u64 address, f64 issue_time_ns,
              64-byte payload (writes only)
============  =======================================================
"""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator, List, Union

from ..common.errors import TraceFormatError
from ..common.types import CACHE_LINE_SIZE, AccessType, MemoryRequest

MAGIC = b"ESDTRACE"
VERSION = 1

_HEADER = struct.Struct("<8sHHQ")
_RECORD_FIXED = struct.Struct("<BBHIQd")


def write_trace(requests: Iterable[MemoryRequest],
                destination: Union[str, Path, BinaryIO]) -> int:
    """Serialize a request stream; returns the record count written.

    Batched: records are packed into an in-memory buffer and flushed with
    two writes (header, then all records), instead of two-plus syscalls per
    record.  The buffer is the same order of magnitude as the materialized
    request list, so peak memory is unchanged; as a bonus the header is
    written once with the final count, so non-seekable destinations work.
    The byte format is identical to the per-record writer's.
    """
    pack_record = _RECORD_FIXED.pack
    chunks = []
    count = 0
    for req in requests:
        if req.is_write:
            assert req.data is not None
            chunks.append(pack_record(1, req.core, 0, req.seq,
                                      req.address, req.issue_time_ns))
            chunks.append(req.data)
        else:
            chunks.append(pack_record(0, req.core, 0, req.seq,
                                      req.address, req.issue_time_ns))
        count += 1
    own = isinstance(destination, (str, Path))
    fh: BinaryIO = open(destination, "wb") if own else destination  # type: ignore[arg-type]
    try:
        fh.write(_HEADER.pack(MAGIC, VERSION, 0, count))
        fh.write(b"".join(chunks))
        return count
    finally:
        if own:
            fh.close()


def read_trace(source: Union[str, Path, BinaryIO]) -> Iterator[MemoryRequest]:
    """Deserialize a trace, yielding requests in order.

    Batched: the record stream is read into memory with one ``read`` and
    parsed with ``unpack_from`` offsets, instead of two ``read`` syscalls
    per record.  Like the per-record reader it replaced, this is a
    generator — nothing is read until the first request is drawn.

    Raises:
        TraceFormatError: on bad magic, version, or truncated records.
    """
    own = isinstance(source, (str, Path))
    fh: BinaryIO = open(source, "rb") if own else source  # type: ignore[arg-type]
    try:
        header = fh.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise TraceFormatError("truncated header")
        magic, version, _, count = _HEADER.unpack(header)
        if magic != MAGIC:
            raise TraceFormatError(f"bad magic {magic!r}")
        if version != VERSION:
            raise TraceFormatError(f"unsupported version {version}")
        buf = fh.read()
    finally:
        if own:
            fh.close()
    unpack_from = _RECORD_FIXED.unpack_from
    fixed_size = _RECORD_FIXED.size
    total = len(buf)
    offset = 0
    for i in range(count):
        if offset + fixed_size > total:
            raise TraceFormatError(f"truncated record {i}")
        kind, core, _, seq, address, issue = unpack_from(buf, offset)
        offset += fixed_size
        if kind == 1:
            end = offset + CACHE_LINE_SIZE
            if end > total:
                raise TraceFormatError(f"truncated payload in record {i}")
            payload = buf[offset:end]
            offset = end
            yield MemoryRequest(address=address, access=AccessType.WRITE,
                                data=payload, issue_time_ns=issue,
                                core=core, seq=seq)
        elif kind == 0:
            yield MemoryRequest(address=address, access=AccessType.READ,
                                issue_time_ns=issue, core=core, seq=seq)
        else:
            raise TraceFormatError(f"unknown record kind {kind}")


def read_trace_list(source: Union[str, Path, BinaryIO]) -> List[MemoryRequest]:
    """Deserialize a whole trace into a list."""
    return list(read_trace(source))


def roundtrip_bytes(requests: List[MemoryRequest]) -> List[MemoryRequest]:
    """Serialize to memory and read back (testing helper)."""
    buf = io.BytesIO()
    write_trace(requests, buf)
    buf.seek(0)
    return read_trace_list(buf)
