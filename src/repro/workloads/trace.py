"""Trace record serialization.

Traces can be generated on the fly (the common path), but persisting them
lets experiments replay byte-identical request streams across schemes and
sessions — the artifact-appendix workflow of the paper ("users can generate
other corresponding traces ... kept in the same regulation format").

Format (version 1), little-endian:

============  =======================================================
Header        magic ``b"ESDTRACE"``, u16 version, u16 reserved,
              u64 record count
Record        u8 kind (0=read, 1=write), u8 core, u16 reserved,
              u32 seq, u64 address, f64 issue_time_ns,
              64-byte payload (writes only)
============  =======================================================

With the :mod:`repro.vec` switch on (the default), deserialization runs
batched: the reader parses the whole record stream with one
structured-array gather and builds requests through trusted batch
construction (see :func:`repro.common.types.request_unchecked`) after
numpy validates every record at once.  The byte format — and every error
raised on a malformed trace — is identical to the scalar parser's, which
remains the reference (``tests/test_vec_engine.py`` round-trips both
against each other).

The *writer* stays scalar in both modes: packing was prototyped as a
numpy structured-array fill plus fancy-indexed scatter and measured
~10% slower than the ``struct.pack`` loop — gathering six attributes
from every Python request object dominates, and no array math removes
that.  Deserialization wins (~1.3x) because the fixed fields decode in
one gather; its floor is likewise per-object work (one ``__new__`` plus
one ``__dict__`` display per request).
"""

from __future__ import annotations

import gc
import io
import struct
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator, List, Tuple, Union

import numpy as np

from ..common.errors import TraceFormatError
from ..common.types import CACHE_LINE_SIZE, AccessType, MemoryRequest
from ..vec import flags as _vec

MAGIC = b"ESDTRACE"
VERSION = 1

_HEADER = struct.Struct("<8sHHQ")
_RECORD_FIXED = struct.Struct("<BBHIQd")

#: Numpy mirror of ``_RECORD_FIXED`` (packed little-endian, 24 bytes).
_FIXED_DTYPE = np.dtype([("kind", "u1"), ("core", "u1"), ("reserved", "<u2"),
                         ("seq", "<u4"), ("address", "<u8"),
                         ("issue", "<f8")])
assert _FIXED_DTYPE.itemsize == _RECORD_FIXED.size

_FIXED_COLS = np.arange(_RECORD_FIXED.size)

#: Records per decode/construction chunk of the vectorized parser.  The
#: decoded field lists hold one boxed Python object per field per record;
#: chunking bounds that transient population (5 x chunk) so the garbage
#: collector's pauses stay flat on 10^5+-record traces.
_PARSE_CHUNK = 1 << 15


def _pack_records(requests: Iterable[MemoryRequest]) -> Tuple[bytes, int]:
    """Record packer: one ``struct.pack`` per record.

    Used in both modes — see the module docstring for why a batched
    numpy packer measured slower.
    """
    pack_record = _RECORD_FIXED.pack
    chunks = []
    count = 0
    for req in requests:
        if req.is_write:
            assert req.data is not None
            chunks.append(pack_record(1, req.core, 0, req.seq,
                                      req.address, req.issue_time_ns))
            chunks.append(req.data)
        else:
            chunks.append(pack_record(0, req.core, 0, req.seq,
                                      req.address, req.issue_time_ns))
        count += 1
    return b"".join(chunks), count


def write_trace(requests: Iterable[MemoryRequest],
                destination: Union[str, Path, BinaryIO]) -> int:
    """Serialize a request stream; returns the record count written.

    Records are packed into an in-memory buffer and flushed with two
    writes (header, then all records), instead of two-plus syscalls per
    record.  The header is written once with the final count, so
    non-seekable destinations work.
    """
    payload, count = _pack_records(requests)
    own = isinstance(destination, (str, Path))
    fh: BinaryIO = open(destination, "wb") if own else destination  # type: ignore[arg-type]
    try:
        fh.write(_HEADER.pack(MAGIC, VERSION, 0, count))
        fh.write(payload)
        return count
    finally:
        if own:
            fh.close()


def _parse_records(buf: bytes, count: int) -> Iterator[MemoryRequest]:
    """Reference record parser: ``unpack_from`` offsets, one per record."""
    unpack_from = _RECORD_FIXED.unpack_from
    fixed_size = _RECORD_FIXED.size
    total = len(buf)
    offset = 0
    for i in range(count):
        if offset + fixed_size > total:
            raise TraceFormatError(f"truncated record {i}")
        kind, core, _, seq, address, issue = unpack_from(buf, offset)
        offset += fixed_size
        if kind == 1:
            end = offset + CACHE_LINE_SIZE
            if end > total:
                raise TraceFormatError(f"truncated payload in record {i}")
            payload = buf[offset:end]
            offset = end
            yield MemoryRequest(address=address, access=AccessType.WRITE,
                                data=payload, issue_time_ns=issue,
                                core=core, seq=seq)
        elif kind == 0:
            yield MemoryRequest(address=address, access=AccessType.READ,
                                issue_time_ns=issue, core=core, seq=seq)
        else:
            raise TraceFormatError(f"unknown record kind {kind}")


def _parse_records_vectorized(buf: bytes,
                              count: int) -> Iterator[MemoryRequest]:
    """Batched parser: offset scan, one structured gather, trusted builds.

    Record offsets depend on every preceding record's kind (variable-length
    records), so a cheap sequential scan walks the kinds first — raising
    the same :class:`TraceFormatError` at the same record as the reference
    parser — then the fixed fields of *all* records are gathered and
    decoded in one numpy pass.  Dataclass invariants are batch-checked;
    any violation falls back to the reference parser so the error (type,
    message, failing record) matches exactly.
    """
    total = len(buf)
    fixed_size = _RECORD_FIXED.size
    record_size = fixed_size + CACHE_LINE_SIZE
    offsets: List[int] = []
    append = offsets.append
    offset = 0
    for i in range(count):
        if offset + fixed_size > total:
            raise TraceFormatError(f"truncated record {i}")
        kind = buf[offset]
        append(offset)
        if kind == 1:
            offset += record_size
            if offset > total:
                raise TraceFormatError(f"truncated payload in record {i}")
        elif kind == 0:
            offset += fixed_size
        else:
            raise TraceFormatError(f"unknown record kind {kind}")
    offs = np.asarray(offsets, dtype=np.int64)
    arr = np.frombuffer(buf, dtype=np.uint8)
    rec = arr[offs[:, None] + _FIXED_COLS].reshape(-1).view(_FIXED_DTYPE)
    if np.any(rec["address"] % CACHE_LINE_SIZE):
        # A record violates the request invariants; let the reference
        # parser raise the exact per-record ValueError.  Nothing has been
        # yielded yet, so the scalar replay reproduces the whole stream up
        # to the failing record.
        yield from _parse_records(buf, count)
        return
    read_access = AccessType.READ
    write_access = AccessType.WRITE
    payload_end = record_size
    new = MemoryRequest.__new__
    cls = MemoryRequest
    for chunk_start in range(0, count, _PARSE_CHUNK):
        chunk = rec[chunk_start:chunk_start + _PARSE_CHUNK]
        requests = [None] * len(chunk)
        index = 0
        # Defer garbage collection across the chunk's bulk construction:
        # tens of thousands of container allocations in a tight loop
        # otherwise trigger repeated young-generation passes over objects
        # that are all live, which costs more than the decode itself on
        # 10^5+-record traces.  The window never spans a yield, so
        # consumer code always runs with the collector in its prior state.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            # Inlined trusted construction (the loop body of
            # request_unchecked): one __new__ plus one dict display per
            # record is the pure-Python floor for building the objects.
            for kind, core, seq, address, issue, offset in zip(
                    chunk["kind"].tolist(), chunk["core"].tolist(),
                    chunk["seq"].tolist(), chunk["address"].tolist(),
                    chunk["issue"].tolist(),
                    offsets[chunk_start:chunk_start + _PARSE_CHUNK]):
                if kind:
                    data = buf[offset + fixed_size:offset + payload_end]
                    access = write_access
                else:
                    data = None
                    access = read_access
                request = new(cls)
                request.__dict__ = {"address": address, "access": access,
                                    "data": data, "issue_time_ns": issue,
                                    "core": core, "seq": seq}
                requests[index] = request
                index += 1
        finally:
            if gc_was_enabled:
                gc.enable()
        yield from requests


def read_trace(source: Union[str, Path, BinaryIO]) -> Iterator[MemoryRequest]:
    """Deserialize a trace, yielding requests in order.

    Batched: the record stream is read into memory with one ``read`` and
    parsed with ``unpack_from`` offsets — or, with :mod:`repro.vec`
    enabled, decoded by the batched numpy parser.  Like the per-record
    reader both replaced, this is a generator: nothing is read until the
    first request is drawn.

    Raises:
        TraceFormatError: on bad magic, version, or truncated records.
    """
    own = isinstance(source, (str, Path))
    fh: BinaryIO = open(source, "rb") if own else source  # type: ignore[arg-type]
    try:
        header = fh.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise TraceFormatError("truncated header")
        magic, version, _, count = _HEADER.unpack(header)
        if magic != MAGIC:
            raise TraceFormatError(f"bad magic {magic!r}")
        if version != VERSION:
            raise TraceFormatError(f"unsupported version {version}")
        buf = fh.read()
    finally:
        if own:
            fh.close()
    if _vec.ENABLED:
        yield from _parse_records_vectorized(buf, count)
    else:
        yield from _parse_records(buf, count)


def read_trace_list(source: Union[str, Path, BinaryIO]) -> List[MemoryRequest]:
    """Deserialize a whole trace into a list."""
    return list(read_trace(source))


def roundtrip_bytes(requests: List[MemoryRequest]) -> List[MemoryRequest]:
    """Serialize to memory and read back (testing helper)."""
    buf = io.BytesIO()
    write_trace(requests, buf)
    buf.seek(0)
    return read_trace_list(buf)
