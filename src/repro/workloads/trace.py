"""Trace record serialization.

Traces can be generated on the fly (the common path), but persisting them
lets experiments replay byte-identical request streams across schemes and
sessions — the artifact-appendix workflow of the paper ("users can generate
other corresponding traces ... kept in the same regulation format").

Record encoding (shared by both container versions), little-endian:

============  =======================================================
Record        u8 kind (0=read, 1=write), u8 core, u16 reserved,
              u32 seq, u64 address, f64 issue_time_ns,
              64-byte payload (writes only)
============  =======================================================

Container **version 1** (legacy, still read bit-exactly): a 20-byte
header — magic ``b"ESDTRACE"``, u16 version, u16 reserved, u64 record
count — followed by all records inline.  Writing it materializes the
whole payload, so it is only suitable for traces that fit in memory.

Container **version 2** (the default): the same 20-byte header (u16
flags replaces the reserved field, bit 0 = zlib-compressed chunks; the
u64 count field is reserved/zero — the authoritative count lives in the
footer, so the writer never needs to seek) followed by a sequence of
chunk frames::

    u32 record_count, u32 raw_len, u32 stored_len, stored bytes

and terminated by an end-of-trace marker frame with ``record_count ==
0`` whose 8 stored bytes are the u64 total record count.  The writer
packs ``chunk_records`` records at a time straight from the source
iterator, so a generator streams to disk in bounded memory; the reader
decodes chunk by chunk the same way.  A file that is missing its marker
frame (a capture killed mid-write) never parses as complete, and bytes
after the marker raise — concatenation or header corruption cannot
silently drop records.

With the :mod:`repro.vec` switch on (the default), record deserialization
runs batched: the reader parses each record span with one
structured-array gather and builds requests through trusted batch
construction (see :func:`repro.common.types.request_unchecked`) after
numpy validates every record at once.  The byte format — and every error
raised on a malformed trace — is identical to the scalar parser's, which
remains the reference (``tests/test_vec_engine.py`` round-trips both
against each other).

The *writer* stays scalar in both modes: packing was prototyped as a
numpy structured-array fill plus fancy-indexed scatter and measured
~10% slower than the ``struct.pack`` loop — gathering six attributes
from every Python request object dominates, and no array math removes
that.  Deserialization wins (~1.3x) because the fixed fields decode in
one gather; its floor is likewise per-object work (one ``__new__`` plus
one ``__dict__`` display per request).
"""

from __future__ import annotations

import gc
import io
import struct
import zlib
from itertools import islice
from pathlib import Path
from typing import BinaryIO, Dict, Iterable, Iterator, List, Tuple, Union

import numpy as np

from ..common.atomic import atomic_binary_writer
from ..common.errors import TraceFormatError
from ..common.types import CACHE_LINE_SIZE, AccessType, MemoryRequest
from ..vec import flags as _vec

MAGIC = b"ESDTRACE"
VERSION = 1
VERSION_V2 = 2
DEFAULT_VERSION = VERSION_V2

#: Version-2 header flag bit: chunk payloads are zlib-compressed.
FLAG_ZLIB = 0x0001
_KNOWN_FLAGS = FLAG_ZLIB

#: Records per version-2 chunk frame.  Bounds writer and reader memory to
#: ~``chunk_records``  x 88 bytes (plus the boxed request objects of one
#: chunk) regardless of trace length.
DEFAULT_CHUNK_RECORDS = 16384

_HEADER = struct.Struct("<8sHHQ")
_RECORD_FIXED = struct.Struct("<BBHIQd")
_CHUNK_FRAME = struct.Struct("<III")
_FOOTER = struct.Struct("<Q")

#: Numpy mirror of ``_RECORD_FIXED`` (packed little-endian, 24 bytes).
_FIXED_DTYPE = np.dtype([("kind", "u1"), ("core", "u1"), ("reserved", "<u2"),
                         ("seq", "<u4"), ("address", "<u8"),
                         ("issue", "<f8")])
assert _FIXED_DTYPE.itemsize == _RECORD_FIXED.size

_FIXED_COLS = np.arange(_RECORD_FIXED.size)

#: Records per decode/construction chunk of the vectorized parser.  The
#: decoded field lists hold one boxed Python object per field per record;
#: chunking bounds that transient population (5 x chunk) so the garbage
#: collector's pauses stay flat on 10^5+-record traces.
_PARSE_CHUNK = 1 << 15

#: Module-level trace-IO counters (process-global, like the memo-cache
#: stats): trace files are read and written outside any simulation run,
#: so these cannot live on the per-run obs registry.  Snapshot with
#: :func:`trace_io_stats`.
_IO_COUNTERS: Dict[str, int] = {
    "traces_written": 0,
    "traces_read": 0,
    "records_written": 0,
    "records_read": 0,
    "chunks_written": 0,
    "chunks_read": 0,
    "payload_bytes_written": 0,
    "stored_bytes_written": 0,
    "captures_finalized": 0,
}


def trace_io_stats() -> Dict[str, int]:
    """Snapshot of the process-global trace-IO counters."""
    return dict(_IO_COUNTERS)


def reset_trace_io_stats() -> None:
    """Zero the trace-IO counters (testing/benchmark helper)."""
    for key in _IO_COUNTERS:
        _IO_COUNTERS[key] = 0


def _pack_records(requests: Iterable[MemoryRequest]) -> Tuple[bytes, int]:
    """Record packer: one ``struct.pack`` per record.

    Used in both modes — see the module docstring for why a batched
    numpy packer measured slower.

    Raises:
        TraceFormatError: when a write request carries no 64-byte payload
            or a read request carries one — a malformed request must fail
            loudly here, not as an opaque ``TypeError`` inside the join
            (and must keep failing under ``python -O``, which strips
            ``assert``).
    """
    pack_record = _RECORD_FIXED.pack
    chunks = []
    count = 0
    for req in requests:
        if req.is_write:
            data = req.data
            if not isinstance(data, (bytes, bytearray)) \
                    or len(data) != CACHE_LINE_SIZE:
                raise TraceFormatError(
                    f"write request seq={req.seq} has no "
                    f"{CACHE_LINE_SIZE}-byte payload")
            chunks.append(pack_record(1, req.core, 0, req.seq,
                                      req.address, req.issue_time_ns))
            chunks.append(bytes(data))
        else:
            if req.data is not None:
                raise TraceFormatError(
                    f"read request seq={req.seq} carries a payload")
            chunks.append(pack_record(0, req.core, 0, req.seq,
                                      req.address, req.issue_time_ns))
        count += 1
    return b"".join(chunks), count


def _write_trace_v1(requests: Iterable[MemoryRequest], fh: BinaryIO) -> int:
    """Legacy single-buffer writer: header with final count, then records."""
    payload, count = _pack_records(requests)
    fh.write(_HEADER.pack(MAGIC, VERSION, 0, count))
    fh.write(payload)
    _IO_COUNTERS["traces_written"] += 1
    _IO_COUNTERS["records_written"] += count
    _IO_COUNTERS["chunks_written"] += 1
    _IO_COUNTERS["payload_bytes_written"] += len(payload)
    _IO_COUNTERS["stored_bytes_written"] += len(payload)
    return count


def _write_trace_v2(requests: Iterable[MemoryRequest], fh: BinaryIO, *,
                    compress: bool, chunk_records: int) -> int:
    """Streaming chunked writer: bounded memory from any iterator."""
    if chunk_records <= 0:
        raise TraceFormatError(
            f"chunk_records must be positive, got {chunk_records}")
    flags = FLAG_ZLIB if compress else 0
    fh.write(_HEADER.pack(MAGIC, VERSION_V2, flags, 0))
    source = iter(requests)
    total = 0
    while True:
        payload, count = _pack_records(islice(source, chunk_records))
        if count == 0:
            break
        stored = zlib.compress(payload, 6) if compress else payload
        fh.write(_CHUNK_FRAME.pack(count, len(payload), len(stored)))
        fh.write(stored)
        total += count
        _IO_COUNTERS["chunks_written"] += 1
        _IO_COUNTERS["payload_bytes_written"] += len(payload)
        _IO_COUNTERS["stored_bytes_written"] += len(stored)
    fh.write(_CHUNK_FRAME.pack(0, 0, _FOOTER.size))
    fh.write(_FOOTER.pack(total))
    _IO_COUNTERS["traces_written"] += 1
    _IO_COUNTERS["records_written"] += total
    return total


def write_trace(requests: Iterable[MemoryRequest],
                destination: Union[str, Path, BinaryIO], *,
                version: int = DEFAULT_VERSION,
                compress: bool = False,
                chunk_records: int = DEFAULT_CHUNK_RECORDS) -> int:
    """Serialize a request stream; returns the record count written.

    With ``version=2`` (the default) records stream to the destination in
    ``chunk_records``-sized frames, so any iterator — including a live
    generator — serializes in bounded memory; ``compress=True`` zlib-
    compresses each frame.  ``version=1`` writes the legacy single-buffer
    format (whole payload materialized; no compression).

    Raises:
        TraceFormatError: on an unsupported version, compression on a v1
            container, or a malformed request in the stream.
    """
    if version not in (VERSION, VERSION_V2):
        raise TraceFormatError(f"unsupported version {version}")
    if compress and version != VERSION_V2:
        raise TraceFormatError("compression requires trace format v2")
    own = isinstance(destination, (str, Path))
    fh: BinaryIO = open(destination, "wb") if own else destination  # type: ignore[arg-type]
    try:
        if version == VERSION:
            return _write_trace_v1(requests, fh)
        return _write_trace_v2(requests, fh, compress=compress,
                               chunk_records=chunk_records)
    finally:
        if own:
            fh.close()


def capture_trace(requests: Iterable[MemoryRequest],
                  path: Union[str, Path], *,
                  version: int = DEFAULT_VERSION,
                  compress: bool = False,
                  chunk_records: int = DEFAULT_CHUNK_RECORDS) -> int:
    """Stream a request iterator into an atomically-finalized trace file.

    The capture writes through a same-directory temp file and only
    renames it onto ``path`` (fsync before and after) once the end-of-
    trace marker is on disk — a capture killed mid-write leaves either no
    file or the previous complete file at ``path``, never a torn trace
    that parses as complete.  Returns the record count captured.
    """
    path = Path(path)
    with atomic_binary_writer(path) as fh:
        count = write_trace(requests, fh, version=version,
                            compress=compress, chunk_records=chunk_records)
    _IO_COUNTERS["captures_finalized"] += 1
    return count


def _parse_records(buf: bytes, count: int) -> Iterator[MemoryRequest]:
    """Reference record parser: ``unpack_from`` offsets, one per record."""
    unpack_from = _RECORD_FIXED.unpack_from
    fixed_size = _RECORD_FIXED.size
    total = len(buf)
    offset = 0
    for i in range(count):
        if offset + fixed_size > total:
            raise TraceFormatError(f"truncated record {i}")
        kind, core, _, seq, address, issue = unpack_from(buf, offset)
        offset += fixed_size
        if kind == 1:
            end = offset + CACHE_LINE_SIZE
            if end > total:
                raise TraceFormatError(f"truncated payload in record {i}")
            payload = buf[offset:end]
            offset = end
            yield MemoryRequest(address=address, access=AccessType.WRITE,
                                data=payload, issue_time_ns=issue,
                                core=core, seq=seq)
        elif kind == 0:
            yield MemoryRequest(address=address, access=AccessType.READ,
                                issue_time_ns=issue, core=core, seq=seq)
        else:
            raise TraceFormatError(f"unknown record kind {kind}")
    if offset != total:
        raise TraceFormatError(
            f"trailing bytes: {total - offset} after {count} records")


def _batch_invariants_ok(rec: np.ndarray, offs: np.ndarray,
                         total: int) -> bool:
    """Batch-check every ``MemoryRequest.__post_init__`` invariant.

    The vectorized parser bypasses dataclass validation via trusted
    construction, so the full invariant set — alignment, address sign,
    and write-payload length — must hold for the whole batch first.  Any
    violation sends the caller to the scalar replay, which raises the
    exact per-record error.  (Record kinds are already pinned to {0, 1}
    by the offset scan.)
    """
    address = rec["address"]
    if np.any(address % CACHE_LINE_SIZE):
        return False
    # u64 addresses >= 2**63 read back as huge Python ints the dataclass
    # would accept, but keep the trusted path conservative: anything that
    # looks negative in a signed view goes through the reference parser.
    if np.any(address.astype(np.int64, copy=False) < 0):
        return False
    writes = rec["kind"] == 1
    if np.any(offs[writes] + _RECORD_FIXED.size + CACHE_LINE_SIZE > total):
        return False
    return True


def _parse_records_vectorized(buf: bytes,
                              count: int) -> Iterator[MemoryRequest]:
    """Batched parser: offset scan, one structured gather, trusted builds.

    Record offsets depend on every preceding record's kind (variable-length
    records), so a cheap sequential scan walks the kinds first — raising
    the same :class:`TraceFormatError` at the same record as the reference
    parser — then the fixed fields of *all* records are gathered and
    decoded in one numpy pass.  Dataclass invariants are batch-checked
    (see :func:`_batch_invariants_ok`); any violation falls back to the
    reference parser so the error (type, message, failing record) matches
    exactly.
    """
    total = len(buf)
    fixed_size = _RECORD_FIXED.size
    record_size = fixed_size + CACHE_LINE_SIZE
    offsets: List[int] = []
    append = offsets.append
    offset = 0
    for i in range(count):
        if offset + fixed_size > total:
            raise TraceFormatError(f"truncated record {i}")
        kind = buf[offset]
        append(offset)
        if kind == 1:
            offset += record_size
            if offset > total:
                raise TraceFormatError(f"truncated payload in record {i}")
        elif kind == 0:
            offset += fixed_size
        else:
            raise TraceFormatError(f"unknown record kind {kind}")
    if offset != total:
        raise TraceFormatError(
            f"trailing bytes: {total - offset} after {count} records")
    offs = np.asarray(offsets, dtype=np.int64)
    arr = np.frombuffer(buf, dtype=np.uint8)
    rec = arr[offs[:, None] + _FIXED_COLS].reshape(-1).view(_FIXED_DTYPE)
    if not _batch_invariants_ok(rec, offs, total):
        # A record violates the request invariants; let the reference
        # parser raise the exact per-record ValueError.  Nothing has been
        # yielded yet, so the scalar replay reproduces the whole stream up
        # to the failing record.
        yield from _parse_records(buf, count)
        return
    read_access = AccessType.READ
    write_access = AccessType.WRITE
    payload_end = record_size
    new = MemoryRequest.__new__
    cls = MemoryRequest
    for chunk_start in range(0, count, _PARSE_CHUNK):
        chunk = rec[chunk_start:chunk_start + _PARSE_CHUNK]
        requests = [None] * len(chunk)
        index = 0
        # Defer garbage collection across the chunk's bulk construction:
        # tens of thousands of container allocations in a tight loop
        # otherwise trigger repeated young-generation passes over objects
        # that are all live, which costs more than the decode itself on
        # 10^5+-record traces.  The window never spans a yield, so
        # consumer code always runs with the collector in its prior state.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            # Inlined trusted construction (the loop body of
            # request_unchecked): one __new__ plus one dict display per
            # record is the pure-Python floor for building the objects.
            for kind, core, seq, address, issue, offset in zip(
                    chunk["kind"].tolist(), chunk["core"].tolist(),
                    chunk["seq"].tolist(), chunk["address"].tolist(),
                    chunk["issue"].tolist(),
                    offsets[chunk_start:chunk_start + _PARSE_CHUNK]):
                if kind:
                    data = buf[offset + fixed_size:offset + payload_end]
                    access = write_access
                else:
                    data = None
                    access = read_access
                request = new(cls)
                request.__dict__ = {"address": address, "access": access,
                                    "data": data, "issue_time_ns": issue,
                                    "core": core, "seq": seq}
                requests[index] = request
                index += 1
        finally:
            if gc_was_enabled:
                gc.enable()
        yield from requests


def _read_records_v2(fh: BinaryIO, flags: int,
                     vec: bool) -> Iterator[MemoryRequest]:
    """Chunk-by-chunk v2 decoder; validates the marker frame and footer."""
    if flags & ~_KNOWN_FLAGS:
        raise TraceFormatError(f"unknown trace flags {flags:#06x}")
    compressed = bool(flags & FLAG_ZLIB)
    parse = _parse_records_vectorized if vec else _parse_records
    total = 0
    chunk_index = 0
    while True:
        frame = fh.read(_CHUNK_FRAME.size)
        if len(frame) != _CHUNK_FRAME.size:
            raise TraceFormatError(
                f"truncated chunk frame {chunk_index} (missing end-of-trace "
                f"marker after {total} records)")
        count, raw_len, stored_len = _CHUNK_FRAME.unpack(frame)
        stored = fh.read(stored_len)
        if len(stored) != stored_len:
            raise TraceFormatError(f"truncated chunk {chunk_index}")
        if count == 0:
            if raw_len != 0 or stored_len != _FOOTER.size:
                raise TraceFormatError("malformed end-of-trace marker")
            (declared,) = _FOOTER.unpack(stored)
            if declared != total:
                raise TraceFormatError(
                    f"record count mismatch: marker declares {declared}, "
                    f"chunks held {total}")
            if fh.read(1):
                raise TraceFormatError(
                    "trailing bytes: data after end-of-trace marker")
            _IO_COUNTERS["traces_read"] += 1
            return
        if compressed:
            try:
                payload = zlib.decompress(stored)
            except zlib.error as exc:
                raise TraceFormatError(
                    f"corrupt compressed chunk {chunk_index}: {exc}") from exc
        else:
            payload = stored
        if len(payload) != raw_len:
            raise TraceFormatError(
                f"chunk {chunk_index} length mismatch: frame declares "
                f"{raw_len} bytes, stored payload is {len(payload)}")
        yield from parse(payload, count)
        total += count
        chunk_index += 1
        _IO_COUNTERS["chunks_read"] += 1
        _IO_COUNTERS["records_read"] += count


def read_trace(source: Union[str, Path, BinaryIO]) -> Iterator[MemoryRequest]:
    """Deserialize a trace, yielding requests in order.

    Version-1 files are read into memory with one ``read`` and parsed
    with ``unpack_from`` offsets — or, with :mod:`repro.vec` enabled,
    decoded by the batched numpy parser.  Version-2 files decode chunk by
    chunk in bounded memory (same parser dispatch per chunk).  Like the
    per-record reader both replaced, this is a generator: nothing is read
    until the first request is drawn, and the file handle stays open only
    while the generator is live.

    Raises:
        TraceFormatError: on bad magic, version, flags, truncated or
            trailing records, or a missing end-of-trace marker (v2).
    """
    own = isinstance(source, (str, Path))
    fh: BinaryIO = open(source, "rb") if own else source  # type: ignore[arg-type]
    try:
        header = fh.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise TraceFormatError("truncated header")
        magic, version, flags, count = _HEADER.unpack(header)
        if magic != MAGIC:
            raise TraceFormatError(f"bad magic {magic!r}")
        if version == VERSION:
            buf = fh.read()
            vec = _vec.ENABLED
            if vec:
                yield from _parse_records_vectorized(buf, count)
            else:
                yield from _parse_records(buf, count)
            _IO_COUNTERS["traces_read"] += 1
            _IO_COUNTERS["chunks_read"] += 1
            _IO_COUNTERS["records_read"] += count
        elif version == VERSION_V2:
            yield from _read_records_v2(fh, flags, _vec.ENABLED)
        else:
            raise TraceFormatError(f"unsupported version {version}")
    finally:
        if own:
            fh.close()


def read_trace_list(source: Union[str, Path, BinaryIO]) -> List[MemoryRequest]:
    """Deserialize a whole trace into a list."""
    return list(read_trace(source))


def trace_record_count(source: Union[str, Path, BinaryIO]) -> int:
    """Return a trace file's record count without decoding records.

    v1 stores the count in the header; v2 walks the chunk frames
    (seeking over the stored bytes) and cross-checks the footer, so a
    truncated capture raises instead of reporting a partial count.
    """
    own = isinstance(source, (str, Path))
    fh: BinaryIO = open(source, "rb") if own else source  # type: ignore[arg-type]
    try:
        header = fh.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise TraceFormatError("truncated header")
        magic, version, _, count = _HEADER.unpack(header)
        if magic != MAGIC:
            raise TraceFormatError(f"bad magic {magic!r}")
        if version == VERSION:
            return count
        if version != VERSION_V2:
            raise TraceFormatError(f"unsupported version {version}")
        total = 0
        chunk_index = 0
        while True:
            frame = fh.read(_CHUNK_FRAME.size)
            if len(frame) != _CHUNK_FRAME.size:
                raise TraceFormatError(
                    f"truncated chunk frame {chunk_index} (missing "
                    f"end-of-trace marker after {total} records)")
            records, raw_len, stored_len = _CHUNK_FRAME.unpack(frame)
            if records == 0:
                stored = fh.read(stored_len)
                if raw_len != 0 or stored_len != _FOOTER.size \
                        or len(stored) != stored_len:
                    raise TraceFormatError("malformed end-of-trace marker")
                (declared,) = _FOOTER.unpack(stored)
                if declared != total:
                    raise TraceFormatError(
                        f"record count mismatch: marker declares {declared}, "
                        f"chunks held {total}")
                if fh.read(1):
                    raise TraceFormatError(
                        "trailing bytes: data after end-of-trace marker")
                return total
            if fh.seekable():
                fh.seek(stored_len, io.SEEK_CUR)
            elif len(fh.read(stored_len)) != stored_len:
                raise TraceFormatError(f"truncated chunk {chunk_index}")
            total += records
            chunk_index += 1
    finally:
        if own:
            fh.close()


def roundtrip_bytes(requests: List[MemoryRequest], *,
                    version: int = DEFAULT_VERSION,
                    compress: bool = False) -> List[MemoryRequest]:
    """Serialize to memory and read back (testing helper)."""
    buf = io.BytesIO()
    write_trace(requests, buf, version=version, compress=compress)
    buf.seek(0)
    return read_trace_list(buf)
