"""Multiprogrammed workload mixes.

The paper evaluates an 8-core system; real deployments co-run several
applications, which changes what the dedup structures see: content pools
stay private per application (no cross-app duplicates unless both write
zeros), while the memory controller sees the *merged* request stream and
its tighter arrival spacing.  This module interleaves per-application
traces by issue time into one mix, with per-app address-space slicing so
co-runners never alias.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from ..common.types import CACHE_LINE_SIZE, MemoryRequest
from .generator import TraceGenerator
from .profiles import WorkloadProfile, get_profile


@dataclass(frozen=True)
class MixSpec:
    """One co-runner in a mix: an application and its core binding."""

    app: str
    core: int

    def __post_init__(self) -> None:
        get_profile(self.app)  # validates the name
        if self.core < 0:
            raise ValueError("core must be non-negative")


#: Canonical mixes in the spirit of multiprogrammed NVMM studies: pairs of
#: high-dup + low-dup, read-heavy + write-heavy, predictable + erratic.
CANONICAL_MIXES: Dict[str, Sequence[str]] = {
    "mix_highdup": ("deepsjeng", "roms", "lbm", "mcf"),
    "mix_lowdup": ("namd", "imagick", "nab", "x264"),
    "mix_balanced": ("gcc", "lbm", "namd", "dedup"),
    "mix_parsec": ("blackscholes", "facesim", "fluidanimate", "x264"),
}


class MixedTraceGenerator:
    """Interleaves several applications' streams into one controller feed.

    Each application keeps its own content pool and profile; addresses are
    offset into disjoint slices of the physical address space so co-runners
    never write the same logical line.

    Args:
        specs: the co-runners (an app name list is promoted to specs on
            sequential cores).
        seed: base RNG seed; each co-runner derives an independent stream.
    """

    def __init__(self, specs: Sequence, seed: int = 2023) -> None:
        if not specs:
            raise ValueError("a mix needs at least one application")
        normalized: List[MixSpec] = []
        for i, spec in enumerate(specs):
            if isinstance(spec, MixSpec):
                normalized.append(spec)
            else:
                normalized.append(MixSpec(app=str(spec), core=i))
        self.specs = tuple(normalized)
        self.seed = seed
        self._profiles: List[WorkloadProfile] = [
            get_profile(s.app) for s in self.specs]
        # Disjoint address slices: each app gets a region sized to its
        # working set, rounded up to a power-of-two stride.
        self._offsets: List[int] = []
        offset_lines = 0
        for profile in self._profiles:
            self._offsets.append(offset_lines)
            stride = 1
            while stride < profile.working_set_lines:
                stride <<= 1
            offset_lines += stride

    @property
    def total_address_lines(self) -> int:
        """Upper bound of the mixed logical address space, in lines."""
        last_profile = self._profiles[-1]
        stride = 1
        while stride < last_profile.working_set_lines:
            stride <<= 1
        return self._offsets[-1] + stride

    def _rebase(self, request: MemoryRequest, slot: int,
                seq: int) -> MemoryRequest:
        spec = self.specs[slot]
        offset_bytes = self._offsets[slot] * CACHE_LINE_SIZE
        return MemoryRequest(address=request.address + offset_bytes,
                             access=request.access, data=request.data,
                             issue_time_ns=request.issue_time_ns,
                             core=spec.core, seq=seq)

    def generate(self, num_requests: int) -> Iterator[MemoryRequest]:
        """Yield ``num_requests`` merged requests in issue-time order."""
        if num_requests <= 0:
            raise ValueError("num_requests must be positive")
        # Over-provision each stream; the merge stops at num_requests.
        per_app = num_requests  # upper bound each co-runner may contribute
        streams = []
        for slot, spec in enumerate(self.specs):
            gen = TraceGenerator(self._profiles[slot],
                                 seed=self.seed * 31 + slot)
            streams.append(gen.generate(per_app))
        heap: List = []
        for slot, stream in enumerate(streams):
            first = next(stream, None)
            if first is not None:
                heap.append((first.issue_time_ns, slot, first))
        heapq.heapify(heap)
        emitted = 0
        while heap and emitted < num_requests:
            _, slot, request = heapq.heappop(heap)
            emitted += 1
            yield self._rebase(request, slot, emitted)
            nxt = next(streams[slot], None)
            if nxt is not None:
                heapq.heappush(heap, (nxt.issue_time_ns, slot, nxt))

    def generate_list(self, num_requests: int) -> List[MemoryRequest]:
        return list(self.generate(num_requests))


def make_mix(name_or_apps, seed: int = 2023) -> MixedTraceGenerator:
    """Build a mix from a canonical name or an explicit app sequence."""
    if isinstance(name_or_apps, str):
        try:
            apps = CANONICAL_MIXES[name_or_apps]
        except KeyError:
            raise KeyError(
                f"unknown mix {name_or_apps!r}; known: "
                f"{sorted(CANONICAL_MIXES)}") from None
    else:
        apps = name_or_apps
    return MixedTraceGenerator(apps, seed=seed)
