"""Workload-characteristics analysis (Figures 1 and 3 of the paper).

Given a request stream, these helpers measure the statistics the paper's
motivation section is built on:

* :func:`duplicate_rate` — share of written lines whose content was written
  before (Figure 1).
* :func:`reference_count_distribution` — unique lines and pre-dedup volume
  bucketed by how many times each unique content was written: num1, num10
  (2–10), num100 (11–100), num1000 (101–1000), num1000+ (Figure 3).
"""

from __future__ import annotations

from collections import Counter as PyCounter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..common.types import MemoryRequest, is_zero_line

#: Reference-count buckets in the paper's Figure 3 terminology.
BUCKETS: Tuple[str, ...] = ("num1", "num10", "num100", "num1000", "num1000+")


def bucket_for_count(count: int) -> str:
    """Figure 3's bucket name for a write (reference) count."""
    if count < 1:
        raise ValueError("reference count must be at least 1")
    if count == 1:
        return "num1"
    if count <= 10:
        return "num10"
    if count <= 100:
        return "num100"
    if count <= 1000:
        return "num1000"
    return "num1000+"


@dataclass(frozen=True)
class DuplicateStats:
    """Figure 1 statistics for one trace."""

    total_writes: int
    duplicate_writes: int
    zero_duplicate_writes: int
    unique_contents: int

    @property
    def duplicate_rate(self) -> float:
        if self.total_writes == 0:
            return 0.0
        return self.duplicate_writes / self.total_writes

    @property
    def zero_share_of_duplicates(self) -> float:
        if self.duplicate_writes == 0:
            return 0.0
        return self.zero_duplicate_writes / self.duplicate_writes


def duplicate_stats(requests: Iterable[MemoryRequest]) -> DuplicateStats:
    """Measure duplicate-rate statistics over a request stream."""
    seen: set = set()
    total = dup = zero_dup = 0
    for req in requests:
        if not req.is_write:
            continue
        assert req.data is not None
        total += 1
        if req.data in seen:
            dup += 1
            if is_zero_line(req.data):
                zero_dup += 1
        else:
            seen.add(req.data)
    return DuplicateStats(total_writes=total, duplicate_writes=dup,
                          zero_duplicate_writes=zero_dup,
                          unique_contents=len(seen))


def duplicate_rate(requests: Iterable[MemoryRequest]) -> float:
    """Fraction of written lines whose content was written before."""
    return duplicate_stats(requests).duplicate_rate


@dataclass(frozen=True)
class ReferenceDistribution:
    """Figure 3 statistics: per-bucket unique-line and volume shares."""

    #: bucket -> number of unique contents whose write count falls in it.
    unique_lines: Dict[str, int]
    #: bucket -> total writes (pre-dedup volume) contributed by the bucket.
    volume: Dict[str, int]

    @property
    def total_unique(self) -> int:
        return sum(self.unique_lines.values())

    @property
    def total_volume(self) -> int:
        return sum(self.volume.values())

    def unique_share(self, bucket: str) -> float:
        """Share of unique lines in ``bucket`` (Figure 3a view)."""
        if self.total_unique == 0:
            return 0.0
        return self.unique_lines.get(bucket, 0) / self.total_unique

    def volume_share(self, bucket: str) -> float:
        """Share of pre-dedup volume from ``bucket`` (Figure 3b view)."""
        if self.total_volume == 0:
            return 0.0
        return self.volume.get(bucket, 0) / self.total_volume

    def as_rows(self) -> List[Tuple[str, float, float]]:
        """(bucket, unique share, volume share) rows in bucket order."""
        return [(b, self.unique_share(b), self.volume_share(b))
                for b in BUCKETS]


def reference_count_distribution(
        requests: Iterable[MemoryRequest]) -> ReferenceDistribution:
    """Bucket unique contents by write count, as Figure 3 does."""
    counts: PyCounter = PyCounter()
    for req in requests:
        if req.is_write:
            counts[req.data] += 1
    unique_lines: Dict[str, int] = {b: 0 for b in BUCKETS}
    volume: Dict[str, int] = {b: 0 for b in BUCKETS}
    for _content, count in counts.items():
        bucket = bucket_for_count(count)
        unique_lines[bucket] += 1
        volume[bucket] += count
    return ReferenceDistribution(unique_lines=unique_lines, volume=volume)


def content_locality_headline(
        dist: ReferenceDistribution) -> Tuple[float, float]:
    """The paper's headline locality numbers.

    Returns ``(unique share of num1000+ lines, volume share of num1000+)``
    — the paper reports 0.08 % and 42.7 % averaged over 20 applications.
    """
    return dist.unique_share("num1000+"), dist.volume_share("num1000+")
