"""Synthetic LLC-eviction trace generator.

Produces a stream of :class:`~repro.common.types.MemoryRequest` whose
*content statistics* match a :class:`~repro.workloads.profiles.WorkloadProfile`:

* the configured duplicate rate (fraction of writes whose 64-byte content
  was written before),
* the zero-line share of duplicates,
* Zipf-skewed content popularity (content locality / reference counts),
* Markov-bursty duplicate/unique alternation (predictability),
* the configured read/write mix, working-set size, and arrival spacing.

The generator works at memory-controller granularity — it directly emits
the post-LLC request stream.  That matches how the paper's analysis treats
workloads (everything is phrased in terms of "cache lines evicted from the
LLC"), and it is the stream every dedup scheme consumes.  For end-to-end
demonstrations that include the cache hierarchy, see
:class:`CPUAccessGenerator`, which emits pre-hierarchy load/store traffic
instead.
"""

from __future__ import annotations

import struct
from bisect import bisect_left
from typing import Iterator, List, Optional

import numpy as np

from ..common.types import (
    CACHE_LINE_SIZE,
    ZERO_LINE,
    AccessType,
    MemoryRequest,
)
from ..cache.hierarchy import CPUAccess
from .profiles import WorkloadProfile, get_profile


class ZipfSampler:
    """Bounded Zipf sampling over a growing population.

    Item *k* (1-based insertion rank) carries fixed weight ``k**-s``; the
    sampler keeps a cumulative-weight array and draws by inverse transform.
    Earlier-inserted items are more popular, a standard synthetic stand-in
    for hot content.
    """

    def __init__(self, skew: float, rng: np.random.Generator) -> None:
        if skew <= 0:
            raise ValueError("skew must be positive")
        self._skew = skew
        self._rng = rng
        self._cumweights: List[float] = []

    def __len__(self) -> int:
        return len(self._cumweights)

    def add_item(self) -> int:
        """Register one more item; returns its 0-based index."""
        rank = len(self._cumweights) + 1
        weight = rank ** (-self._skew)
        prev = self._cumweights[-1] if self._cumweights else 0.0
        self._cumweights.append(prev + weight)
        return rank - 1

    def sample(self) -> int:
        """Draw a 0-based item index with Zipf probabilities."""
        if not self._cumweights:
            raise ValueError("cannot sample from an empty population")
        u = self._rng.random() * self._cumweights[-1]
        return bisect_left(self._cumweights, u)


class TraceGenerator:
    """Generates one application's memory-controller request stream.

    Args:
        profile: application statistics (or a name resolved via
            :func:`~repro.workloads.profiles.get_profile`).
        seed: RNG seed; combined with the profile name so each application
            gets an independent but reproducible stream.
    """

    def __init__(self, profile, seed: int = 2023) -> None:
        if isinstance(profile, str):
            profile = get_profile(profile)
        self.profile: WorkloadProfile = profile
        name_salt = sum(profile.name.encode())
        self._rng = np.random.default_rng((seed * 1_000_003 + name_salt))
        self._content_sampler = ZipfSampler(profile.locality_skew, self._rng)
        self._contents: List[bytes] = []
        self._zero_emitted = False
        self._unique_counter = 0
        self._seq = 0
        self._clock_ns = 0.0
        self._prev_was_dup = bool(self._rng.random() < profile.duplicate_rate)
        # Addresses: a shuffled mapping from popularity rank to line address
        # gives spatially-scattered hot lines.
        self._address_pool = self._rng.permutation(
            profile.working_set_lines).astype(np.int64)
        self._written_addresses: List[int] = []
        self._written_set: set = set()
        self._address_sampler = ZipfSampler(0.8, self._rng)

    # ------------------------------------------------------------------
    # Content synthesis
    # ------------------------------------------------------------------

    def _fresh_unique_line(self) -> bytes:
        """A never-before-seen 64-byte content.

        A monotone counter is embedded in the first 8 bytes so uniqueness is
        guaranteed (random tails make the content realistic for hashing).
        """
        self._unique_counter += 1
        tail = self._rng.integers(0, 256, CACHE_LINE_SIZE - 8,
                                  dtype=np.uint8).tobytes()
        return struct.pack("<Q", self._unique_counter) + tail

    def _register_content(self, content: bytes) -> None:
        self._contents.append(content)
        self._content_sampler.add_item()

    def _next_write_content(self) -> bytes:
        """Choose the next written content per the duplicate-state chain."""
        p = self.profile
        if self._rng.random() >= p.dup_burstiness:
            self._prev_was_dup = bool(self._rng.random() < p.duplicate_rate)
        if self._prev_was_dup and self._contents:
            if self._rng.random() < p.zero_fraction:
                if self._zero_emitted:
                    return ZERO_LINE
                # First zero emission is by definition unique.
                self._zero_emitted = True
                self._register_content(ZERO_LINE)
                return ZERO_LINE
            if self._rng.random() < p.tail_dup_fraction:
                # Long-range recurrence: re-reference a uniformly random old
                # content.  Only a full NVMM-resident fingerprint index can
                # deduplicate these; a bounded hot-fingerprint cache misses
                # them (the selective-dedup trade-off).
                idx = int(self._rng.integers(0, len(self._contents)))
                return self._contents[idx]
            return self._contents[self._content_sampler.sample()]
        content = self._fresh_unique_line()
        self._register_content(content)
        return content

    # ------------------------------------------------------------------
    # Address synthesis
    # ------------------------------------------------------------------

    def _next_write_address(self) -> int:
        """Pick a line address from the working set (mildly skewed)."""
        can_grow = len(self._address_sampler) < len(self._address_pool)
        if can_grow and (len(self._address_sampler) == 0
                         or self._rng.random() < 0.5):
            idx = self._address_sampler.add_item()
        else:
            idx = self._address_sampler.sample()
        line = int(self._address_pool[idx])
        addr = line * CACHE_LINE_SIZE
        if addr not in self._written_set:
            self._written_set.add(addr)
            self._written_addresses.append(addr)
        return addr

    def _next_read_address(self) -> int:
        """Read a previously written address when possible."""
        if self._written_addresses:
            idx = int(self._rng.integers(0, len(self._written_addresses)))
            return self._written_addresses[idx]
        line = int(self._address_pool[
            int(self._rng.integers(0, len(self._address_pool)))])
        return line * CACHE_LINE_SIZE

    # ------------------------------------------------------------------
    # Stream generation
    # ------------------------------------------------------------------

    def _advance_clock(self) -> float:
        self._clock_ns += float(
            self._rng.exponential(self.profile.mean_interarrival_ns))
        return self._clock_ns

    def generate(self, num_requests: int) -> Iterator[MemoryRequest]:
        """Yield ``num_requests`` memory-controller requests."""
        if num_requests <= 0:
            raise ValueError("num_requests must be positive")
        p = self.profile
        cores = 8
        for _ in range(num_requests):
            self._seq += 1
            at = self._advance_clock()
            core = int(self._rng.integers(0, cores))
            if self._rng.random() < p.read_fraction:
                yield MemoryRequest(address=self._next_read_address(),
                                    access=AccessType.READ,
                                    issue_time_ns=at, core=core,
                                    seq=self._seq)
            else:
                yield MemoryRequest(address=self._next_write_address(),
                                    access=AccessType.WRITE,
                                    data=self._next_write_content(),
                                    issue_time_ns=at, core=core,
                                    seq=self._seq)

    def generate_list(self, num_requests: int) -> List[MemoryRequest]:
        """Materialize a trace as a list."""
        return list(self.generate(num_requests))


class CPUAccessGenerator:
    """Pre-hierarchy load/store generator for end-to-end demonstrations.

    Emits :class:`~repro.cache.hierarchy.CPUAccess` records with strong
    temporal locality, so a realistic fraction of traffic dies in L1/L2/L3
    and the residue reaching the controller resembles the post-LLC stream.
    """

    def __init__(self, profile, seed: int = 2023) -> None:
        if isinstance(profile, str):
            profile = get_profile(profile)
        self.profile = profile
        self._inner = TraceGenerator(profile, seed=seed)
        self._rng = np.random.default_rng(seed ^ 0xC0FFEE)

    def generate(self, num_accesses: int,
                 rereference_prob: float = 0.6,
                 window: int = 64) -> Iterator[CPUAccess]:
        """Yield ``num_accesses`` CPU accesses.

        Args:
            rereference_prob: probability an access re-touches one of the
                last ``window`` distinct addresses (creates cache hits).
            window: size of the re-reference window.
        """
        if not 0 <= rereference_prob <= 1:
            raise ValueError("rereference_prob must be in [0,1]")
        recent: List[int] = []
        inner = self._inner.generate(num_accesses)
        for request in inner:
            if recent and self._rng.random() < rereference_prob:
                address = recent[int(self._rng.integers(0, len(recent)))]
                write = bool(self._rng.random()
                             < (1 - self.profile.read_fraction))
                data = (self._inner._next_write_content() if write else None)
                yield CPUAccess(address=address, write=write, data=data,
                                core=request.core)
            else:
                yield CPUAccess(address=request.address,
                                write=request.is_write,
                                data=request.data, core=request.core)
                recent.append(request.address)
                if len(recent) > window:
                    recent.pop(0)
