"""Workload substrate: application profiles, trace generation, analysis."""

from .analysis import (
    BUCKETS,
    DuplicateStats,
    ReferenceDistribution,
    bucket_for_count,
    content_locality_headline,
    duplicate_rate,
    duplicate_stats,
    reference_count_distribution,
)
from .generator import CPUAccessGenerator, TraceGenerator, ZipfSampler
from .mixes import CANONICAL_MIXES, MixedTraceGenerator, MixSpec, make_mix
from .phases import CANONICAL_PHASES, Phase, PhasedTraceGenerator
from .profiles import (
    ALL_PROFILES,
    PARSEC_PROFILES,
    PROFILES,
    SPEC_PROFILES,
    TAIL_LATENCY_APPS,
    WORST_CASE_APPS,
    WorkloadProfile,
    app_names,
    get_profile,
    mean_duplicate_rate,
)
from .trace import read_trace, read_trace_list, roundtrip_bytes, write_trace

__all__ = [
    "ALL_PROFILES",
    "BUCKETS",
    "CANONICAL_MIXES",
    "CANONICAL_PHASES",
    "CPUAccessGenerator",
    "DuplicateStats",
    "MixSpec",
    "MixedTraceGenerator",
    "Phase",
    "PhasedTraceGenerator",
    "PARSEC_PROFILES",
    "PROFILES",
    "ReferenceDistribution",
    "SPEC_PROFILES",
    "TAIL_LATENCY_APPS",
    "TraceGenerator",
    "WORST_CASE_APPS",
    "WorkloadProfile",
    "ZipfSampler",
    "app_names",
    "bucket_for_count",
    "content_locality_headline",
    "duplicate_rate",
    "duplicate_stats",
    "get_profile",
    "make_mix",
    "mean_duplicate_rate",
    "read_trace",
    "read_trace_list",
    "reference_count_distribution",
    "roundtrip_bytes",
    "write_trace",
]
