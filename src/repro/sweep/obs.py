"""Distributed-sweep observability (:mod:`repro.obs` registry wiring).

The work-queue execution backend keeps a sweep-lifetime
:class:`~repro.obs.metrics.MetricsRegistry` describing the *fleet*, not
any single simulation: how many workers are alive, how many leases had
to be reclaimed from dead workers, and what each worker's throughput
looks like.  The coordinator snapshots this registry into the sweep
manifest, so a finished (or interrupted) distributed run leaves a
machine-readable record of its execution health next to the results.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from ..obs.metrics import MetricsRegistry

__all__ = ["SweepMetrics"]


class SweepMetrics:
    """Instruments of one distributed sweep.

    Gauges track the instantaneous fleet state (live workers, queue
    depth, per-worker throughput), counters the cumulative protocol
    events (jobs completed per worker, leases reclaimed from dead
    workers, local worker respawns).
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.workers_alive = self.registry.gauge("sweep_workers_alive")
        self.queue_depth = self.registry.gauge("sweep_queue_depth")
        self.lease_reclaims = self.registry.counter(
            "sweep_lease_reclaims_total")
        self.worker_respawns = self.registry.counter(
            "sweep_worker_respawns_total")
        self._reclaims_seen = 0
        self._started_s: Optional[float] = None
        self._jobs_per_worker: Dict[str, int] = {}

    def start(self) -> None:
        self._started_s = time.monotonic()

    def jobs_completed(self, worker: str):
        """Per-worker completed-job counter."""
        return self.registry.counter("sweep_jobs_completed_total",
                                     worker=worker)

    def worker_throughput(self, worker: str):
        """Per-worker jobs/sec gauge (over the sweep's lifetime)."""
        return self.registry.gauge("sweep_worker_throughput_jobs_per_s",
                                   worker=worker)

    def record_completion(self, worker: str, duration_s: float) -> None:
        """Record one completed job and refresh the worker's throughput."""
        self.jobs_completed(worker).inc()
        self._jobs_per_worker[worker] = \
            self._jobs_per_worker.get(worker, 0) + 1
        elapsed = (time.monotonic() - self._started_s) \
            if self._started_s is not None else None
        if elapsed and elapsed > 0:
            self.worker_throughput(worker).set(
                self._jobs_per_worker[worker] / elapsed)

    def sync_reclaims(self, store_reclaim_count: int) -> None:
        """Fold the store's monotone reclaim count into the counter.

        The store is the source of truth (any worker may reclaim a
        lease); the counter advances by the delta since the last sync so
        repeated polling never double-counts.
        """
        delta = store_reclaim_count - self._reclaims_seen
        if delta > 0:
            self.lease_reclaims.inc(delta)
            self._reclaims_seen = store_reclaim_count

    def snapshot(self) -> Dict[str, Any]:
        """The manifest's ``obs`` payload: rows plus the flat view."""
        return {"metrics": self.registry.snapshot(),
                "flat": self.registry.as_flat()}
