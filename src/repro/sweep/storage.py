"""Pluggable storage backends for the sweep result store.

:class:`~repro.sweep.store.ResultStore` is a thin manager (serialization,
digests, trace generation) over one of the backends registered here; the
backend owns persistence and the concurrency-sensitive primitives.  Two
implementations ship:

* :class:`DirStorageBackend` — the original JSON-directory layout
  (``results/``, ``traces/``, ``obs/``, ``manifest.json``), bit-compatible
  with stores written before this abstraction existed.  Work-queue state
  (``queue/``, ``claims/``, ...) is created lazily, so stores that never
  run a distributed sweep keep the exact pre-existing layout.
* :class:`SqliteStorageBackend` — a single SQLite file in WAL mode, safe
  for many concurrent worker processes (including other hosts sharing the
  file over a lock-honouring filesystem).  Traces are stored as blobs and
  materialized into a local sidecar cache directory on demand, because the
  simulation engine's trace reader wants a file path.

Beyond the blob surface (results, obs reports, traces, manifest), backends
implement the lease/claims protocol the distributed
:class:`~repro.sweep.backends.WorkQueueBackend` is built on:

* ``claim(digest, worker, ttl)`` atomically acquires a lease keyed on the
  job's content-hash digest — at most one live lease per digest, and a
  digest that already has a result (or a failure tombstone) is never
  claimable, which is the exactly-once argument's first half.
* ``renew`` heartbeats the lease; a worker that dies (SIGKILL, host loss)
  simply stops renewing, and after expiry the next ``claim`` *reclaims*
  the lease (recorded in a persistent reclaim counter).  Because every job
  is deterministic and result rows are written atomically, the rare
  double-execution race (an owner whose heartbeat stalls past the TTL
  while a reclaimer runs the same job) produces byte-identical rows — the
  protocol guarantees exactly-once *effect*, at-least-once execution.
* ``attempts`` ride inside the claim row and survive release/reclaim, so
  a poison job (one that keeps killing its workers) exhausts its retry
  budget instead of looping forever.

Durability: directory-backend writes go through
:func:`fsync_atomic_write` — the temp file is fsynced before the atomic
``os.replace`` and the containing directory after it — so a crashed
worker can never leave a torn result row for the lease reclaimer to
trust.  SQLite's WAL journal gives the same guarantee transactionally.
"""

from __future__ import annotations

import abc
import io
import json
import os
import sqlite3
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    ClassVar,
    Dict,
    Iterator,
    List,
    Optional,
    Type,
    Union,
)

from ..common.atomic import fsync_atomic_write
from ..common.errors import LeaseError, UnknownBackendError

__all__ = [
    "DirStorageBackend",
    "LeaseClaim",
    "SqliteStorageBackend",
    "StorageBackend",
    "fsync_atomic_write",
    "make_storage_backend",
    "parse_store_spec",
    "storage_backend_names",
]


# Atomic durable replacement now lives in repro.common.atomic (trace
# captures and checkpoints share it); re-exported here for compatibility.


@dataclass(frozen=True)
class LeaseClaim:
    """One acquired lease: who holds it, until when, and which try it is."""

    digest: str
    worker: str
    expires_unix: float
    #: 1-based count of lease acquisitions for this digest (including this
    #: one); reclaims of expired leases keep counting, so this doubles as
    #: the attempt number for retry budgeting.
    attempts: int


class StorageBackend(abc.ABC):
    """Persistence contract behind :class:`~repro.sweep.store.ResultStore`.

    All payloads cross this interface as already-serialized text (or raw
    bytes for traces): the manager owns JSON encoding, the backend owns
    durability and atomicity.  Keeping the boundary byte-oriented is what
    makes dir↔sqlite migration a byte-identical copy.
    """

    #: Registry key (``--storage`` value); subclasses override.
    name: ClassVar[str] = "abstract"

    # -- identity ------------------------------------------------------

    @property
    @abc.abstractmethod
    def spec(self) -> str:
        """A string from which another process can reopen this store."""

    # -- result rows ---------------------------------------------------

    @abc.abstractmethod
    def read_result(self, digest: str) -> Optional[str]:
        """Raw result-row text, or ``None`` on a miss."""

    @abc.abstractmethod
    def write_result(self, digest: str, text: str) -> None:
        """Atomically persist one result row."""

    @abc.abstractmethod
    def iter_result_digests(self) -> Iterator[str]:
        """All stored digests in sorted order."""

    def has_result(self, digest: str) -> bool:
        return self.read_result(digest) is not None

    # -- observability reports ----------------------------------------

    @abc.abstractmethod
    def read_obs(self, digest: str) -> Optional[str]: ...

    @abc.abstractmethod
    def write_obs(self, digest: str, text: str) -> None: ...

    # -- manifest ------------------------------------------------------

    @abc.abstractmethod
    def read_manifest(self) -> Optional[str]: ...

    @abc.abstractmethod
    def write_manifest(self, text: str) -> None: ...

    # -- shared traces -------------------------------------------------

    @abc.abstractmethod
    def has_trace(self, trace_id: str) -> bool: ...

    @abc.abstractmethod
    def ensure_trace(self, trace_id: str,
                     writer: Callable[[io.BufferedIOBase], None]) -> Path:
        """Persist the trace if missing; return a local file path to it."""

    @abc.abstractmethod
    def trace_local_path(self, trace_id: str) -> Path:
        """A local file path for a stored trace (materializing if needed).

        Raises:
            FileNotFoundError: when the trace is not in the store.
        """

    # -- work queue ----------------------------------------------------

    @abc.abstractmethod
    def enqueue(self, digest: str, payload: str) -> None:
        """Idempotently add one job to the shared work queue."""

    @abc.abstractmethod
    def queue_payload(self, digest: str) -> Optional[str]: ...

    @abc.abstractmethod
    def iter_queue(self) -> List[str]:
        """Digests of every enqueued job (terminal or not), sorted."""

    @abc.abstractmethod
    def claim(self, digest: str, worker: str,
              ttl_s: float) -> Optional[LeaseClaim]:
        """Atomically acquire (or reclaim an expired) lease on ``digest``.

        Returns ``None`` when the digest already has a result or failure
        tombstone, or when another worker holds a live lease.
        """

    @abc.abstractmethod
    def renew(self, digest: str, worker: str, ttl_s: float) -> bool:
        """Extend a held lease; ``False`` when the lease was lost."""

    @abc.abstractmethod
    def release(self, digest: str, worker: str) -> None:
        """Drop a held lease (attempt count is preserved)."""

    @abc.abstractmethod
    def claim_info(self, digest: str) -> Optional[LeaseClaim]:
        """The current claim row (live, expired, or released), if any."""

    @abc.abstractmethod
    def live_claims(self, now: Optional[float] = None) -> List[LeaseClaim]:
        """All unexpired leases (worker-liveness signal)."""

    @abc.abstractmethod
    def reclaim_count(self) -> int:
        """Cumulative count of expired-lease reclamations in this store."""

    @abc.abstractmethod
    def mark_failed(self, digest: str, error: str, attempts: int) -> None:
        """Write a terminal failure tombstone for ``digest``."""

    @abc.abstractmethod
    def get_failure(self, digest: str) -> Optional[Dict]: ...

    @abc.abstractmethod
    def record_completion(self, digest: str, worker: str,
                          duration_s: float, attempts: int) -> None:
        """Log one finished execution (telemetry, not result identity)."""

    @abc.abstractmethod
    def completions(self) -> List[Dict]:
        """All completion log entries (unordered)."""

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Release backend resources (connections); idempotent."""


# ----------------------------------------------------------------------
# Directory backend
# ----------------------------------------------------------------------

class DirStorageBackend(StorageBackend):
    """The original JSON-directory layout, now with a claims protocol.

    Queue state lives in lazily created subdirectories (``queue/``,
    ``claims/``, ``failed/``, ``completions/``, ``reclaims/``) so a store
    that never runs a distributed sweep keeps the pre-backend layout
    byte-for-byte.  Lease atomicity rests on two POSIX primitives that
    are atomic even on shared filesystems: ``O_CREAT | O_EXCL`` for
    acquisition (exactly one creator wins) and ``os.rename`` for
    reclaiming an expired lease (exactly one renamer succeeds; the losers
    get ``FileNotFoundError``).
    """

    name = "dir"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.results_dir = self.root / "results"
        self.traces_dir = self.root / "traces"
        #: Created lazily by :meth:`write_obs` — stores from sweeps that
        #: never enable observability keep the pre-obs layout.
        self.obs_dir = self.root / "obs"
        self.queue_dir = self.root / "queue"
        self.claims_dir = self.root / "claims"
        self.failed_dir = self.root / "failed"
        self.completions_dir = self.root / "completions"
        self.reclaims_dir = self.root / "reclaims"
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self.traces_dir.mkdir(parents=True, exist_ok=True)

    @property
    def spec(self) -> str:
        return str(self.root)

    # -- results -------------------------------------------------------

    def result_path(self, digest: str) -> Path:
        return self.results_dir / f"{digest}.json"

    def read_result(self, digest: str) -> Optional[str]:
        try:
            return self.result_path(digest).read_text()
        except FileNotFoundError:
            return None

    def write_result(self, digest: str, text: str) -> None:
        fsync_atomic_write(self.result_path(digest), text)

    def iter_result_digests(self) -> Iterator[str]:
        for path in sorted(self.results_dir.glob("*.json")):
            yield path.stem

    def has_result(self, digest: str) -> bool:
        return self.result_path(digest).exists()

    # -- obs -----------------------------------------------------------

    def obs_path(self, digest: str) -> Path:
        return self.obs_dir / f"{digest}.json"

    def read_obs(self, digest: str) -> Optional[str]:
        try:
            return self.obs_path(digest).read_text()
        except FileNotFoundError:
            return None

    def write_obs(self, digest: str, text: str) -> None:
        self.obs_dir.mkdir(parents=True, exist_ok=True)
        fsync_atomic_write(self.obs_path(digest), text)

    # -- manifest ------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    def read_manifest(self) -> Optional[str]:
        try:
            return self.manifest_path.read_text()
        except FileNotFoundError:
            return None

    def write_manifest(self, text: str) -> None:
        fsync_atomic_write(self.manifest_path, text)

    # -- traces --------------------------------------------------------

    def trace_path(self, trace_id: str) -> Path:
        return self.traces_dir / f"{trace_id}.esdtrace"

    def has_trace(self, trace_id: str) -> bool:
        return self.trace_path(trace_id).exists()

    def ensure_trace(self, trace_id: str,
                     writer: Callable[[io.BufferedIOBase], None]) -> Path:
        path = self.trace_path(trace_id)
        if path.exists():
            return path
        fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                                   prefix=f".{path.name}.", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                writer(fh)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def trace_local_path(self, trace_id: str) -> Path:
        path = self.trace_path(trace_id)
        if not path.exists():
            raise FileNotFoundError(f"trace {trace_id!r} not in store")
        return path

    # -- work queue ----------------------------------------------------

    def _queue_path(self, digest: str) -> Path:
        return self.queue_dir / f"{digest}.json"

    def _claim_path(self, digest: str) -> Path:
        return self.claims_dir / f"{digest}.json"

    def _failed_path(self, digest: str) -> Path:
        return self.failed_dir / f"{digest}.json"

    def enqueue(self, digest: str, payload: str) -> None:
        self.queue_dir.mkdir(parents=True, exist_ok=True)
        path = self._queue_path(digest)
        if not path.exists():
            fsync_atomic_write(path, payload)

    def queue_payload(self, digest: str) -> Optional[str]:
        try:
            return self._queue_path(digest).read_text()
        except FileNotFoundError:
            return None

    def iter_queue(self) -> List[str]:
        if not self.queue_dir.exists():
            return []
        return sorted(p.stem for p in self.queue_dir.glob("*.json"))

    def _read_claim(self, digest: str) -> Optional[Dict]:
        try:
            payload = json.loads(self._claim_path(digest).read_text())
        except (FileNotFoundError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def claim(self, digest: str, worker: str,
              ttl_s: float) -> Optional[LeaseClaim]:
        if self.has_result(digest) or self.get_failure(digest) is not None:
            return None
        self.claims_dir.mkdir(parents=True, exist_ok=True)
        path = self._claim_path(digest)
        now = time.time()
        prior = self._read_claim(digest)
        prior_attempts = int(prior.get("attempts", 0)) if prior else 0
        try:
            fd = os.open(str(path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            existing = self._read_claim(digest)
            if existing is None:
                # Mid-replace or corrupt: treat as live and retry later.
                return None
            if existing.get("worker") and \
                    float(existing.get("expires_unix", 0.0)) > now:
                return None  # live lease held by someone else
            # Expired (or released): exactly one reclaimer wins the rename.
            stale = self.claims_dir / f".{digest}.stale.{uuid.uuid4().hex}"
            try:
                os.rename(path, stale)
            except OSError:
                return None  # another reclaimer won
            try:
                os.unlink(stale)
            except OSError:
                pass
            if existing.get("worker"):
                self._log_reclaim(digest, existing["worker"], worker)
            prior_attempts = int(existing.get("attempts", 0))
            try:
                fd = os.open(str(path),
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return None  # raced with a fresh claimant
        attempts = prior_attempts + 1
        record = {"worker": worker, "expires_unix": now + ttl_s,
                  "attempts": attempts}
        with os.fdopen(fd, "w") as fh:
            fh.write(json.dumps(record))
            fh.flush()
            os.fsync(fh.fileno())
        return LeaseClaim(digest, worker, record["expires_unix"], attempts)

    def renew(self, digest: str, worker: str, ttl_s: float) -> bool:
        existing = self._read_claim(digest)
        if existing is None or existing.get("worker") != worker:
            return False
        existing["expires_unix"] = time.time() + ttl_s
        fsync_atomic_write(self._claim_path(digest), json.dumps(existing))
        return True

    def release(self, digest: str, worker: str) -> None:
        existing = self._read_claim(digest)
        if existing is None:
            return
        if existing.get("worker") != worker:
            raise LeaseError(
                f"release of lease on {digest[:12]} by {worker!r}, held "
                f"by {existing.get('worker')!r}")
        # Keep the attempt count, drop ownership: a released claim is
        # immediately re-claimable without counting as a reclaim.
        existing["worker"] = None
        existing["expires_unix"] = 0.0
        fsync_atomic_write(self._claim_path(digest), json.dumps(existing))

    def claim_info(self, digest: str) -> Optional[LeaseClaim]:
        existing = self._read_claim(digest)
        if existing is None:
            return None
        return LeaseClaim(digest, existing.get("worker") or "",
                          float(existing.get("expires_unix", 0.0)),
                          int(existing.get("attempts", 0)))

    def live_claims(self, now: Optional[float] = None) -> List[LeaseClaim]:
        now = time.time() if now is None else now
        out = []
        if not self.claims_dir.exists():
            return out
        for path in self.claims_dir.glob("*.json"):
            info = self.claim_info(path.stem)
            if info is not None and info.worker and info.expires_unix > now:
                out.append(info)
        return out

    def _log_reclaim(self, digest: str, old_worker: str,
                     new_worker: str) -> None:
        self.reclaims_dir.mkdir(parents=True, exist_ok=True)
        fsync_atomic_write(
            self.reclaims_dir / f"{uuid.uuid4().hex}.json",
            json.dumps({"digest": digest, "from": old_worker,
                        "to": new_worker, "at_unix": time.time()}))

    def reclaim_count(self) -> int:
        if not self.reclaims_dir.exists():
            return 0
        return sum(1 for _ in self.reclaims_dir.glob("*.json"))

    def mark_failed(self, digest: str, error: str, attempts: int) -> None:
        self.failed_dir.mkdir(parents=True, exist_ok=True)
        fsync_atomic_write(
            self._failed_path(digest),
            json.dumps({"error": error, "attempts": attempts}))

    def get_failure(self, digest: str) -> Optional[Dict]:
        try:
            payload = json.loads(self._failed_path(digest).read_text())
        except (FileNotFoundError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def record_completion(self, digest: str, worker: str,
                          duration_s: float, attempts: int) -> None:
        self.completions_dir.mkdir(parents=True, exist_ok=True)
        fsync_atomic_write(
            self.completions_dir / f"{digest}.{uuid.uuid4().hex[:8]}.json",
            json.dumps({"digest": digest, "worker": worker,
                        "duration_s": duration_s, "attempts": attempts,
                        "finished_unix": time.time()}))

    def completions(self) -> List[Dict]:
        out = []
        if not self.completions_dir.exists():
            return out
        for path in sorted(self.completions_dir.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if isinstance(payload, dict):
                out.append(payload)
        return out


# ----------------------------------------------------------------------
# SQLite backend
# ----------------------------------------------------------------------

_SQLITE_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    digest TEXT PRIMARY KEY, payload TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS obs (
    digest TEXT PRIMARY KEY, payload TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS traces (
    trace_id TEXT PRIMARY KEY, data BLOB NOT NULL);
CREATE TABLE IF NOT EXISTS manifest (
    id INTEGER PRIMARY KEY CHECK (id = 1), payload TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS queue (
    digest TEXT PRIMARY KEY, payload TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS claims (
    digest TEXT PRIMARY KEY, worker TEXT, expires_unix REAL NOT NULL,
    attempts INTEGER NOT NULL DEFAULT 0);
CREATE TABLE IF NOT EXISTS failures (
    digest TEXT PRIMARY KEY, error TEXT NOT NULL,
    attempts INTEGER NOT NULL);
CREATE TABLE IF NOT EXISTS completions (
    digest TEXT NOT NULL, worker TEXT NOT NULL, duration_s REAL NOT NULL,
    attempts INTEGER NOT NULL, finished_unix REAL NOT NULL);
CREATE TABLE IF NOT EXISTS counters (
    key TEXT PRIMARY KEY, value INTEGER NOT NULL);
"""


class SqliteStorageBackend(StorageBackend):
    """Single-file store: WAL journal, concurrent-worker-safe claims.

    Every lease transition runs inside ``BEGIN IMMEDIATE``, so claim /
    renew / release / reclaim are serialized by SQLite's write lock —
    the textbook claims-table design.  Connections are per-thread (the
    heartbeat thread gets its own), and worker processes reopen the
    store from its spec string rather than inheriting a connection.
    """

    name = "sqlite"

    #: How long a writer waits on a contended database lock.
    BUSY_TIMEOUT_MS = 30_000

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        #: Local sidecar cache where trace blobs are materialized for the
        #: file-based trace reader; not part of the authoritative store.
        self.trace_cache_dir = Path(f"{self.path}.traces")
        self._local = threading.local()
        self._conns: List[sqlite3.Connection] = []
        self._conns_lock = threading.Lock()
        with self._conn() as conn:
            conn.executescript(_SQLITE_SCHEMA)

    @property
    def spec(self) -> str:
        return f"sqlite://{self.path}"

    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(str(self.path),
                                   timeout=self.BUSY_TIMEOUT_MS / 1000.0)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(f"PRAGMA busy_timeout={self.BUSY_TIMEOUT_MS}")
            self._local.conn = conn
            with self._conns_lock:
                self._conns.append(conn)
        return conn

    def close(self) -> None:
        with self._conns_lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            try:
                conn.close()
            except sqlite3.Error:
                pass
        self._local = threading.local()

    # -- results -------------------------------------------------------

    def read_result(self, digest: str) -> Optional[str]:
        row = self._conn().execute(
            "SELECT payload FROM results WHERE digest = ?",
            (digest,)).fetchone()
        return row[0] if row else None

    def write_result(self, digest: str, text: str) -> None:
        with self._conn() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO results (digest, payload) "
                "VALUES (?, ?)", (digest, text))

    def iter_result_digests(self) -> Iterator[str]:
        rows = self._conn().execute(
            "SELECT digest FROM results ORDER BY digest").fetchall()
        for (digest,) in rows:
            yield digest

    def has_result(self, digest: str) -> bool:
        return self._conn().execute(
            "SELECT 1 FROM results WHERE digest = ?",
            (digest,)).fetchone() is not None

    # -- obs -----------------------------------------------------------

    def read_obs(self, digest: str) -> Optional[str]:
        row = self._conn().execute(
            "SELECT payload FROM obs WHERE digest = ?", (digest,)).fetchone()
        return row[0] if row else None

    def write_obs(self, digest: str, text: str) -> None:
        with self._conn() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO obs (digest, payload) VALUES (?, ?)",
                (digest, text))

    # -- manifest ------------------------------------------------------

    def read_manifest(self) -> Optional[str]:
        row = self._conn().execute(
            "SELECT payload FROM manifest WHERE id = 1").fetchone()
        return row[0] if row else None

    def write_manifest(self, text: str) -> None:
        with self._conn() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO manifest (id, payload) "
                "VALUES (1, ?)", (text,))

    # -- traces --------------------------------------------------------

    def has_trace(self, trace_id: str) -> bool:
        return self._conn().execute(
            "SELECT 1 FROM traces WHERE trace_id = ?",
            (trace_id,)).fetchone() is not None

    def _cache_path(self, trace_id: str) -> Path:
        return self.trace_cache_dir / f"{trace_id}.esdtrace"

    def ensure_trace(self, trace_id: str,
                     writer: Callable[[io.BufferedIOBase], None]) -> Path:
        if not self.has_trace(trace_id):
            buffer = io.BytesIO()
            writer(buffer)
            with self._conn() as conn:
                # OR IGNORE: a concurrent generator of the same trace id
                # wrote identical bytes (deterministic generation).
                conn.execute(
                    "INSERT OR IGNORE INTO traces (trace_id, data) "
                    "VALUES (?, ?)", (trace_id, buffer.getvalue()))
        return self.trace_local_path(trace_id)

    def trace_local_path(self, trace_id: str) -> Path:
        cached = self._cache_path(trace_id)
        if cached.exists():
            return cached
        row = self._conn().execute(
            "SELECT data FROM traces WHERE trace_id = ?",
            (trace_id,)).fetchone()
        if row is None:
            raise FileNotFoundError(f"trace {trace_id!r} not in store")
        self.trace_cache_dir.mkdir(parents=True, exist_ok=True)
        fsync_atomic_write(cached, bytes(row[0]))
        return cached

    # -- work queue ----------------------------------------------------

    def enqueue(self, digest: str, payload: str) -> None:
        with self._conn() as conn:
            conn.execute(
                "INSERT OR IGNORE INTO queue (digest, payload) "
                "VALUES (?, ?)", (digest, payload))

    def queue_payload(self, digest: str) -> Optional[str]:
        row = self._conn().execute(
            "SELECT payload FROM queue WHERE digest = ?",
            (digest,)).fetchone()
        return row[0] if row else None

    def iter_queue(self) -> List[str]:
        rows = self._conn().execute(
            "SELECT digest FROM queue ORDER BY digest").fetchall()
        return [digest for (digest,) in rows]

    def claim(self, digest: str, worker: str,
              ttl_s: float) -> Optional[LeaseClaim]:
        now = time.time()
        conn = self._conn()
        try:
            conn.execute("BEGIN IMMEDIATE")
            if conn.execute("SELECT 1 FROM results WHERE digest = ?",
                            (digest,)).fetchone() or \
                    conn.execute("SELECT 1 FROM failures WHERE digest = ?",
                                 (digest,)).fetchone():
                conn.execute("ROLLBACK")
                return None
            row = conn.execute(
                "SELECT worker, expires_unix, attempts FROM claims "
                "WHERE digest = ?", (digest,)).fetchone()
            if row is None:
                attempts = 1
                conn.execute(
                    "INSERT INTO claims (digest, worker, expires_unix, "
                    "attempts) VALUES (?, ?, ?, ?)",
                    (digest, worker, now + ttl_s, attempts))
            else:
                old_worker, expires, attempts = row
                if old_worker and expires > now:
                    conn.execute("ROLLBACK")
                    return None
                attempts = int(attempts) + 1
                conn.execute(
                    "UPDATE claims SET worker = ?, expires_unix = ?, "
                    "attempts = ? WHERE digest = ?",
                    (worker, now + ttl_s, attempts, digest))
                if old_worker:  # expired live lease, not a clean release
                    conn.execute(
                        "INSERT INTO counters (key, value) VALUES "
                        "('reclaims', 1) ON CONFLICT(key) DO UPDATE SET "
                        "value = value + 1")
            conn.execute("COMMIT")
        except sqlite3.Error:
            try:
                conn.execute("ROLLBACK")
            except sqlite3.Error:
                pass
            return None
        return LeaseClaim(digest, worker, now + ttl_s, attempts)

    def renew(self, digest: str, worker: str, ttl_s: float) -> bool:
        with self._conn() as conn:
            cursor = conn.execute(
                "UPDATE claims SET expires_unix = ? WHERE digest = ? "
                "AND worker = ?", (time.time() + ttl_s, digest, worker))
            return cursor.rowcount > 0

    def release(self, digest: str, worker: str) -> None:
        with self._conn() as conn:
            row = conn.execute(
                "SELECT worker FROM claims WHERE digest = ?",
                (digest,)).fetchone()
            if row is None:
                return
            if row[0] is not None and row[0] != worker:
                raise LeaseError(
                    f"release of lease on {digest[:12]} by {worker!r}, "
                    f"held by {row[0]!r}")
            conn.execute(
                "UPDATE claims SET worker = NULL, expires_unix = 0 "
                "WHERE digest = ?", (digest,))

    def claim_info(self, digest: str) -> Optional[LeaseClaim]:
        row = self._conn().execute(
            "SELECT worker, expires_unix, attempts FROM claims "
            "WHERE digest = ?", (digest,)).fetchone()
        if row is None:
            return None
        return LeaseClaim(digest, row[0] or "", float(row[1]), int(row[2]))

    def live_claims(self, now: Optional[float] = None) -> List[LeaseClaim]:
        now = time.time() if now is None else now
        rows = self._conn().execute(
            "SELECT digest, worker, expires_unix, attempts FROM claims "
            "WHERE worker IS NOT NULL AND expires_unix > ?",
            (now,)).fetchall()
        return [LeaseClaim(d, w, float(e), int(a)) for d, w, e, a in rows]

    def reclaim_count(self) -> int:
        row = self._conn().execute(
            "SELECT value FROM counters WHERE key = 'reclaims'").fetchone()
        return int(row[0]) if row else 0

    def mark_failed(self, digest: str, error: str, attempts: int) -> None:
        with self._conn() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO failures (digest, error, attempts) "
                "VALUES (?, ?, ?)", (digest, error, attempts))

    def get_failure(self, digest: str) -> Optional[Dict]:
        row = self._conn().execute(
            "SELECT error, attempts FROM failures WHERE digest = ?",
            (digest,)).fetchone()
        if row is None:
            return None
        return {"error": row[0], "attempts": int(row[1])}

    def record_completion(self, digest: str, worker: str,
                          duration_s: float, attempts: int) -> None:
        with self._conn() as conn:
            conn.execute(
                "INSERT INTO completions (digest, worker, duration_s, "
                "attempts, finished_unix) VALUES (?, ?, ?, ?, ?)",
                (digest, worker, duration_s, attempts, time.time()))

    def completions(self) -> List[Dict]:
        rows = self._conn().execute(
            "SELECT digest, worker, duration_s, attempts, finished_unix "
            "FROM completions ORDER BY finished_unix").fetchall()
        return [{"digest": d, "worker": w, "duration_s": s,
                 "attempts": int(a), "finished_unix": f}
                for d, w, s, a, f in rows]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

#: Registered storage backends, keyed by their ``--storage`` name.
STORAGE_BACKENDS: Dict[str, Type[StorageBackend]] = {
    DirStorageBackend.name: DirStorageBackend,
    SqliteStorageBackend.name: SqliteStorageBackend,
}


def storage_backend_names() -> List[str]:
    """Registered storage backend names, sorted."""
    return sorted(STORAGE_BACKENDS)


def make_storage_backend(name: str,
                         path: Union[str, Path]) -> StorageBackend:
    """Instantiate a registered storage backend by name.

    Raises:
        UnknownBackendError: listing the registered names, mirroring the
            scheme registry's unknown-scheme error.
    """
    try:
        cls = STORAGE_BACKENDS[name]
    except KeyError:
        raise UnknownBackendError(
            f"unknown storage backend {name!r}; registered backends: "
            f"{', '.join(storage_backend_names())}") from None
    return cls(path)


def parse_store_spec(spec: str,
                     storage: Optional[str] = None) -> StorageBackend:
    """Open a storage backend from a CLI-style store spec.

    ``sqlite://<path>`` forces the SQLite backend; otherwise ``storage``
    picks the backend explicitly, and when that is ``None`` the choice is
    inferred: paths ending in ``.sqlite``/``.sqlite3``/``.db`` (or naming
    an existing regular file) open as SQLite, everything else as the
    default directory layout — so every pre-existing store spec keeps
    meaning exactly what it meant before.
    """
    spec = str(spec)
    if spec.startswith("sqlite://"):
        path = spec[len("sqlite://"):]
        if storage not in (None, SqliteStorageBackend.name):
            raise UnknownBackendError(
                f"store spec {spec!r} is sqlite but --storage is "
                f"{storage!r}")
        return SqliteStorageBackend(path)
    if storage is not None:
        return make_storage_backend(storage, spec)
    path = Path(spec)
    if path.suffix in (".sqlite", ".sqlite3", ".db") or path.is_file():
        return SqliteStorageBackend(path)
    return DirStorageBackend(path)
