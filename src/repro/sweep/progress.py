"""Live progress reporting and the machine-readable sweep manifest.

The reporter has two consumers: a human watching the terminal (periodic
``[sweep] 12/32 done ...`` lines with an ETA, written to stderr so result
tables on stdout stay pipeable) and tooling (a manifest dict recording
per-job status, attempts, and timing, persisted by the scheduler into the
result store).
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, List, Optional, TextIO

from .job import SWEEP_SCHEMA_VERSION, JobSpec

#: Per-job terminal states recorded in the manifest.
STATUS_CACHED = "cached"
STATUS_SIMULATED = "simulated"
STATUS_FAILED = "failed"


class ProgressReporter:
    """Tracks job completions, prints throttled progress lines.

    Args:
        total: number of jobs in the sweep.
        stream: where progress lines go (default stderr); ``None`` or
            ``enabled=False`` silences printing while still collecting the
            manifest.
        interval_s: minimum seconds between routine progress lines
            (failures always print).
        clock: injectable monotonic clock for tests.
    """

    def __init__(self, total: int, *, stream: Optional[TextIO] = None,
                 enabled: bool = True, interval_s: float = 2.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.total = total
        self.cached = 0
        self.simulated = 0
        self.failed = 0
        self.retries = 0
        self._stream = stream if stream is not None else sys.stderr
        self._enabled = enabled
        self._interval_s = interval_s
        self._clock = clock
        self._started = clock()
        self._last_emit = float("-inf")
        self._rows: List[Dict] = []

    # ------------------------------------------------------------------
    # Event sinks (called by the scheduler)
    # ------------------------------------------------------------------

    @property
    def done(self) -> int:
        return self.cached + self.simulated + self.failed

    def job_done(self, spec: JobSpec, status: str, *,
                 attempts: int = 1, duration_s: float = 0.0,
                 error: Optional[str] = None,
                 worker: Optional[str] = None) -> None:
        """Record one job reaching a terminal state.

        ``worker`` identifies which distributed worker completed the job
        (work-queue backend); pool/serial runs leave it unset and the
        manifest row shape is unchanged for them.
        """
        if status == STATUS_CACHED:
            self.cached += 1
        elif status == STATUS_SIMULATED:
            self.simulated += 1
        elif status == STATUS_FAILED:
            self.failed += 1
        else:
            raise ValueError(f"unknown job status {status!r}")
        row = {
            "app": spec.app,
            "scheme": spec.scheme,
            "digest": spec.digest(),
            "status": status,
            "attempts": attempts,
            "duration_s": round(duration_s, 6),
            "error": error,
        }
        if worker is not None:
            row["worker"] = worker
        self._rows.append(row)
        self._emit(force=(status == STATUS_FAILED))

    def job_retry(self, spec: JobSpec, attempt: int, error: str) -> None:
        """Record a non-terminal failure that will be retried."""
        self.retries += 1
        self._print(f"[sweep] retry {spec.describe()} "
                    f"(attempt {attempt} failed: {error})")

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def line(self) -> str:
        elapsed = self._clock() - self._started
        parts = [f"[sweep] {self.done}/{self.total} done"]
        detail = []
        if self.cached:
            detail.append(f"{self.cached} cached")
        if self.failed:
            detail.append(f"{self.failed} failed")
        if detail:
            parts.append(f"({', '.join(detail)})")
        parts.append(f"elapsed {elapsed:.1f}s")
        eta = self.eta_s()
        if eta is not None:
            parts.append(f"eta {eta:.0f}s")
        return " ".join(parts)

    def eta_s(self) -> Optional[float]:
        """Remaining wall-clock estimate from the simulated-job rate.

        Cached hits are near-instant, so the rate only counts simulated
        completions; before the first one finishes there is no basis for
        an estimate and ``None`` is returned.
        """
        remaining = self.total - self.done
        if remaining <= 0 or self.simulated == 0:
            return None
        elapsed = self._clock() - self._started
        return elapsed / self.simulated * remaining

    def _emit(self, *, force: bool = False) -> None:
        now = self._clock()
        if not force and self.done < self.total \
                and now - self._last_emit < self._interval_s:
            return
        self._last_emit = now
        self._print(self.line())

    def _print(self, text: str) -> None:
        if self._enabled and self._stream is not None:
            print(text, file=self._stream, flush=True)

    def finish(self) -> None:
        elapsed = self._clock() - self._started
        self._print(
            f"[sweep] finished: {self.simulated} simulated, "
            f"{self.cached} cached, {self.failed} failed "
            f"in {elapsed:.1f}s")

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------

    def manifest(self) -> Dict:
        """Machine-readable sweep record (persisted as manifest.json)."""
        return {
            "schema_version": SWEEP_SCHEMA_VERSION,
            "total_jobs": self.total,
            "cached": self.cached,
            "simulated": self.simulated,
            "failed": self.failed,
            "retries": self.retries,
            "elapsed_s": round(self._clock() - self._started, 6),
            "jobs": list(self._rows),
        }
