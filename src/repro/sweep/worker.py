"""Lease-based sweep worker: the claim → simulate → record loop.

A worker is any process pointed at a shared result store (directory on a
common filesystem, or a SQLite file).  It scans the store's work queue,
claims one job at a time via the storage backend's atomic lease protocol
(keyed on the job's content-hash digest, so two racing workers can never
both own a cell), heartbeats the lease from a background thread while
the simulation runs, and atomically writes the full-fidelity result row
on completion.  Because every job is deterministic, a worker that is
SIGKILLed mid-job costs nothing but time: its lease expires, the next
claimant reruns the job, and the rerun's row is byte-identical to what
the dead worker would have written.

Entry points: :func:`worker_loop` (library; also what
``repro worker --store ...`` runs) and
:class:`~repro.sweep.backends.WorkQueueBackend`, which spawns local
worker processes over this same loop.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import uuid
from typing import Callable, Dict, Optional

from ..perf import reset_caches as reset_fastpath_caches
from ..sim.metrics import SimulationResult
from ..sim.runner import run_app
from ..workloads.generator import TraceGenerator
from ..workloads.profiles import get_profile
from ..workloads.trace import read_trace_list
from .job import JobSpec, spec_from_payload
from .store import ResultStore, job_meta, open_store

__all__ = ["default_worker_id", "execute_job", "worker_loop"]


#: Per-process memo of recently parsed traces.  Pool workers serve many
#: jobs; scheme jobs of the same application share a trace file, so keeping
#: the last few parsed streams in the worker avoids re-deserializing 64-byte
#: payload records for every cell.  Bounded to stay small under the
#: many-apps case.
_TRACE_MEMO: "Dict[str, list]" = {}
_TRACE_MEMO_CAP = 4


def _load_trace(trace_path: str) -> list:
    trace = _TRACE_MEMO.get(trace_path)
    if trace is None:
        trace = read_trace_list(trace_path)
        while len(_TRACE_MEMO) >= _TRACE_MEMO_CAP:
            _TRACE_MEMO.pop(next(iter(_TRACE_MEMO)))
        _TRACE_MEMO[trace_path] = trace
    return trace


def execute_job(spec: JobSpec, trace_path: str) -> SimulationResult:
    """Run one grid cell; the worker-side entry point (must be picklable).

    Deliberately funnels through :func:`~repro.sim.runner.run_app` so the
    orchestrated path exercises the exact code the serial runner does.

    Kernel-cache lifecycle: ``SimulationEngine.run`` resets the
    :mod:`repro.perf` memo caches at the start of every run, but a pool
    worker serves many jobs, so reset here too — worker-side kernel-cache
    state is then provably independent of job scheduling order, and cached
    results (including the exported ``memo_*`` statistics) stay
    byte-identical to a serial run.
    """
    reset_fastpath_caches()
    trace = _load_trace(trace_path)
    results = run_app(spec.app, [spec.scheme], requests=spec.requests,
                      system=spec.system, engine=spec.engine,
                      costs=spec.costs, seed=spec.seed, trace=trace)
    return results[spec.scheme]


def default_worker_id() -> str:
    """A host-and-pid-qualified identifier for lease ownership."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


class _Heartbeat:
    """Background lease renewal while one job simulates.

    Renews at one third of the TTL so two renewals can be missed before
    the lease expires.  A failed renewal (the lease was reclaimed from a
    stalled owner) is recorded but does not abort the job: the result
    write is idempotent and byte-identical, so finishing is harmless.
    """

    def __init__(self, store: ResultStore, digest: str, worker_id: str,
                 ttl_s: float) -> None:
        self._store = store
        self._digest = digest
        self._worker_id = worker_id
        self._ttl_s = ttl_s
        self._stop = threading.Event()
        self.lost = False
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name=f"lease-{digest[:8]}")

    def _run(self) -> None:
        interval = max(self._ttl_s / 3.0, 0.05)
        while not self._stop.wait(interval):
            try:
                if not self._store.renew(self._digest, self._worker_id,
                                         self._ttl_s):
                    self.lost = True
                    return
            except Exception:
                # A transient renewal failure (e.g. a contended lock) is
                # survivable as long as a later renewal lands in time.
                continue

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def _ensure_local_trace(store: ResultStore, spec: JobSpec) -> str:
    """Materialize the job's shared trace locally, generating on miss.

    The coordinator normally seeds traces before enqueueing, but a
    standalone ``repro worker`` pointed at a store mid-build may win the
    race — trace generation is deterministic and the write atomic, so
    regenerating is always safe.
    """
    def generate():
        profile = get_profile(spec.app)
        return TraceGenerator(profile, seed=spec.seed).generate_list(
            spec.requests)

    return str(store.ensure_trace(spec.trace_id, generate))


def worker_loop(store_spec: str, *,
                storage: Optional[str] = None,
                worker_id: Optional[str] = None,
                lease_s: float = 15.0,
                poll_s: float = 0.25,
                retries: int = 2,
                max_jobs: Optional[int] = None,
                wait: bool = False,
                worker: Callable[[JobSpec, str], SimulationResult] = execute_job,
                log: Optional[Callable[[str], None]] = None) -> int:
    """Serve a store's work queue until it drains; returns jobs completed.

    Args:
        store_spec: store path or URL (``dir`` path or ``sqlite://...``).
        storage: storage backend name forced for the spec (default:
            inferred — ``sqlite://`` URLs and ``.sqlite``/``.db`` paths
            open the SQLite backend, anything else the directory layout).
        worker_id: lease-ownership identity (default: host-pid-random).
        lease_s: lease TTL; renewal runs at a third of this.
        poll_s: sleep between scans when nothing was claimable.
        retries: extra attempts a job gets after a failure before its
            failure tombstone is written (matches the pool scheduler).
        max_jobs: stop after completing this many jobs (testing hook).
        wait: keep polling even after the queue is fully terminal, so a
            pre-started worker can serve sweeps that arrive later.
        worker: job-execution callable, injectable for tests.
        log: optional line sink for human-readable progress.
    """
    store = open_store(store_spec, storage)
    worker_id = worker_id or default_worker_id()
    emit = log or (lambda _line: None)
    completed = 0
    emit(f"[worker {worker_id}] serving store {store.spec}")
    try:
        while True:
            digests = store.iter_queue()
            # Rotate the scan origin by worker identity so a fleet does
            # not stampede the same head-of-queue digest every pass.
            if digests:
                offset = hash(worker_id) % len(digests)
                digests = digests[offset:] + digests[:offset]
            all_terminal = True
            progressed = False
            for digest in digests:
                if store.backend.has_result(digest) \
                        or store.get_failure(digest) is not None:
                    continue
                all_terminal = False
                claim = store.claim(digest, worker_id, lease_s)
                if claim is None:
                    continue
                progressed = True
                if claim.attempts > retries + 1:
                    # The previous holders burned the whole budget (e.g.
                    # a poison job that kills its worker every time).
                    store.mark_failed(
                        digest,
                        f"retry budget exhausted after "
                        f"{claim.attempts - 1} attempt(s) "
                        f"(lease reclaimed from dead workers)",
                        claim.attempts - 1)
                    store.release(digest, worker_id)
                    continue
                completed += int(_run_claimed(store, digest, claim.attempts,
                                              worker_id, lease_s, retries,
                                              worker, emit))
                if max_jobs is not None and completed >= max_jobs:
                    return completed
            if all_terminal and not wait:
                emit(f"[worker {worker_id}] queue drained "
                     f"({completed} job(s) completed)")
                return completed
            if not progressed:
                time.sleep(poll_s)
    finally:
        store.close()


def _run_claimed(store: ResultStore, digest: str, attempts: int,
                 worker_id: str, lease_s: float, retries: int,
                 worker: Callable[[JobSpec, str], SimulationResult],
                 emit: Callable[[str], None]) -> bool:
    """Execute one claimed job; returns True when a result was recorded."""
    payload = store.queue_payload(digest)
    try:
        if payload is None:
            raise ValueError(f"queue payload missing for {digest[:12]}")
        spec = spec_from_payload(payload["spec"])
        trace_path = _ensure_local_trace(store, spec)
    except Exception as exc:
        store.mark_failed(digest, repr(exc), attempts)
        store.release(digest, worker_id)
        emit(f"[worker {worker_id}] bad queue entry {digest[:12]}: {exc!r}")
        return False
    started = time.monotonic()
    try:
        with _Heartbeat(store, digest, worker_id, lease_s):
            result = worker(spec, trace_path)
    except KeyboardInterrupt:
        store.release(digest, worker_id)
        raise
    except Exception as exc:
        if attempts >= retries + 1:
            store.mark_failed(digest, repr(exc), attempts)
            emit(f"[worker {worker_id}] {spec.describe()} failed "
                 f"terminally: {exc!r}")
        else:
            emit(f"[worker {worker_id}] {spec.describe()} failed "
                 f"(attempt {attempts}): {exc!r}")
        store.release(digest, worker_id)
        return False
    duration = time.monotonic() - started
    store.put(digest, result, job=job_meta(spec))
    if result.obs is not None:
        store.put_obs(digest, result.obs)
    store.record_completion(digest, worker_id, duration, attempts)
    store.release(digest, worker_id)
    emit(f"[worker {worker_id}] {spec.describe()} done in {duration:.1f}s")
    return True


def _worker_process_entry(store_spec: str, worker_id: str, lease_s: float,
                          poll_s: float, retries: int,
                          worker: Callable[[JobSpec, str],
                                           SimulationResult]) -> None:
    """Module-level target for locally spawned worker processes."""
    worker_loop(store_spec, worker_id=worker_id, lease_s=lease_s,
                poll_s=poll_s, retries=retries, worker=worker)
