"""Job specifications for orchestrated experiment sweeps.

A :class:`JobSpec` pins down everything one grid cell depends on — the
application, the scheme, the trace parameters (requests, seed), and the
complete system/engine/cost configuration — and derives a stable content
hash from it.  Two processes (or two machines) building the same spec get
the same hash, which is what makes the result store shareable and sweeps
resumable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..common.config import SystemConfig, config_digest
from ..crypto.costs import CryptoCosts, DEFAULT_COSTS
from ..registry import registered_scheme_names
from ..sim.engine import EngineConfig
from ..workloads.profiles import app_names
from ..workloads.trace import VERSION as TRACE_VERSION

#: Version of the sweep job/result layout.  Bumping it invalidates every
#: previously stored result (their hashes change), which is the safe
#: default whenever simulation semantics move.
#: v2: results carry a read-path breakdown (timeline refactor).
SWEEP_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class JobSpec:
    """One (application, scheme) cell of an experiment grid.

    Unlike :func:`repro.sim.runner.run_app`, a job spec carries an
    *explicit* :class:`SystemConfig` — there is no silent default, so the
    serial and orchestrated paths cannot diverge on configuration.
    """

    app: str
    scheme: str
    requests: int
    seed: int
    system: SystemConfig
    engine: EngineConfig = field(default_factory=EngineConfig)
    costs: CryptoCosts = DEFAULT_COSTS

    def __post_init__(self) -> None:
        if self.app not in app_names():
            raise ValueError(f"unknown application {self.app!r}")
        registered = registered_scheme_names()
        if self.scheme not in registered:
            raise ValueError(f"unknown scheme {self.scheme!r}; registered "
                             f"schemes: {', '.join(registered)}")
        if self.requests <= 0:
            raise ValueError("requests must be positive")

    @property
    def key(self) -> Tuple[str, str]:
        """The cell's position in a :data:`~repro.sim.runner.ResultGrid`."""
        return (self.app, self.scheme)

    @property
    def trace_id(self) -> str:
        """Identifier of the shared per-application trace this job replays.

        Every scheme job of one application shares the same trace (the
        paper's evaluation pairs schemes on identical request streams), so
        the trace id deliberately excludes the scheme.
        """
        return f"{self.app}-s{self.seed}-n{self.requests}-v{TRACE_VERSION}"

    def digest(self) -> str:
        """Stable content hash identifying this job across processes."""
        return config_digest({
            "schema": SWEEP_SCHEMA_VERSION,
            "trace_version": TRACE_VERSION,
            "app": self.app,
            "scheme": self.scheme,
            "requests": self.requests,
            "seed": self.seed,
        }, self.system, self.engine, self.costs)

    def describe(self) -> str:
        return f"{self.app}/{self.scheme} ({self.requests} req, seed {self.seed})"


# ----------------------------------------------------------------------
# Wire codec: JobSpec <-> JSON payload (the distributed queue's format)
# ----------------------------------------------------------------------
#
# The work-queue execution backend publishes pending jobs into the shared
# store, and worker processes — possibly on other hosts — rebuild the
# exact JobSpec from the stored payload.  The codec reuses the tagged
# canonical form of :func:`repro.common.config.config_digest` (dataclasses
# become ``{"__class__": name, "fields": {...}}``), so a round-tripped
# spec reproduces the original digest bit-for-bit; that identity is
# asserted at decode time because the digest is the exactly-once key.

def _config_class_registry() -> dict:
    """Name -> class map of every dataclass a JobSpec can embed."""
    import dataclasses

    from ..common import config as _config_mod
    from ..crypto import costs as _costs_mod
    from ..sim import engine as _engine_mod

    registry = {}
    for module in (_config_mod, _costs_mod, _engine_mod):
        for attr in vars(module).values():
            if isinstance(attr, type) and dataclasses.is_dataclass(attr):
                registry[attr.__name__] = attr
    return registry


def _encode_value(value):
    import dataclasses
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__class__": type(value).__name__,
            "fields": {f.name: _encode_value(getattr(value, f.name))
                       for f in dataclasses.fields(value)},
        }
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": bytes(value).hex()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    raise ValueError(f"cannot encode {type(value).__name__} for the queue")


def _decode_value(payload, registry):
    if isinstance(payload, dict):
        if "__class__" in payload:
            cls = registry.get(payload["__class__"])
            if cls is None:
                raise ValueError(
                    f"unknown config class {payload['__class__']!r}")
            kwargs = {name: _decode_value(value, registry)
                      for name, value in payload["fields"].items()}
            return cls(**kwargs)
        if "__bytes__" in payload:
            return bytes.fromhex(payload["__bytes__"])
        return {k: _decode_value(v, registry) for k, v in payload.items()}
    if isinstance(payload, list):
        return [_decode_value(v, registry) for v in payload]
    return payload


def spec_to_payload(spec: JobSpec) -> dict:
    """Serialize a :class:`JobSpec` for the shared work queue."""
    return {
        "schema": SWEEP_SCHEMA_VERSION,
        "app": spec.app,
        "scheme": spec.scheme,
        "requests": spec.requests,
        "seed": spec.seed,
        "digest": spec.digest(),
        "trace_id": spec.trace_id,
        "system": _encode_value(spec.system),
        "engine": _encode_value(spec.engine),
        "costs": _encode_value(spec.costs),
    }


def spec_from_payload(payload: dict) -> JobSpec:
    """Rebuild a :class:`JobSpec` from a queue payload.

    Raises:
        ValueError: when the payload's schema is incompatible or the
            rebuilt spec's digest differs from the recorded one (a
            corrupted or cross-version payload must never execute under
            the wrong identity).
    """
    if payload.get("schema") != SWEEP_SCHEMA_VERSION:
        raise ValueError(
            f"queue payload schema {payload.get('schema')!r} does not "
            f"match this build's schema {SWEEP_SCHEMA_VERSION}")
    registry = _config_class_registry()
    spec = JobSpec(
        app=payload["app"],
        scheme=payload["scheme"],
        requests=payload["requests"],
        seed=payload["seed"],
        system=_decode_value(payload["system"], registry),
        engine=_decode_value(payload["engine"], registry),
        costs=_decode_value(payload["costs"], registry),
    )
    if spec.digest() != payload["digest"]:
        raise ValueError(
            f"queue payload digest mismatch for {spec.describe()}: "
            f"payload {payload['digest'][:12]} != rebuilt "
            f"{spec.digest()[:12]}")
    return spec


def jobs_from_experiment(config) -> List[JobSpec]:
    """Expand an :class:`~repro.sim.runner.ExperimentConfig` into job specs.

    Order matches the serial :func:`~repro.sim.runner.run_grid` iteration
    (apps outer, schemes inner) so the assembled grid has identical key
    ordering to a serial run.
    """
    return [
        JobSpec(app=app, scheme=scheme,
                requests=config.requests_per_app, seed=config.seed,
                system=config.system, engine=config.engine,
                costs=config.costs)
        for app in config.apps
        for scheme in config.schemes
    ]
