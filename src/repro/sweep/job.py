"""Job specifications for orchestrated experiment sweeps.

A :class:`JobSpec` pins down everything one grid cell depends on — the
application, the scheme, the trace parameters (requests, seed), and the
complete system/engine/cost configuration — and derives a stable content
hash from it.  Two processes (or two machines) building the same spec get
the same hash, which is what makes the result store shareable and sweeps
resumable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..common.config import SystemConfig, config_digest
from ..crypto.costs import CryptoCosts, DEFAULT_COSTS
from ..registry import registered_scheme_names
from ..sim.engine import EngineConfig
from ..workloads.profiles import app_names
from ..workloads.trace import VERSION as TRACE_VERSION

#: Version of the sweep job/result layout.  Bumping it invalidates every
#: previously stored result (their hashes change), which is the safe
#: default whenever simulation semantics move.
#: v2: results carry a read-path breakdown (timeline refactor).
SWEEP_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class JobSpec:
    """One (application, scheme) cell of an experiment grid.

    Unlike :func:`repro.sim.runner.run_app`, a job spec carries an
    *explicit* :class:`SystemConfig` — there is no silent default, so the
    serial and orchestrated paths cannot diverge on configuration.
    """

    app: str
    scheme: str
    requests: int
    seed: int
    system: SystemConfig
    engine: EngineConfig = field(default_factory=EngineConfig)
    costs: CryptoCosts = DEFAULT_COSTS

    def __post_init__(self) -> None:
        if self.app not in app_names():
            raise ValueError(f"unknown application {self.app!r}")
        registered = registered_scheme_names()
        if self.scheme not in registered:
            raise ValueError(f"unknown scheme {self.scheme!r}; registered "
                             f"schemes: {', '.join(registered)}")
        if self.requests <= 0:
            raise ValueError("requests must be positive")

    @property
    def key(self) -> Tuple[str, str]:
        """The cell's position in a :data:`~repro.sim.runner.ResultGrid`."""
        return (self.app, self.scheme)

    @property
    def trace_id(self) -> str:
        """Identifier of the shared per-application trace this job replays.

        Every scheme job of one application shares the same trace (the
        paper's evaluation pairs schemes on identical request streams), so
        the trace id deliberately excludes the scheme.
        """
        return f"{self.app}-s{self.seed}-n{self.requests}-v{TRACE_VERSION}"

    def digest(self) -> str:
        """Stable content hash identifying this job across processes."""
        return config_digest({
            "schema": SWEEP_SCHEMA_VERSION,
            "trace_version": TRACE_VERSION,
            "app": self.app,
            "scheme": self.scheme,
            "requests": self.requests,
            "seed": self.seed,
        }, self.system, self.engine, self.costs)

    def describe(self) -> str:
        return f"{self.app}/{self.scheme} ({self.requests} req, seed {self.seed})"


def jobs_from_experiment(config) -> List[JobSpec]:
    """Expand an :class:`~repro.sim.runner.ExperimentConfig` into job specs.

    Order matches the serial :func:`~repro.sim.runner.run_grid` iteration
    (apps outer, schemes inner) so the assembled grid has identical key
    ordering to a serial run.
    """
    return [
        JobSpec(app=app, scheme=scheme,
                requests=config.requests_per_app, seed=config.seed,
                system=config.system, engine=config.engine,
                costs=config.costs)
        for app in config.apps
        for scheme in config.schemes
    ]
