"""Content-addressed store for sweep results, as a manager over a backend.

:class:`ResultStore` owns serialization policy (what a result row, obs
report, or manifest looks like as text) and delegates persistence to a
pluggable :class:`~repro.sweep.storage.StorageBackend` — the
manager-over-backend split.  The default backend is the original
JSON-directory layout (bit-compatible with stores written before the
split)::

    results/<job-digest>.json   one simulated cell, full-fidelity state
    traces/<trace-id>.esdtrace  shared per-application request stream
    obs/<job-digest>.json       observability report (only when the sweep
                                ran with observability enabled)
    manifest.json               machine-readable record of the last sweep

plus, only when a distributed sweep runs, work-queue state (``queue/``,
``claims/``, ``failed/``, ``completions/``, ``reclaims/``).  The SQLite
backend packs the same store into one WAL-mode file safe for concurrent
workers.

Result rows are written atomically and durably (temp file + fsync +
``os.replace`` + directory fsync), so a sweep killed mid-run leaves only
complete rows behind and a re-invocation resumes exactly at the first
unfinished cell.  Rows carry the full internal state of a
:class:`~repro.sim.metrics.SimulationResult`
(:func:`repro.sim.export.result_to_state`), so a cache hit is
byte-identical to a fresh simulation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Union

from ..common.types import MemoryRequest
from ..sim.export import result_from_state, result_to_state
from ..sim.metrics import SimulationResult
from ..workloads.trace import read_trace_list, write_trace
from .job import JobSpec
from .storage import (
    DirStorageBackend,
    LeaseClaim,
    StorageBackend,
    parse_store_spec,
)

__all__ = ["ResultStore", "job_meta", "migrate_store", "open_store"]


class ResultStore:
    """Persists simulation results keyed by job content hash.

    Args:
        root: directory for the default :class:`DirStorageBackend`
            layout; mutually exclusive with ``backend``.
        backend: an explicit storage backend (directory, SQLite, ...).
    """

    def __init__(self, root: Union[str, Path, None] = None, *,
                 backend: Optional[StorageBackend] = None) -> None:
        if (root is None) == (backend is None):
            raise ValueError("pass exactly one of root or backend")
        self.backend = backend if backend is not None \
            else DirStorageBackend(Path(root))

    # ------------------------------------------------------------------
    # Directory-layout accessors (delegate to the dir backend; absent on
    # backends without a per-row filesystem layout)
    # ------------------------------------------------------------------

    @property
    def root(self) -> Path:
        return self.backend.root  # type: ignore[attr-defined]

    @property
    def results_dir(self) -> Path:
        return self.backend.results_dir  # type: ignore[attr-defined]

    @property
    def traces_dir(self) -> Path:
        return self.backend.traces_dir  # type: ignore[attr-defined]

    @property
    def obs_dir(self) -> Path:
        return self.backend.obs_dir  # type: ignore[attr-defined]

    @property
    def manifest_path(self) -> Path:
        return self.backend.manifest_path  # type: ignore[attr-defined]

    def result_path(self, digest: str) -> Path:
        return self.backend.result_path(digest)  # type: ignore[attr-defined]

    def obs_path(self, digest: str) -> Path:
        return self.backend.obs_path(digest)  # type: ignore[attr-defined]

    @property
    def spec(self) -> str:
        """A string from which another process can reopen this store."""
        return self.backend.spec

    def close(self) -> None:
        self.backend.close()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def __contains__(self, digest: str) -> bool:
        return self.backend.has_result(digest)

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_digests())

    def iter_digests(self) -> Iterator[str]:
        return self.backend.iter_result_digests()

    def get(self, digest: str) -> Optional[SimulationResult]:
        """The stored result for ``digest``, or ``None`` on a miss.

        Corrupt or version-incompatible rows (e.g. a row written by a
        future schema, or a partial file from a non-atomic writer) read as
        misses rather than errors: the scheduler simply re-simulates the
        cell and overwrites the bad row.
        """
        text = self.backend.read_result(digest)
        if text is None:
            return None
        try:
            payload = json.loads(text)
            return result_from_state(payload["result"])
        except (ValueError, KeyError, TypeError):
            return None

    def put(self, digest: str, result: SimulationResult,
            job: Optional[Dict] = None):
        """Atomically persist one result row; returns its backend ref.

        With the directory backend the returned reference is the row's
        :class:`~pathlib.Path` (the historical contract); other backends
        return an opaque reference.
        """
        payload = {"job": job or {}, "result": result_to_state(result)}
        # No sort_keys: dict insertion order must survive the round trip —
        # derived sums (e.g. total_energy_nj) iterate the energy dict, and
        # float addition is not associative, so reordering keys would make
        # cached cells differ from fresh ones in the last ulp.
        self.backend.write_result(digest, json.dumps(payload))
        result_path = getattr(self.backend, "result_path", None)
        return result_path(digest) if result_path is not None else digest

    # ------------------------------------------------------------------
    # Observability reports
    # ------------------------------------------------------------------

    def put_obs(self, digest: str, report: Dict):
        """Atomically persist one observability report.

        Reports are stored beside — not inside — the result rows: a
        result row's digest (and therefore cache identity) must not
        depend on whether its run happened to carry instrumentation.
        """
        self.backend.write_obs(digest, json.dumps(report, sort_keys=True))
        obs_path = getattr(self.backend, "obs_path", None)
        return obs_path(digest) if obs_path is not None else digest

    def get_obs(self, digest: str) -> Optional[Dict]:
        """The stored observability report, or ``None`` on a miss."""
        text = self.backend.read_obs(digest)
        if text is None:
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            return None
        return payload if isinstance(payload, dict) else None

    # ------------------------------------------------------------------
    # Shared traces
    # ------------------------------------------------------------------

    def trace_path(self, trace_id: str) -> Path:
        """The local path a stored trace is (or would be) served from."""
        trace_path = getattr(self.backend, "trace_path", None)
        if trace_path is not None:
            return trace_path(trace_id)
        return self.backend.trace_local_path(trace_id)

    def has_trace(self, trace_id: str) -> bool:
        return self.backend.has_trace(trace_id)

    def ensure_trace(self, trace_id: str,
                     generate: Callable[[], List[MemoryRequest]]) -> Path:
        """Return a local file for ``trace_id``, generating it on miss.

        The trace is written atomically so concurrent sweeps sharing one
        store never observe a truncated file.
        """
        return self.backend.ensure_trace(
            trace_id, lambda fh: write_trace(generate(), fh))

    def load_trace(self, trace_id: str) -> List[MemoryRequest]:
        return read_trace_list(self.backend.trace_local_path(trace_id))

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------

    def write_manifest(self, manifest: Dict):
        self.backend.write_manifest(
            json.dumps(manifest, indent=2, sort_keys=True))
        manifest_path = getattr(self.backend, "manifest_path", None)
        return manifest_path

    def read_manifest(self) -> Optional[Dict]:
        text = self.backend.read_manifest()
        if text is None:
            return None
        try:
            return json.loads(text)
        except ValueError:
            return None

    # ------------------------------------------------------------------
    # Work queue (lease-based distributed execution)
    # ------------------------------------------------------------------

    def enqueue(self, digest: str, payload: Dict) -> None:
        """Idempotently publish one job for workers to claim."""
        self.backend.enqueue(digest, json.dumps(payload, sort_keys=True))

    def queue_payload(self, digest: str) -> Optional[Dict]:
        text = self.backend.queue_payload(digest)
        if text is None:
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            return None
        return payload if isinstance(payload, dict) else None

    def iter_queue(self) -> List[str]:
        return self.backend.iter_queue()

    def claim(self, digest: str, worker: str,
              ttl_s: float) -> Optional[LeaseClaim]:
        return self.backend.claim(digest, worker, ttl_s)

    def renew(self, digest: str, worker: str, ttl_s: float) -> bool:
        return self.backend.renew(digest, worker, ttl_s)

    def release(self, digest: str, worker: str) -> None:
        self.backend.release(digest, worker)

    def claim_info(self, digest: str) -> Optional[LeaseClaim]:
        return self.backend.claim_info(digest)

    def live_claims(self) -> List[LeaseClaim]:
        return self.backend.live_claims()

    def reclaim_count(self) -> int:
        return self.backend.reclaim_count()

    def mark_failed(self, digest: str, error: str, attempts: int) -> None:
        self.backend.mark_failed(digest, error, attempts)

    def get_failure(self, digest: str) -> Optional[Dict]:
        return self.backend.get_failure(digest)

    def record_completion(self, digest: str, worker: str,
                          duration_s: float, attempts: int) -> None:
        self.backend.record_completion(digest, worker, duration_s, attempts)

    def completions(self) -> List[Dict]:
        return self.backend.completions()


def open_store(spec: Union[str, Path, "ResultStore"],
               storage: Optional[str] = None) -> "ResultStore":
    """Open a result store from a path / URL spec (or pass one through).

    Accepts a directory path (default layout), ``sqlite://<path>``, a
    ``.sqlite``/``.db`` path, or an explicit ``storage`` backend name;
    see :func:`repro.sweep.storage.parse_store_spec` for the rules.
    """
    if isinstance(spec, ResultStore):
        return spec
    return ResultStore(backend=parse_store_spec(str(spec), storage))


def migrate_store(src: "ResultStore", dst: "ResultStore") -> Dict[str, int]:
    """Copy every row of ``src`` into ``dst``, byte-identically.

    Result rows, obs reports, traces, and the manifest cross as raw
    text/bytes — never re-parsed — so a dir→sqlite→dir round trip
    reproduces the original rows exactly (the migration test's
    invariant).  Work-queue state (claims, completions) is deliberately
    not migrated: leases are meaningful only to the store they were
    acquired in.

    Returns a count per migrated kind.
    """
    counts = {"results": 0, "obs": 0, "traces": 0, "manifest": 0}
    for digest in src.backend.iter_result_digests():
        text = src.backend.read_result(digest)
        if text is not None:
            dst.backend.write_result(digest, text)
            counts["results"] += 1
        obs_text = src.backend.read_obs(digest)
        if obs_text is not None:
            dst.backend.write_obs(digest, obs_text)
            counts["obs"] += 1
    # Traces: enumerate via the backend layout (dir glob / sqlite table).
    for trace_id in _trace_ids(src.backend):
        data = src.backend.trace_local_path(trace_id).read_bytes()
        dst.backend.ensure_trace(trace_id, lambda fh, d=data: fh.write(d))
        counts["traces"] += 1
    manifest_text = src.backend.read_manifest()
    if manifest_text is not None:
        dst.backend.write_manifest(manifest_text)
        counts["manifest"] += 1
    return counts


def _trace_ids(backend: StorageBackend) -> List[str]:
    traces_dir = getattr(backend, "traces_dir", None)
    if traces_dir is not None:
        return sorted(p.stem for p in Path(traces_dir).glob("*.esdtrace"))
    rows = backend._conn().execute(  # type: ignore[attr-defined]
        "SELECT trace_id FROM traces ORDER BY trace_id").fetchall()
    return [trace_id for (trace_id,) in rows]


def job_meta(spec: JobSpec) -> Dict:
    """Human-auditable job header stored alongside each result row."""
    return {
        "app": spec.app,
        "scheme": spec.scheme,
        "requests": spec.requests,
        "seed": spec.seed,
        "digest": spec.digest(),
        "trace_id": spec.trace_id,
    }
