"""Content-addressed, on-disk store for sweep results and shared traces.

Layout under the store root::

    results/<job-digest>.json   one simulated cell, full-fidelity state
    traces/<trace-id>.esdtrace  shared per-application request stream
    obs/<job-digest>.json       observability report (only when the sweep
                                ran with observability enabled)
    manifest.json               machine-readable record of the last sweep

Result rows are written atomically (temp file + ``os.replace``), so a
sweep killed mid-run leaves only complete rows behind and a re-invocation
resumes exactly at the first unfinished cell.  Rows carry the full internal
state of a :class:`~repro.sim.metrics.SimulationResult`
(:func:`repro.sim.export.result_to_state`), so a cache hit is
byte-identical to a fresh simulation.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Union

from ..common.types import MemoryRequest
from ..sim.export import result_from_state, result_to_state
from ..sim.metrics import SimulationResult
from ..workloads.trace import read_trace_list, write_trace
from .job import JobSpec


class ResultStore:
    """Persists simulation results keyed by job content hash."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.results_dir = self.root / "results"
        self.traces_dir = self.root / "traces"
        #: Created lazily by :meth:`put_obs` — stores from sweeps that never
        #: enable observability keep the pre-obs layout.
        self.obs_dir = self.root / "obs"
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self.traces_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def result_path(self, digest: str) -> Path:
        return self.results_dir / f"{digest}.json"

    def __contains__(self, digest: str) -> bool:
        return self.result_path(digest).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_digests())

    def iter_digests(self) -> Iterator[str]:
        for path in sorted(self.results_dir.glob("*.json")):
            yield path.stem

    def get(self, digest: str) -> Optional[SimulationResult]:
        """The stored result for ``digest``, or ``None`` on a miss.

        Corrupt or version-incompatible rows (e.g. a row written by a
        future schema, or a partial file from a non-atomic writer) read as
        misses rather than errors: the scheduler simply re-simulates the
        cell and overwrites the bad row.
        """
        path = self.result_path(digest)
        try:
            payload = json.loads(path.read_text())
            return result_from_state(payload["result"])
        except FileNotFoundError:
            return None
        except (ValueError, KeyError, TypeError):
            return None

    def put(self, digest: str, result: SimulationResult,
            job: Optional[Dict] = None) -> Path:
        """Atomically persist one result row; returns its path."""
        path = self.result_path(digest)
        payload = {"job": job or {}, "result": result_to_state(result)}
        # No sort_keys: dict insertion order must survive the round trip —
        # derived sums (e.g. total_energy_nj) iterate the energy dict, and
        # float addition is not associative, so reordering keys would make
        # cached cells differ from fresh ones in the last ulp.
        self._atomic_write(path, json.dumps(payload))
        return path

    def _atomic_write(self, path: Path, text: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                                   prefix=f".{path.name}.", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Observability reports
    # ------------------------------------------------------------------

    def obs_path(self, digest: str) -> Path:
        return self.obs_dir / f"{digest}.json"

    def put_obs(self, digest: str, report: Dict) -> Path:
        """Atomically persist one observability report; returns its path.

        Reports are stored beside — not inside — the result rows: a
        result row's digest (and therefore cache identity) must not
        depend on whether its run happened to carry instrumentation.
        """
        self.obs_dir.mkdir(parents=True, exist_ok=True)
        path = self.obs_path(digest)
        self._atomic_write(path, json.dumps(report, sort_keys=True))
        return path

    def get_obs(self, digest: str) -> Optional[Dict]:
        """The stored observability report, or ``None`` on a miss."""
        try:
            payload = json.loads(self.obs_path(digest).read_text())
        except (FileNotFoundError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    # ------------------------------------------------------------------
    # Shared traces
    # ------------------------------------------------------------------

    def trace_path(self, trace_id: str) -> Path:
        return self.traces_dir / f"{trace_id}.esdtrace"

    def ensure_trace(self, trace_id: str,
                     generate: Callable[[], List[MemoryRequest]]) -> Path:
        """Return the trace file for ``trace_id``, generating it on miss.

        The trace is written atomically so concurrent sweeps sharing one
        store never observe a truncated file.
        """
        path = self.trace_path(trace_id)
        if path.exists():
            return path
        fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                                   prefix=f".{path.name}.", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                write_trace(generate(), fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def load_trace(self, trace_id: str) -> List[MemoryRequest]:
        return read_trace_list(self.trace_path(trace_id))

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    def write_manifest(self, manifest: Dict) -> Path:
        self._atomic_write(self.manifest_path,
                           json.dumps(manifest, indent=2, sort_keys=True))
        return self.manifest_path

    def read_manifest(self) -> Optional[Dict]:
        try:
            return json.loads(self.manifest_path.read_text())
        except (FileNotFoundError, ValueError):
            return None


def job_meta(spec: JobSpec) -> Dict:
    """Human-auditable job header stored alongside each result row."""
    return {
        "app": spec.app,
        "scheme": spec.scheme,
        "requests": spec.requests,
        "seed": spec.seed,
        "digest": spec.digest(),
        "trace_id": spec.trace_id,
    }
