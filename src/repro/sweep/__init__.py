"""Parallel experiment orchestration: scheduler, backends, store, progress.

The paper's evaluation is a (20 applications) x (4 schemes) grid; replaying
it serially is the slowest path in the repo and re-simulates cells every
run.  This subsystem turns the grid into content-addressed jobs:

* :class:`JobSpec` — one (app, scheme) cell with a stable content hash
  over every input that affects its result.
* :class:`Scheduler` — cache pass, shared trace seeding, manifest; hands
  cache misses to a pluggable execution backend.
* :class:`ProcessPoolBackend` / :class:`WorkQueueBackend` — how misses
  execute: a local process pool with retries and timeouts, or a
  lease-based distributed work queue any number of ``repro worker``
  processes can serve through the shared store.
* :class:`ResultStore` — persists full-fidelity results keyed by job
  hash, over a pluggable :class:`StorageBackend` (JSON directory or a
  single concurrent-safe SQLite file), so re-runs and interrupted sweeps
  resume instantly.
* :class:`ProgressReporter` — live completed/failed/ETA lines plus a
  machine-readable sweep manifest.

Entry points: :func:`run_sweep` (library),
``python -m repro.cli sweep`` / ``python -m repro.cli worker`` (command
line), and ``run_grid(..., jobs=..., store=...)`` (drop-in parallel path
for existing callers).
"""

from .backends import (
    ExecutionBackend,
    ExecutionContext,
    ProcessPoolBackend,
    WorkQueueBackend,
    execution_backend_names,
    make_execution_backend,
)
from .job import (
    SWEEP_SCHEMA_VERSION,
    JobSpec,
    jobs_from_experiment,
    spec_from_payload,
    spec_to_payload,
)
from .obs import SweepMetrics
from .progress import (
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_SIMULATED,
    ProgressReporter,
)
from .scheduler import Scheduler, run_sweep
from .storage import (
    DirStorageBackend,
    LeaseClaim,
    SqliteStorageBackend,
    StorageBackend,
    fsync_atomic_write,
    make_storage_backend,
    parse_store_spec,
    storage_backend_names,
)
from .store import ResultStore, job_meta, migrate_store, open_store
from .worker import default_worker_id, execute_job, worker_loop

__all__ = [
    "DirStorageBackend",
    "ExecutionBackend",
    "ExecutionContext",
    "JobSpec",
    "LeaseClaim",
    "ProcessPoolBackend",
    "ProgressReporter",
    "ResultStore",
    "STATUS_CACHED",
    "STATUS_FAILED",
    "STATUS_SIMULATED",
    "SWEEP_SCHEMA_VERSION",
    "Scheduler",
    "SqliteStorageBackend",
    "StorageBackend",
    "SweepMetrics",
    "WorkQueueBackend",
    "default_worker_id",
    "execute_job",
    "execution_backend_names",
    "fsync_atomic_write",
    "job_meta",
    "jobs_from_experiment",
    "make_execution_backend",
    "make_storage_backend",
    "migrate_store",
    "open_store",
    "parse_store_spec",
    "spec_from_payload",
    "spec_to_payload",
    "storage_backend_names",
    "worker_loop",
]
