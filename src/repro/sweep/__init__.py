"""Parallel experiment orchestration: scheduler, result store, progress.

The paper's evaluation is a (20 applications) x (4 schemes) grid; replaying
it serially is the slowest path in the repo and re-simulates cells every
run.  This subsystem turns the grid into content-addressed jobs:

* :class:`JobSpec` — one (app, scheme) cell with a stable content hash
  over every input that affects its result.
* :class:`Scheduler` — fans jobs out over a process pool, shares one
  generated trace per application, retries crashed workers, and enforces
  per-job timeouts.
* :class:`ResultStore` — persists full-fidelity results keyed by job hash,
  so re-runs and interrupted sweeps resume instantly.
* :class:`ProgressReporter` — live completed/failed/ETA lines plus a
  machine-readable sweep manifest.

Entry points: :func:`run_sweep` (library),
``python -m repro.cli sweep`` (command line), and
``run_grid(..., jobs=..., store=...)`` (drop-in parallel path for existing
callers).
"""

from .job import SWEEP_SCHEMA_VERSION, JobSpec, jobs_from_experiment
from .progress import (
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_SIMULATED,
    ProgressReporter,
)
from .scheduler import Scheduler, execute_job, run_sweep
from .store import ResultStore, job_meta

__all__ = [
    "JobSpec",
    "ProgressReporter",
    "ResultStore",
    "STATUS_CACHED",
    "STATUS_FAILED",
    "STATUS_SIMULATED",
    "SWEEP_SCHEMA_VERSION",
    "Scheduler",
    "execute_job",
    "job_meta",
    "jobs_from_experiment",
    "run_sweep",
]
