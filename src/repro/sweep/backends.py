"""Pluggable execution backends for the sweep scheduler.

The :class:`~repro.sweep.scheduler.Scheduler` owns *what* to run (cache
checks, trace seeding, the manifest, failure accounting); an
:class:`ExecutionBackend` owns *how* the cache-miss jobs execute:

``pool``
    The original semantics — a ``ProcessPoolExecutor`` fan-out with
    round-budget timeouts, per-job retries, and clean Ctrl-C teardown.
    ``jobs=1`` bypasses the pool and runs in-process.

``queue``
    Lease-based distributed execution.  The coordinator publishes every
    pending job into the shared store's work queue and spawns ``jobs``
    local worker processes (:func:`repro.sweep.worker.worker_loop`); any
    number of additional ``repro worker --store ...`` processes — on
    this host or others sharing the store — can join the same sweep.
    The coordinator then just polls the store: results and failures
    land there, leases of dead workers expire and are reclaimed, and a
    :class:`~repro.sweep.obs.SweepMetrics` registry tracks fleet health
    for the manifest.

Backends are registered by name (``EXECUTION_BACKENDS``) so the CLI can
enumerate them, mirroring the storage-backend registry in
:mod:`repro.sweep.storage`.
"""

from __future__ import annotations

import abc
import math
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures import as_completed
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Dict, List, Optional, Sequence, Tuple

from ..common.errors import SweepError, UnknownBackendError
from ..sim.metrics import SimulationResult
from .job import JobSpec, spec_to_payload
from .obs import SweepMetrics
from .progress import STATUS_FAILED, STATUS_SIMULATED, ProgressReporter
from .store import ResultStore, job_meta
from .worker import _worker_process_entry, default_worker_id, execute_job

__all__ = [
    "EXECUTION_BACKENDS",
    "ExecutionBackend",
    "ExecutionContext",
    "ProcessPoolBackend",
    "WorkQueueBackend",
    "execution_backend_names",
    "make_execution_backend",
]


@dataclass
class ExecutionContext:
    """Everything a backend needs to execute one sweep's pending jobs.

    The scheduler builds this after the cache pass: ``pending`` holds
    only the cells that actually need simulation, ``results`` already
    contains the cache hits and is filled in-place as jobs finish.
    """

    pending: Sequence[JobSpec]
    trace_paths: Dict[str, str]
    digests: Dict[JobSpec, str]
    store: ResultStore
    reporter: ProgressReporter
    results: Dict[Tuple[str, str], SimulationResult]
    worker: Callable[[JobSpec, str], SimulationResult] = execute_job
    jobs: int = 1
    job_timeout_s: float = 600.0
    retries: int = 2


class ExecutionBackend(abc.ABC):
    """How a sweep's cache-miss jobs get executed."""

    #: Registry key, shown by ``repro sweep --backend``.
    name: ClassVar[str]

    #: Fleet-health metrics of the last run, when the backend keeps any.
    metrics: Optional[SweepMetrics] = None

    @abc.abstractmethod
    def execute(self, ctx: ExecutionContext) -> None:
        """Run ``ctx.pending``; record outcomes via ``ctx.results`` and
        ``ctx.reporter``.  Jobs that exhaust their retry budget are
        reported ``STATUS_FAILED`` and simply left out of ``ctx.results``
        — the scheduler turns the gap into a :class:`SweepError`."""


# ----------------------------------------------------------------------
# Process-pool backend (the original scheduler execution path)
# ----------------------------------------------------------------------

class ProcessPoolBackend(ExecutionBackend):
    """``ProcessPoolExecutor`` fan-out with retries and round budgets."""

    name = "pool"

    def execute(self, ctx: ExecutionContext) -> None:
        if ctx.jobs == 1:
            self._run_serial(ctx)
        else:
            self._run_pool(ctx)

    @staticmethod
    def _record(ctx: ExecutionContext, spec: JobSpec,
                result: SimulationResult, attempts: int,
                duration: float) -> None:
        ctx.store.put(ctx.digests[spec], result, job=job_meta(spec))
        if result.obs is not None:
            # Observability reports live beside the result rows (store
            # ``obs/`` directory) — they are diagnostic artifacts, not part
            # of a cell's cache identity, so result digests stay stable
            # whether or not a run carried instrumentation.
            ctx.store.put_obs(ctx.digests[spec], result.obs)
        ctx.results[spec.key] = result
        ctx.reporter.job_done(spec, STATUS_SIMULATED, attempts=attempts,
                              duration_s=duration)

    def _run_serial(self, ctx: ExecutionContext) -> None:
        for spec in ctx.pending:
            attempts = 0
            while True:
                attempts += 1
                started = time.monotonic()
                try:
                    result = ctx.worker(spec, ctx.trace_paths[spec.trace_id])
                except Exception as exc:
                    if attempts <= ctx.retries:
                        ctx.reporter.job_retry(spec, attempts, repr(exc))
                        continue
                    ctx.reporter.job_done(
                        spec, STATUS_FAILED, attempts=attempts,
                        duration_s=time.monotonic() - started,
                        error=repr(exc))
                    break
                self._record(ctx, spec, result, attempts,
                             time.monotonic() - started)
                break

    def _run_pool(self, ctx: ExecutionContext) -> None:
        attempts: Dict[str, int] = {ctx.digests[spec]: 0
                                    for spec in ctx.pending}
        remaining = list(ctx.pending)
        while remaining:
            batch, remaining = remaining, []
            workers = min(ctx.jobs, len(batch))
            # Aggregate wall budget for the round: each worker slot gets the
            # per-job timeout for every job it may serve.
            budget = ctx.job_timeout_s * math.ceil(len(batch) / workers)
            started = {}
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {}
                for spec in batch:
                    started[ctx.digests[spec]] = time.monotonic()
                    futures[pool.submit(
                        ctx.worker, spec,
                        ctx.trace_paths[spec.trace_id])] = spec
                timed_out = False
                try:
                    for future in as_completed(futures, timeout=budget):
                        spec = futures.pop(future)
                        digest = ctx.digests[spec]
                        attempts[digest] += 1
                        duration = time.monotonic() - started[digest]
                        try:
                            result = future.result()
                        except Exception as exc:
                            if attempts[digest] <= ctx.retries:
                                ctx.reporter.job_retry(
                                    spec, attempts[digest], repr(exc))
                                remaining.append(spec)
                            else:
                                ctx.reporter.job_done(
                                    spec, STATUS_FAILED,
                                    attempts=attempts[digest],
                                    duration_s=duration, error=repr(exc))
                        else:
                            self._record(ctx, spec, result,
                                         attempts[digest], duration)
                except FutureTimeout:
                    timed_out = True
                except KeyboardInterrupt:
                    # Ctrl-C mid-round: in-flight cells are abandoned (they
                    # can re-run on resume).  Force-stop the round's worker
                    # processes before the executor's final join — without
                    # this, the ``with`` block's shutdown(wait=True) hangs
                    # on busy workers and a second Ctrl-C is required.
                    for proc in list((getattr(pool, "_processes", None)
                                      or {}).values()):
                        proc.terminate()
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise
                if timed_out:
                    # Tear the round down; unfinished jobs burn one attempt.
                    # A hung worker would otherwise block the executor's
                    # final join forever, so force-stop the round's
                    # processes before shutting the pool down.
                    for proc in list((getattr(pool, "_processes", None)
                                      or {}).values()):
                        proc.terminate()
                    pool.shutdown(wait=False, cancel_futures=True)
                    for future, spec in futures.items():
                        digest = ctx.digests[spec]
                        attempts[digest] += 1
                        duration = time.monotonic() - started[digest]
                        err = (f"timeout after "
                               f"{ctx.job_timeout_s:.0f}s/job round budget")
                        if attempts[digest] <= ctx.retries:
                            ctx.reporter.job_retry(spec, attempts[digest],
                                                   err)
                            remaining.append(spec)
                        else:
                            ctx.reporter.job_done(spec, STATUS_FAILED,
                                                  attempts=attempts[digest],
                                                  duration_s=duration,
                                                  error=err)


# ----------------------------------------------------------------------
# Lease-based work-queue backend (distributed execution)
# ----------------------------------------------------------------------

@dataclass
class WorkQueueBackend(ExecutionBackend):
    """Coordinate N worker processes through the shared store's queue.

    The coordinator never executes jobs itself: it publishes the pending
    specs (idempotently — the queue is keyed by content digest), spawns
    ``ctx.jobs`` local workers, and polls the store for results,
    failures, completions, and lease reclaims until every published job
    is terminal.  External ``repro worker`` processes pointed at the
    same store participate transparently.

    Args:
        lease_s: lease TTL handed to local workers; a worker that dies
            mid-job stops heartbeating and its job is reclaimed after at
            most this long.
        poll_s: coordinator poll interval (and local workers' queue-scan
            backoff).
        spawn_workers: set ``False`` to publish the queue and wait for
            external workers only (``repro sweep --backend queue`` with
            a standing worker fleet).
    """

    name: ClassVar[str] = "queue"

    lease_s: float = 15.0
    poll_s: float = 0.25
    spawn_workers: bool = True
    #: Local worker processes of the current run (exposed so fault tests
    #: and the CI smoke job can SIGKILL one mid-sweep).
    processes: List[multiprocessing.Process] = field(default_factory=list)

    def execute(self, ctx: ExecutionContext) -> None:
        metrics = SweepMetrics()
        metrics.start()
        self.metrics = metrics
        store = ctx.store
        by_digest = {ctx.digests[spec]: spec for spec in ctx.pending}
        for spec in ctx.pending:
            store.enqueue(ctx.digests[spec], {"spec": spec_to_payload(spec)})

        self.processes = []
        respawn_budget = ctx.jobs * (ctx.retries + 1)
        if self.spawn_workers:
            for _ in range(ctx.jobs):
                self.processes.append(self._spawn(store.spec, ctx))

        # Hard ceiling mirroring the pool's round budgets: every job may
        # burn its full timeout on every attempt, spread over the fleet.
        deadline = time.monotonic() + (
            ctx.job_timeout_s * (ctx.retries + 1)
            * math.ceil(len(by_digest) / max(ctx.jobs, 1)) + 30.0)

        done: set = set()
        seen_completions = 0
        try:
            while len(done) < len(by_digest):
                completions = store.completions()
                for row in completions[seen_completions:]:
                    metrics.record_completion(row["worker"],
                                              row["duration_s"])
                seen_completions = len(completions)
                latest = {row["digest"]: row for row in completions}

                for digest, spec in by_digest.items():
                    if digest in done:
                        continue
                    result = store.get(digest)
                    if result is not None:
                        done.add(digest)
                        ctx.results[spec.key] = result
                        meta = latest.get(digest, {})
                        ctx.reporter.job_done(
                            spec, STATUS_SIMULATED,
                            attempts=int(meta.get("attempts", 1)),
                            duration_s=float(meta.get("duration_s", 0.0)),
                            worker=meta.get("worker"))
                        continue
                    failure = store.get_failure(digest)
                    if failure is not None:
                        done.add(digest)
                        ctx.reporter.job_done(
                            spec, STATUS_FAILED,
                            attempts=int(failure.get("attempts", 1)),
                            error=failure.get("error"))

                metrics.sync_reclaims(store.reclaim_count())
                metrics.queue_depth.set(float(len(by_digest) - len(done)))
                respawn_budget = self._tend_fleet(ctx, store, metrics,
                                                  len(done) < len(by_digest),
                                                  respawn_budget)
                if len(done) >= len(by_digest):
                    break
                if time.monotonic() > deadline:
                    raise SweepError(
                        f"distributed sweep stalled: {len(by_digest) - len(done)}"
                        f" job(s) not terminal within the "
                        f"{ctx.job_timeout_s:.0f}s/job budget")
                time.sleep(self.poll_s)
        except KeyboardInterrupt:
            self._stop_fleet(terminate=True)
            raise
        finally:
            self._stop_fleet(terminate=False)
            metrics.workers_alive.set(0.0)
            metrics.sync_reclaims(store.reclaim_count())

    # ------------------------------------------------------------------

    def _spawn(self, store_spec: str,
               ctx: ExecutionContext) -> multiprocessing.Process:
        proc = multiprocessing.Process(
            target=_worker_process_entry,
            args=(store_spec, default_worker_id(), self.lease_s,
                  self.poll_s, ctx.retries, ctx.worker),
            daemon=True)
        proc.start()
        return proc

    def _tend_fleet(self, ctx: ExecutionContext, store: ResultStore,
                    metrics: SweepMetrics, work_remains: bool,
                    respawn_budget: int) -> int:
        """Respawn dead local workers (bounded) and refresh liveness."""
        if self.spawn_workers and work_remains:
            for i, proc in enumerate(self.processes):
                if proc.is_alive() or respawn_budget <= 0:
                    continue
                respawn_budget -= 1
                metrics.worker_respawns.inc()
                self.processes[i] = self._spawn(store.spec, ctx)
        alive = sum(1 for p in self.processes if p.is_alive())
        metrics.workers_alive.set(float(alive))
        return respawn_budget

    def _stop_fleet(self, *, terminate: bool) -> None:
        for proc in self.processes:
            if terminate and proc.is_alive():
                proc.terminate()
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

EXECUTION_BACKENDS: Dict[str, type] = {
    ProcessPoolBackend.name: ProcessPoolBackend,
    WorkQueueBackend.name: WorkQueueBackend,
}


def execution_backend_names() -> List[str]:
    return sorted(EXECUTION_BACKENDS)


def make_execution_backend(name: str, **knobs) -> ExecutionBackend:
    """Instantiate a registered execution backend by name.

    Raises:
        UnknownBackendError: listing the registered names, so the CLI can
            surface them verbatim.
    """
    cls = EXECUTION_BACKENDS.get(name)
    if cls is None:
        raise UnknownBackendError(
            f"unknown execution backend {name!r}; registered backends: "
            f"{', '.join(execution_backend_names())}")
    if cls is ProcessPoolBackend:
        knobs = {}  # the pool takes its knobs from the ExecutionContext
    return cls(**knobs)
