"""Sweep scheduler: cache pass, trace seeding, backend dispatch, manifest.

Execution model:

* Jobs are first checked against the :class:`~repro.sweep.store.ResultStore`
  — a hit skips simulation entirely, which is what makes interrupted sweeps
  resumable and repeat sweeps (new figures over the same grid) free.
* One trace per application is generated once in the parent and shared
  through the store; scheme jobs replay it, preserving the paper's
  paired-trace methodology and the serial runner's exact request streams.
* Misses are handed to a pluggable
  :class:`~repro.sweep.backends.ExecutionBackend`:

  - ``pool`` (default): a ``ProcessPoolExecutor`` fan-out (``jobs``
    workers, default ``os.cpu_count()``).  A crashed or timed-out worker
    fails only the jobs it was running; those jobs are resubmitted on a
    fresh pool up to ``retries`` extra attempts before the sweep raises
    :class:`~repro.common.errors.SweepError`.  ``jobs=1`` bypasses the
    pool and runs in-process (no fork overhead, and exceptions surface
    with full tracebacks) while still using the store.
  - ``queue``: lease-based distributed execution through the shared
    store's work queue — local worker processes plus any external
    ``repro worker`` processes pointed at the same store.

* ``KeyboardInterrupt`` is a clean shutdown, not a crash: worker processes
  are terminated, the manifest is written with ``interrupted: true``, and
  the signal propagates.  Completed cells were already flushed atomically,
  so a re-invocation resumes from them.

Determinism: every scheme run seeds its own RNGs from its configuration and
consumes a replayed trace, so cell results are independent of worker count,
execution backend, and scheduling order — the parallel (or distributed)
grid is byte-identical to a serial :func:`~repro.sim.runner.run_grid`.
"""

from __future__ import annotations

import os
import tempfile
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

from ..common.errors import SweepError
from ..sim.metrics import SimulationResult
from ..workloads.generator import TraceGenerator
from ..workloads.profiles import get_profile
from .backends import (
    ExecutionBackend,
    ExecutionContext,
    make_execution_backend,
)
from .job import JobSpec, jobs_from_experiment
from .progress import STATUS_CACHED, ProgressReporter
from .store import ResultStore, open_store
from .worker import execute_job

__all__ = ["Scheduler", "execute_job", "run_sweep"]


class Scheduler:
    """Orchestrates a set of :class:`JobSpec` over an execution backend.

    Args:
        store: result store to consult/populate; ``None`` uses a temporary
            store discarded after the run (parallelism without persistence).
        jobs: worker processes (default ``os.cpu_count()``; 1 = in-process
            for the pool backend).
        job_timeout_s: wall-clock budget per job; a round of jobs that
            exceeds its aggregate budget is torn down and retried.
        retries: extra attempts per job after a crash/timeout/exception.
        reporter: progress sink; ``None`` builds a silent one.
        backend: execution backend — a registered name (``"pool"``,
            ``"queue"``) or an :class:`ExecutionBackend` instance;
            ``None`` means the original pool semantics.
        worker: job-execution callable, injectable for tests; must be a
            module-level (picklable) function with ``execute_job``'s
            signature.
    """

    def __init__(self, store: Optional[ResultStore] = None, *,
                 jobs: Optional[int] = None,
                 job_timeout_s: float = 600.0,
                 retries: int = 2,
                 reporter: Optional[ProgressReporter] = None,
                 backend: Union[str, ExecutionBackend, None] = None,
                 worker: Callable[[JobSpec, str], SimulationResult] = execute_job) -> None:
        if jobs is not None and jobs <= 0:
            raise ValueError("jobs must be positive")
        if job_timeout_s <= 0:
            raise ValueError("job_timeout_s must be positive")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.store = store
        self.jobs = jobs or os.cpu_count() or 1
        self.job_timeout_s = job_timeout_s
        self.retries = retries
        self.reporter = reporter
        if backend is None:
            backend = "pool"
        self.backend = (make_execution_backend(backend)
                        if isinstance(backend, str) else backend)
        self._worker = worker

    # ------------------------------------------------------------------

    def run(self, specs: Sequence[JobSpec]) -> Dict[Tuple[str, str], SimulationResult]:
        """Execute all jobs; returns ``{(app, scheme): result}``.

        Grid key order follows ``specs`` order, matching the serial runner.

        Raises:
            SweepError: when any job still fails after its retry budget.
        """
        reporter = self.reporter or ProgressReporter(len(specs), enabled=False)
        if self.store is not None:
            return self._run_with_store(specs, self.store, reporter)
        with tempfile.TemporaryDirectory(prefix="repro-sweep-") as tmp:
            return self._run_with_store(specs, ResultStore(tmp), reporter)

    def _run_with_store(self, specs: Sequence[JobSpec], store: ResultStore,
                        reporter: ProgressReporter
                        ) -> Dict[Tuple[str, str], SimulationResult]:
        results: Dict[Tuple[str, str], SimulationResult] = {}
        digests = {spec: spec.digest() for spec in specs}
        pending: list = []
        for spec in specs:
            if spec.key in results:
                raise SweepError(f"duplicate grid cell {spec.key}")
            cached = store.get(digests[spec])
            if cached is not None:
                results[spec.key] = cached
                reporter.job_done(spec, STATUS_CACHED)
            else:
                pending.append(spec)

        trace_paths = self._ensure_traces(pending, store)
        ctx = ExecutionContext(
            pending=pending, trace_paths=trace_paths, digests=digests,
            store=store, reporter=reporter, results=results,
            worker=self._worker, jobs=self.jobs,
            job_timeout_s=self.job_timeout_s, retries=self.retries)

        try:
            if pending:
                self.backend.execute(ctx)
        except KeyboardInterrupt:
            # Graceful Ctrl-C: completed rows were already flushed
            # atomically, so the store is consistent; mark the manifest
            # interrupted and let the signal propagate.  A re-invocation
            # resumes from the finished cells.
            reporter.finish()
            manifest = self._manifest(reporter)
            manifest["interrupted"] = True
            if self.store is not None:
                store.write_manifest(manifest)
            raise

        reporter.finish()
        if self.store is not None:
            store.write_manifest(self._manifest(reporter))

        failed = [spec for spec in specs if spec.key not in results]
        if failed:
            detail = ", ".join(spec.describe() for spec in failed[:8])
            raise SweepError(
                f"{len(failed)} job(s) failed after {self.retries + 1} "
                f"attempt(s): {detail}")
        return {spec.key: results[spec.key] for spec in specs}

    def _manifest(self, reporter: ProgressReporter) -> Dict:
        manifest = reporter.manifest()
        manifest["jobs_flag"] = self.jobs
        manifest["backend"] = self.backend.name
        if self.store is not None:
            manifest["storage"] = self.store.backend.name
        if self.backend.metrics is not None:
            # Fleet-health observability (worker liveness, lease
            # reclaims, per-worker throughput) rides in the manifest so
            # a distributed run leaves an auditable execution record.
            manifest["obs"] = self.backend.metrics.snapshot()
        return manifest

    def _ensure_traces(self, pending: Sequence[JobSpec],
                       store: ResultStore) -> Dict[str, str]:
        """Generate each application's shared trace once, in the parent."""
        paths: Dict[str, str] = {}
        for spec in pending:
            if spec.trace_id in paths:
                continue
            profile = get_profile(spec.app)

            def generate(spec=spec, profile=profile):
                return TraceGenerator(profile, seed=spec.seed).generate_list(
                    spec.requests)

            paths[spec.trace_id] = str(store.ensure_trace(spec.trace_id,
                                                          generate))
        return paths


def run_sweep(config=None, *,
              jobs: Optional[int] = None,
              store: Optional[Union[str, ResultStore]] = None,
              job_timeout_s: float = 600.0,
              retries: int = 2,
              progress: bool = False,
              reporter: Optional[ProgressReporter] = None,
              backend: Union[str, ExecutionBackend, None] = None,
              storage: Optional[str] = None):
    """Orchestrated equivalent of :func:`repro.sim.runner.run_grid`.

    Args:
        config: an :class:`~repro.sim.runner.ExperimentConfig` (defaults to
            the full paper grid, identical to ``run_grid()``).
        jobs: worker processes (default ``os.cpu_count()``).
        store: result-store path/URL (created on demand) or a
            :class:`ResultStore`; ``None`` runs without persistence.
        progress: emit live progress lines to stderr.
        backend: execution backend name or instance (default ``"pool"``).
        storage: storage backend name forced when ``store`` is a string
            spec (default: inferred from the spec; see
            :func:`repro.sweep.store.open_store`).

    Returns:
        A :data:`~repro.sim.runner.ResultGrid` byte-identical to the serial
        runner's output for the same config.
    """
    from ..sim.runner import ExperimentConfig  # deferred: avoids cycle
    config = config or ExperimentConfig()
    specs = jobs_from_experiment(config)
    if isinstance(store, (str, os.PathLike)):
        store = open_store(store, storage)
    if reporter is None:
        reporter = ProgressReporter(len(specs), enabled=progress)
    scheduler = Scheduler(store, jobs=jobs, job_timeout_s=job_timeout_s,
                          retries=retries, reporter=reporter,
                          backend=backend)
    return scheduler.run(specs)
