"""Worker-pool scheduler that fans an experiment grid out over processes.

Execution model:

* Jobs are first checked against the :class:`~repro.sweep.store.ResultStore`
  — a hit skips simulation entirely, which is what makes interrupted sweeps
  resumable and repeat sweeps (new figures over the same grid) free.
* One trace per application is generated once in the parent and shared on
  disk; scheme jobs replay it, preserving the paper's paired-trace
  methodology and the serial runner's exact request streams.
* Misses run on a ``ProcessPoolExecutor`` (``jobs`` workers, default
  ``os.cpu_count()``).  A crashed or timed-out worker fails only the jobs it
  was running; those jobs are resubmitted on a fresh pool up to ``retries``
  extra attempts before the sweep raises :class:`~repro.common.errors.SweepError`.
* ``jobs=1`` bypasses the pool and runs in-process (no fork overhead, and
  exceptions surface with full tracebacks) while still using the store.
* ``KeyboardInterrupt`` is a clean shutdown, not a crash: worker processes
  are terminated, the manifest is written with ``interrupted: true``, and
  the signal propagates.  Completed cells were already flushed atomically,
  so a re-invocation resumes from them.

Determinism: every scheme run seeds its own RNGs from its configuration and
consumes a replayed trace, so cell results are independent of worker count
and scheduling order — the parallel grid is byte-identical to a serial
:func:`~repro.sim.runner.run_grid`.
"""

from __future__ import annotations

import math
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures import as_completed
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..common.errors import SweepError
from ..perf import reset_caches as reset_fastpath_caches
from ..sim.metrics import SimulationResult
from ..sim.runner import run_app
from ..workloads.generator import TraceGenerator
from ..workloads.profiles import get_profile
from ..workloads.trace import read_trace_list
from .job import JobSpec, jobs_from_experiment
from .progress import (
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_SIMULATED,
    ProgressReporter,
)
from .store import ResultStore, job_meta


#: Per-process memo of recently parsed traces.  Pool workers serve many
#: jobs; scheme jobs of the same application share a trace file, so keeping
#: the last few parsed streams in the worker avoids re-deserializing 64-byte
#: payload records for every cell.  Bounded to stay small under the
#: many-apps case.
_TRACE_MEMO: "Dict[str, list]" = {}
_TRACE_MEMO_CAP = 4


def _load_trace(trace_path: str) -> list:
    trace = _TRACE_MEMO.get(trace_path)
    if trace is None:
        trace = read_trace_list(trace_path)
        while len(_TRACE_MEMO) >= _TRACE_MEMO_CAP:
            _TRACE_MEMO.pop(next(iter(_TRACE_MEMO)))
        _TRACE_MEMO[trace_path] = trace
    return trace


def execute_job(spec: JobSpec, trace_path: str) -> SimulationResult:
    """Run one grid cell; the worker-side entry point (must be picklable).

    Deliberately funnels through :func:`~repro.sim.runner.run_app` so the
    orchestrated path exercises the exact code the serial runner does.

    Kernel-cache lifecycle: ``SimulationEngine.run`` resets the
    :mod:`repro.perf` memo caches at the start of every run, but a pool
    worker serves many jobs, so reset here too — worker-side kernel-cache
    state is then provably independent of job scheduling order, and cached
    results (including the exported ``memo_*`` statistics) stay
    byte-identical to a serial run.
    """
    reset_fastpath_caches()
    trace = _load_trace(trace_path)
    results = run_app(spec.app, [spec.scheme], requests=spec.requests,
                      system=spec.system, engine=spec.engine,
                      costs=spec.costs, seed=spec.seed, trace=trace)
    return results[spec.scheme]


class Scheduler:
    """Orchestrates a set of :class:`JobSpec` over a process pool.

    Args:
        store: result store to consult/populate; ``None`` uses a temporary
            store discarded after the run (parallelism without persistence).
        jobs: worker processes (default ``os.cpu_count()``; 1 = in-process).
        job_timeout_s: wall-clock budget per job; a round of jobs that
            exceeds its aggregate budget is torn down and retried.
        retries: extra attempts per job after a crash/timeout/exception.
        reporter: progress sink; ``None`` builds a silent one.
        worker: job-execution callable, injectable for tests; must be a
            module-level (picklable) function with ``execute_job``'s
            signature.
    """

    def __init__(self, store: Optional[ResultStore] = None, *,
                 jobs: Optional[int] = None,
                 job_timeout_s: float = 600.0,
                 retries: int = 2,
                 reporter: Optional[ProgressReporter] = None,
                 worker: Callable[[JobSpec, str], SimulationResult] = execute_job) -> None:
        if jobs is not None and jobs <= 0:
            raise ValueError("jobs must be positive")
        if job_timeout_s <= 0:
            raise ValueError("job_timeout_s must be positive")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.store = store
        self.jobs = jobs or os.cpu_count() or 1
        self.job_timeout_s = job_timeout_s
        self.retries = retries
        self.reporter = reporter
        self._worker = worker

    # ------------------------------------------------------------------

    def run(self, specs: Sequence[JobSpec]) -> Dict[Tuple[str, str], SimulationResult]:
        """Execute all jobs; returns ``{(app, scheme): result}``.

        Grid key order follows ``specs`` order, matching the serial runner.

        Raises:
            SweepError: when any job still fails after its retry budget.
        """
        reporter = self.reporter or ProgressReporter(len(specs), enabled=False)
        if self.store is not None:
            return self._run_with_store(specs, self.store, reporter)
        with tempfile.TemporaryDirectory(prefix="repro-sweep-") as tmp:
            return self._run_with_store(specs, ResultStore(tmp), reporter)

    def _run_with_store(self, specs: Sequence[JobSpec], store: ResultStore,
                        reporter: ProgressReporter
                        ) -> Dict[Tuple[str, str], SimulationResult]:
        results: Dict[Tuple[str, str], SimulationResult] = {}
        digests = {spec: spec.digest() for spec in specs}
        pending: List[JobSpec] = []
        for spec in specs:
            if spec.key in results:
                raise SweepError(f"duplicate grid cell {spec.key}")
            cached = store.get(digests[spec])
            if cached is not None:
                results[spec.key] = cached
                reporter.job_done(spec, STATUS_CACHED)
            else:
                pending.append(spec)

        trace_paths = self._ensure_traces(pending, store)

        try:
            if pending:
                if self.jobs == 1:
                    self._run_serial(pending, trace_paths, digests, store,
                                     reporter, results)
                else:
                    self._run_pool(pending, trace_paths, digests, store,
                                   reporter, results)
        except KeyboardInterrupt:
            # Graceful Ctrl-C: completed rows were already flushed
            # atomically by _record, so the store is consistent; mark the
            # manifest interrupted and let the signal propagate.  A
            # re-invocation resumes from the finished cells.
            reporter.finish()
            manifest = reporter.manifest()
            manifest["jobs_flag"] = self.jobs
            manifest["interrupted"] = True
            if self.store is not None:
                store.write_manifest(manifest)
            raise

        reporter.finish()
        manifest = reporter.manifest()
        manifest["jobs_flag"] = self.jobs
        if self.store is not None:
            store.write_manifest(manifest)

        failed = [spec for spec in specs if spec.key not in results]
        if failed:
            detail = ", ".join(spec.describe() for spec in failed[:8])
            raise SweepError(
                f"{len(failed)} job(s) failed after {self.retries + 1} "
                f"attempt(s): {detail}")
        return {spec.key: results[spec.key] for spec in specs}

    def _ensure_traces(self, pending: Sequence[JobSpec],
                       store: ResultStore) -> Dict[str, str]:
        """Generate each application's shared trace once, in the parent."""
        paths: Dict[str, str] = {}
        for spec in pending:
            if spec.trace_id in paths:
                continue
            profile = get_profile(spec.app)

            def generate(spec=spec, profile=profile):
                return TraceGenerator(profile, seed=spec.seed).generate_list(
                    spec.requests)

            paths[spec.trace_id] = str(store.ensure_trace(spec.trace_id,
                                                          generate))
        return paths

    # ------------------------------------------------------------------
    # Execution backends
    # ------------------------------------------------------------------

    def _run_serial(self, pending, trace_paths, digests, store, reporter,
                    results) -> None:
        for spec in pending:
            attempts = 0
            while True:
                attempts += 1
                started = time.monotonic()
                try:
                    result = self._worker(spec, trace_paths[spec.trace_id])
                except Exception as exc:
                    if attempts <= self.retries:
                        reporter.job_retry(spec, attempts, repr(exc))
                        continue
                    reporter.job_done(spec, STATUS_FAILED, attempts=attempts,
                                      duration_s=time.monotonic() - started,
                                      error=repr(exc))
                    break
                self._record(spec, result, digests, store, reporter,
                             results, attempts,
                             time.monotonic() - started)
                break

    def _run_pool(self, pending, trace_paths, digests, store, reporter,
                  results) -> None:
        attempts: Dict[str, int] = {digests[spec]: 0 for spec in pending}
        remaining = list(pending)
        while remaining:
            batch, remaining = remaining, []
            workers = min(self.jobs, len(batch))
            # Aggregate wall budget for the round: each worker slot gets the
            # per-job timeout for every job it may serve.
            budget = self.job_timeout_s * math.ceil(len(batch) / workers)
            started = {}
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {}
                for spec in batch:
                    started[digests[spec]] = time.monotonic()
                    futures[pool.submit(self._worker, spec,
                                        trace_paths[spec.trace_id])] = spec
                timed_out = False
                try:
                    for future in as_completed(futures, timeout=budget):
                        spec = futures.pop(future)
                        digest = digests[spec]
                        attempts[digest] += 1
                        duration = time.monotonic() - started[digest]
                        try:
                            result = future.result()
                        except Exception as exc:
                            if attempts[digest] <= self.retries:
                                reporter.job_retry(spec, attempts[digest],
                                                   repr(exc))
                                remaining.append(spec)
                            else:
                                reporter.job_done(
                                    spec, STATUS_FAILED,
                                    attempts=attempts[digest],
                                    duration_s=duration, error=repr(exc))
                        else:
                            self._record(spec, result, digests, store,
                                         reporter, results,
                                         attempts[digest], duration)
                except FutureTimeout:
                    timed_out = True
                except KeyboardInterrupt:
                    # Ctrl-C mid-round: in-flight cells are abandoned (they
                    # can re-run on resume).  Force-stop the round's worker
                    # processes before the executor's final join — without
                    # this, the ``with`` block's shutdown(wait=True) hangs
                    # on busy workers and a second Ctrl-C is required.
                    for proc in list((getattr(pool, "_processes", None)
                                      or {}).values()):
                        proc.terminate()
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise
                if timed_out:
                    # Tear the round down; unfinished jobs burn one attempt.
                    # A hung worker would otherwise block the executor's
                    # final join forever, so force-stop the round's
                    # processes before shutting the pool down.
                    for proc in list((getattr(pool, "_processes", None)
                                      or {}).values()):
                        proc.terminate()
                    pool.shutdown(wait=False, cancel_futures=True)
                    for future, spec in futures.items():
                        digest = digests[spec]
                        attempts[digest] += 1
                        duration = time.monotonic() - started[digest]
                        err = (f"timeout after {self.job_timeout_s:.0f}s/job "
                               f"round budget")
                        if attempts[digest] <= self.retries:
                            reporter.job_retry(spec, attempts[digest], err)
                            remaining.append(spec)
                        else:
                            reporter.job_done(spec, STATUS_FAILED,
                                              attempts=attempts[digest],
                                              duration_s=duration,
                                              error=err)

    def _record(self, spec, result, digests, store, reporter, results,
                attempts: int, duration: float) -> None:
        store.put(digests[spec], result, job=job_meta(spec))
        if result.obs is not None:
            # Observability reports live beside the result rows (store
            # ``obs/`` directory) — they are diagnostic artifacts, not part
            # of a cell's cache identity, so result digests stay stable
            # whether or not a run carried instrumentation.
            store.put_obs(digests[spec], result.obs)
        results[spec.key] = result
        reporter.job_done(spec, STATUS_SIMULATED, attempts=attempts,
                          duration_s=duration)


def run_sweep(config=None, *,
              jobs: Optional[int] = None,
              store: Optional[Union[str, ResultStore]] = None,
              job_timeout_s: float = 600.0,
              retries: int = 2,
              progress: bool = False,
              reporter: Optional[ProgressReporter] = None):
    """Orchestrated equivalent of :func:`repro.sim.runner.run_grid`.

    Args:
        config: an :class:`~repro.sim.runner.ExperimentConfig` (defaults to
            the full paper grid, identical to ``run_grid()``).
        jobs: worker processes (default ``os.cpu_count()``).
        store: result-store directory (created on demand) or a
            :class:`ResultStore`; ``None`` runs without persistence.
        progress: emit live progress lines to stderr.

    Returns:
        A :data:`~repro.sim.runner.ResultGrid` byte-identical to the serial
        runner's output for the same config.
    """
    from ..sim.runner import ExperimentConfig  # deferred: avoids cycle
    config = config or ExperimentConfig()
    specs = jobs_from_experiment(config)
    if isinstance(store, (str, os.PathLike)):
        store = ResultStore(store)
    if reporter is None:
        reporter = ProgressReporter(len(specs), enabled=progress)
    scheduler = Scheduler(store, jobs=jobs, job_timeout_s=job_timeout_s,
                          retries=retries, reporter=reporter)
    return scheduler.run(specs)
