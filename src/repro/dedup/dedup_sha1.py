"""Dedup_SHA1: traditional inline full deduplication with SHA-1 fingerprints.

The write pipeline is fully serial, which is why the paper's Figure 17
attributes ~80 % of this scheme's write latency to fingerprint computation:

1. compute the 160-bit SHA-1 digest of the incoming line (321 ns exposed),
2. look the digest up (fingerprint cache, then the NVMM-resident index),
3. duplicate -> remap the logical address (no data write, no encryption);
   unique -> encrypt, write, index, remap.

SHA-1 is treated as collision-free (the paper notes hash-trusting schemes
risk data loss on collision; at 2^-80 birthday bounds the simulator will
never see one), so duplicates are *not* verified by a comparison read.
"""

from __future__ import annotations

from typing import Optional

from ..common.config import SystemConfig
from ..common.types import MemoryRequest, WritePathStage
from ..crypto.costs import CryptoCosts, DEFAULT_COSTS
from ..crypto.fingerprints import SHA1Engine
from ..registry import register_scheme
from .base import WriteResult
from .full_dedup import FullDedupScheme


@register_scheme("Dedup_SHA1", evaluation=True, code="1")
class DedupSHA1Scheme(FullDedupScheme):
    """Traditional SHA-1 full deduplication (the paper's Dedup_SHA1)."""

    #: 20 B digest + 5 B packed frame address + 1 B refcount, padded to the
    #: store's slot granularity.
    fingerprint_entry_size = 26

    def __init__(self, config: Optional[SystemConfig] = None,
                 costs: CryptoCosts = DEFAULT_COSTS) -> None:
        super().__init__(config, costs)
        self.engine = SHA1Engine(costs)

    def handle_write(self, request: MemoryRequest) -> WriteResult:
        assert request.data is not None
        self.counters.incr("writes")
        timeline = self._timeline(request)

        # 1. Serial fingerprint computation on the critical path.
        fingerprint = self.engine.fingerprint(request.data)
        self._charge_fingerprint(self.engine.energy_nj)
        timeline.serial(WritePathStage.FINGERPRINT_COMPUTE,
                        self.engine.latency_ns)

        # 2. Index lookup: cache first, NVMM on miss.
        lookup = self.store.lookup(fingerprint, timeline.now)
        timeline.advance_to(WritePathStage.FINGERPRINT_NVMM_LOOKUP,
                            lookup.completion_ns)

        if lookup.found:
            # 3a. Duplicate: remap, eliminating the write entirely.
            assert lookup.frame is not None
            self._commit_duplicate(request.line_index, lookup.frame, timeline)
            return self._finalize_write(request, timeline,
                                        deduplicated=True, wrote_line=False)

        # 3b. Unique: encrypt + write + index + remap, all serial.
        self._commit_unique(request.line_index, fingerprint, request.data,
                            timeline)
        return self._finalize_write(request, timeline,
                                    deduplicated=False, wrote_line=True)
