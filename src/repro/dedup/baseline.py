"""Baseline scheme: counter-mode encryption, no deduplication.

Every dirty write-back is encrypted and written to its own physical frame
(logical addresses map 1:1 onto frames, allocated on first touch).  Reads
fetch and decrypt.  This is the normalization reference for every figure in
the paper's evaluation.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..common.config import SystemConfig
from ..common.types import (
    CACHE_LINE_SIZE,
    MemoryRequest,
    WritePathStage,
)
from ..crypto.costs import CryptoCosts, DEFAULT_COSTS
from ..registry import register_scheme
from .base import DedupScheme, MetadataFootprint, ReadResult, WriteResult


@register_scheme("Baseline", evaluation=True, code="0")
class BaselineScheme(DedupScheme):
    """No deduplication: encrypt + write in place."""

    def __init__(self, config: Optional[SystemConfig] = None,
                 costs: CryptoCosts = DEFAULT_COSTS) -> None:
        super().__init__(config, costs)
        self._frames: Dict[int, int] = {}

    def _frame_for(self, logical_line: int) -> int:
        frame = self._frames.get(logical_line)
        if frame is None:
            frame = self.allocator.allocate()
            self._frames[logical_line] = frame
        return frame

    def handle_write(self, request: MemoryRequest) -> WriteResult:
        assert request.data is not None
        self.counters.incr("writes")
        timeline = self._timeline(request)
        frame = self._frame_for(request.line_index)
        self._encrypt_and_write(frame, request.data, timeline)
        return self._finalize_write(request, timeline,
                                    deduplicated=False, wrote_line=True)

    def handle_read(self, request: MemoryRequest) -> ReadResult:
        self.counters.incr("reads")
        timeline = self._timeline(request)
        frame = self._frames.get(request.line_index)
        if frame is None:
            # Unwritten memory: the access still round-trips to PCM.  Map the
            # logical line onto a frame so repeated reads hit the same bank.
            frame = self._frame_for(request.line_index)
            _, access = self.controller.read(frame, timeline.now)
            timeline.advance_to(WritePathStage.READ_FILL,
                                access.completion_ns)
            return self._finalize_read(request, timeline,
                                       bytes(CACHE_LINE_SIZE))
        plaintext = self._read_and_decrypt(
            frame, timeline,
            read_stage=WritePathStage.READ_FILL,
            decrypt_stage=WritePathStage.DECRYPTION)
        return self._finalize_read(request, timeline, plaintext)

    def metadata_footprint(self) -> MetadataFootprint:
        """Baseline keeps no dedup metadata."""
        return MetadataFootprint(onchip_bytes=0, nvmm_bytes=0)
