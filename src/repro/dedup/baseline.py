"""Baseline scheme: counter-mode encryption, no deduplication.

Every dirty write-back is encrypted and written to its own physical frame
(logical addresses map 1:1 onto frames, allocated on first touch).  Reads
fetch and decrypt.  This is the normalization reference for every figure in
the paper's evaluation.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..common.config import SystemConfig
from ..common.types import (
    CACHE_LINE_SIZE,
    MemoryRequest,
    WritePathStage,
)
from ..crypto.costs import CryptoCosts, DEFAULT_COSTS
from .base import DedupScheme, MetadataFootprint, ReadResult, WriteResult


class BaselineScheme(DedupScheme):
    """No deduplication: encrypt + write in place."""

    name = "Baseline"

    def __init__(self, config: Optional[SystemConfig] = None,
                 costs: CryptoCosts = DEFAULT_COSTS) -> None:
        super().__init__(config, costs)
        self._frames: Dict[int, int] = {}

    def _frame_for(self, logical_line: int) -> int:
        frame = self._frames.get(logical_line)
        if frame is None:
            frame = self.allocator.allocate()
            self._frames[logical_line] = frame
        return frame

    def handle_write(self, request: MemoryRequest) -> WriteResult:
        assert request.data is not None
        self.counters.incr("writes")
        stages: Dict[WritePathStage, float] = {}
        frame = self._frame_for(request.line_index)
        completion = self._encrypt_and_write(frame, request.data,
                                             request.issue_time_ns, stages)
        self._record_write(stages)
        return WriteResult(completion_ns=completion,
                           latency_ns=completion - request.issue_time_ns,
                           deduplicated=False, wrote_line=True, stages=stages)

    def handle_read(self, request: MemoryRequest) -> ReadResult:
        self.counters.incr("reads")
        frame = self._frames.get(request.line_index)
        if frame is None:
            # Unwritten memory: the access still round-trips to PCM.  Map the
            # logical line onto a frame so repeated reads hit the same bank.
            frame = self._frame_for(request.line_index)
            _, access = self.controller.read(frame, request.issue_time_ns)
            return ReadResult(data=bytes(CACHE_LINE_SIZE),
                              completion_ns=access.completion_ns,
                              latency_ns=access.latency_ns)
        plaintext, completion = self._read_and_decrypt(frame,
                                                       request.issue_time_ns)
        return ReadResult(data=plaintext, completion_ns=completion,
                          latency_ns=completion - request.issue_time_ns)

    def metadata_footprint(self) -> MetadataFootprint:
        """Baseline keeps no dedup metadata."""
        return MetadataFootprint(onchip_bytes=0, nvmm_bytes=0)
