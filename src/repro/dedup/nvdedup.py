"""NV-Dedup: two-tier (weak + strong) fingerprinting (related work [53]).

Wang et al.'s NV-Dedup (IEEE TC'18) attacks the same hash-latency problem
as DeWrite and ESD, with a different lever: compute a cheap *weak*
fingerprint (CRC) for every line, and only compute the expensive *strong*
fingerprint (MD5) when the weak one matches something — so unique lines
(the common case in low-duplication phases) never pay the full hash.

This simplified reproduction keeps the essential structure:

1. CRC-32 on every write (40 ns),
2. weak-index lookup (fingerprint cache + NVMM home, like the other
   full-dedup schemes),
3. on a weak hit: MD5 over the incoming line (312 ns), compared against
   the stored strong fingerprint of the candidate frame — a match
   deduplicates *without* a data read (MD5 is trusted, as in the original),
4. weak collisions with strong mismatch are written as unique (and not
   indexed — their weak slot is taken).

Against ESD it demonstrates the paper's point from the other direction:
even a scheme that skips hashing for unique lines still pays hash latency
for every *duplicate* line, plus the full-dedup NVMM lookup costs.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..common.config import SystemConfig
from ..common.types import MemoryRequest, WritePathStage
from ..crypto.costs import CryptoCosts, DEFAULT_COSTS
from ..crypto.fingerprints import CRC32Engine, MD5Engine
from ..registry import register_scheme
from .base import WriteResult
from .full_dedup import FullDedupScheme


@register_scheme("NV-Dedup")
class NVDedupScheme(FullDedupScheme):
    """Simplified NV-Dedup: CRC weak filter + MD5 strong confirmation."""

    #: Weak-index entry: 4 B CRC + 5 B frame + 1 B refcount.
    fingerprint_entry_size = 10
    #: Strong fingerprints stored per frame: 16 B MD5.
    strong_entry_size = 16

    def __init__(self, config: Optional[SystemConfig] = None,
                 costs: CryptoCosts = DEFAULT_COSTS) -> None:
        super().__init__(config, costs)
        self.weak_engine = CRC32Engine(costs)
        self.strong_engine = MD5Engine(costs)
        #: frame -> strong fingerprint of its content.
        self._strong: Dict[int, int] = {}

    def _release_previous(self, logical_line: int) -> None:
        # Also drop the freed frame's strong fingerprint.
        old_frame = self.mapping.current_frame(logical_line)
        super()._release_previous(logical_line)
        if old_frame is not None and not self.allocator.is_allocated(old_frame):
            self._strong.pop(old_frame, None)

    def handle_write(self, request: MemoryRequest) -> WriteResult:
        assert request.data is not None
        self.counters.incr("writes")
        timeline = self._timeline(request)

        # 1. Weak fingerprint on every line (cheap).
        weak = self.weak_engine.fingerprint(request.data)
        self._charge_fingerprint(self.weak_engine.energy_nj)
        timeline.serial(WritePathStage.FINGERPRINT_COMPUTE,
                        self.weak_engine.latency_ns)

        # 2. Weak-index lookup.
        lookup = self.store.lookup(weak, timeline.now)
        timeline.advance_to(WritePathStage.FINGERPRINT_NVMM_LOOKUP,
                            lookup.completion_ns)

        if lookup.found:
            # 3. Weak hit: pay the strong hash, serial.
            assert lookup.frame is not None
            strong = self.strong_engine.fingerprint(request.data)
            self._charge_fingerprint(self.strong_engine.energy_nj)
            timeline.serial(WritePathStage.FINGERPRINT_COMPUTE,
                            self.strong_engine.latency_ns)
            self.counters.incr("strong_hashes")

            if self._strong.get(lookup.frame) == strong:
                self._commit_duplicate(request.line_index, lookup.frame,
                                       timeline)
                return self._finalize_write(request, timeline,
                                            deduplicated=True,
                                            wrote_line=False)
            # Weak collision (same CRC, different content): unique, but the
            # weak slot is occupied -> write without indexing.
            self.counters.incr("weak_collisions")
            self._release_previous(request.line_index)
            frame = self.allocator.allocate()
            self._encrypt_and_write(frame, request.data, timeline)
            self.refcounts.acquire(frame)
            self._strong[frame] = strong
            t2 = self.mapping.update(request.line_index, frame, timeline.now)
            timeline.advance_to(WritePathStage.METADATA, t2)
            return self._finalize_write(request, timeline,
                                        deduplicated=False, wrote_line=True)

        # 3b. Weak miss: definitively unique without any strong hash — the
        # scheme's selling point.
        frame = self._commit_unique(request.line_index, weak, request.data,
                                    timeline)
        self._strong[frame] = self.strong_engine.fingerprint(request.data)
        # The strong fingerprint of a unique line is computed lazily /
        # off the critical path in NV-Dedup (it is only needed when a
        # later weak hit compares against this frame): charge its energy,
        # hide its latency.
        self._charge_fingerprint(self.strong_engine.energy_nj)
        return self._finalize_write(request, timeline,
                                    deduplicated=False, wrote_line=True)

    def metadata_footprint(self):
        from .base import MetadataFootprint
        base = super().metadata_footprint()
        strong_bytes = len(self._strong) * self.strong_entry_size
        return MetadataFootprint(onchip_bytes=base.onchip_bytes,
                                 nvmm_bytes=base.nvmm_bytes + strong_bytes)
