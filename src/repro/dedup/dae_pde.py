"""The rejected alternatives: DaE and PDE (Section II-C).

The paper motivates ESD by eliminating the two straightforward ways of
combining deduplication with encryption:

* **DaE — Deduplication after Encryption.**  Fingerprint the *ciphertext*.
  Under counter-mode encryption the pad depends on (address, write count),
  so identical plaintexts encrypt to unrelated ciphertexts; the "strong
  diffusion effect" destroys all duplicate structure and DaE's dedup rate
  collapses to ~0 (only an exact pad+plaintext coincidence could match).
  This scheme exists to *demonstrate* that collapse.

* **PDE — Parallelism of Deduplication and Encryption.**  Compute the
  fingerprint and the encryption of *every* line concurrently.  The
  fingerprint latency of unique lines hides under the encryption, but the
  energy of both operations is burned on every line — including the
  duplicates whose encryption is discarded.  The paper rejects PDE on
  exactly this energy argument.

Both reuse the full-dedup machinery so their only differences from
Dedup_SHA1 are the pipeline orderings under study.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..common.config import SystemConfig
from ..common.types import MemoryRequest, WritePathStage
from ..crypto.costs import CryptoCosts, DEFAULT_COSTS
from ..crypto.fingerprints import SHA1Engine
from ..nvmm.energy import EnergyCategory
from .base import WriteResult
from .full_dedup import FullDedupScheme


class DaEScheme(FullDedupScheme):
    """Deduplication-after-Encryption: fingerprint the ciphertext.

    Retained for the motivation experiment only — its dedup rate against
    counter-mode ciphertext is ~0, reproducing the paper's argument that
    DaE "is not applicable" to encrypted NVMM.
    """

    name = "DaE"
    fingerprint_entry_size = 26

    def __init__(self, config: Optional[SystemConfig] = None,
                 costs: CryptoCosts = DEFAULT_COSTS) -> None:
        super().__init__(config, costs)
        self.engine = SHA1Engine(costs)

    def handle_write(self, request: MemoryRequest) -> WriteResult:
        assert request.data is not None
        self.counters.incr("writes")
        stages: Dict[WritePathStage, float] = {}
        t = request.issue_time_ns

        # 1. Encrypt first (DaE's defining order).  The frame must be
        # allocated before encryption because the pad binds to it.
        self._release_previous(request.line_index)
        frame = self.allocator.allocate()
        encrypted = self.crypto.encrypt(request.data, frame)
        self._integrity_update(frame)
        self.crypto_energy.charge(EnergyCategory.ENCRYPTION,
                                  self.crypto.encrypt_energy_nj)
        stages[WritePathStage.ENCRYPTION] = self.crypto.encrypt_latency_ns
        t += self.crypto.encrypt_latency_ns

        # 2. Fingerprint the *ciphertext*.
        fingerprint = self.engine.fingerprint(encrypted.ciphertext)
        self._charge_fingerprint(self.engine.latency_ns, self.engine.energy_nj)
        stages[WritePathStage.FINGERPRINT_COMPUTE] = self.engine.latency_ns
        t += self.engine.latency_ns

        # 3. Lookup.  Diffusion makes a hit essentially impossible, but the
        # pipeline is honest: a hit would dedup.
        lookup = self.store.lookup(fingerprint, t)
        stages[WritePathStage.FINGERPRINT_NVMM_LOOKUP] = (
            lookup.completion_ns - t)
        t = lookup.completion_ns

        if lookup.found:
            # The allocated frame is not needed after all.
            self.allocator.free(frame)
            assert lookup.frame is not None
            completion = self._commit_duplicate(request.line_index,
                                                lookup.frame, t, stages)
            self._record_write(stages)
            return WriteResult(completion_ns=completion,
                               latency_ns=completion - request.issue_time_ns,
                               deduplicated=True, wrote_line=False,
                               stages=stages)

        # 4. Unique: the ciphertext is already made; write it out.
        result = self.controller.write(frame, encrypted.ciphertext, t)
        stages[WritePathStage.WRITE_UNIQUE] = result.latency_ns
        t = result.completion_ns
        self.refcounts.acquire(frame)
        self._frame_fingerprint[frame] = fingerprint
        self.store.insert(fingerprint, frame, t)
        t2 = self.mapping.update(request.line_index, frame, t)
        stages[WritePathStage.METADATA] = t2 - t
        self._record_write(stages)
        return WriteResult(completion_ns=t2,
                           latency_ns=t2 - request.issue_time_ns,
                           deduplicated=False, wrote_line=True, stages=stages)


class PDEScheme(FullDedupScheme):
    """Parallelism of Deduplication and Encryption.

    Fingerprint (SHA-1, on the plaintext) and encryption start together on
    *every* write.  Unique lines hide the hash latency under the (shorter)
    encryption plus the lookup; duplicate lines throw the finished
    encryption away.  Latency approaches Dedup_SHA1-with-hidden-hash;
    energy pays both operations on all lines.
    """

    name = "PDE"
    fingerprint_entry_size = 26

    def __init__(self, config: Optional[SystemConfig] = None,
                 costs: CryptoCosts = DEFAULT_COSTS) -> None:
        super().__init__(config, costs)
        self.engine = SHA1Engine(costs)

    def handle_write(self, request: MemoryRequest) -> WriteResult:
        assert request.data is not None
        self.counters.incr("writes")
        stages: Dict[WritePathStage, float] = {}
        t0 = request.issue_time_ns

        # Fingerprint and encryption in parallel; both energies are spent
        # unconditionally (PDE's defining property).
        fingerprint = self.engine.fingerprint(request.data)
        self._charge_fingerprint(0.0, self.engine.energy_nj)
        self.crypto_energy.charge(EnergyCategory.ENCRYPTION,
                                  self.crypto.encrypt_energy_nj)
        hash_done = t0 + self.engine.latency_ns
        encrypt_done = t0 + self.crypto.encrypt_latency_ns

        # The lookup needs the fingerprint, so the hash time beyond the
        # (overlapped) encryption is exposed on the commit path.
        lookup = self.store.lookup(fingerprint, hash_done)
        stages[WritePathStage.FINGERPRINT_COMPUTE] = max(
            0.0, hash_done - encrypt_done)
        stages[WritePathStage.FINGERPRINT_NVMM_LOOKUP] = (
            lookup.completion_ns - hash_done)
        t = lookup.completion_ns

        if lookup.found:
            # Duplicate: the parallel encryption was wasted energy.
            self.counters.incr("wasted_encryptions")
            assert lookup.frame is not None
            completion = self._commit_duplicate(request.line_index,
                                                lookup.frame, t, stages)
            self._record_write(stages)
            return WriteResult(completion_ns=completion,
                               latency_ns=completion - request.issue_time_ns,
                               deduplicated=True, wrote_line=False,
                               stages=stages)

        # Unique: commit once both the lookup and the encryption are done.
        t_commit = max(t, encrypt_done)
        _frame, completion = self._commit_unique(
            request.line_index, fingerprint, request.data, t_commit, stages,
            pre_encrypted_completion=t_commit)
        self._record_write(stages)
        return WriteResult(completion_ns=completion,
                           latency_ns=completion - request.issue_time_ns,
                           deduplicated=False, wrote_line=True, stages=stages)
