"""The rejected alternatives: DaE and PDE (Section II-C).

The paper motivates ESD by eliminating the two straightforward ways of
combining deduplication with encryption:

* **DaE — Deduplication after Encryption.**  Fingerprint the *ciphertext*.
  Under counter-mode encryption the pad depends on (address, write count),
  so identical plaintexts encrypt to unrelated ciphertexts; the "strong
  diffusion effect" destroys all duplicate structure and DaE's dedup rate
  collapses to ~0 (only an exact pad+plaintext coincidence could match).
  This scheme exists to *demonstrate* that collapse.

* **PDE — Parallelism of Deduplication and Encryption.**  Compute the
  fingerprint and the encryption of *every* line concurrently.  The
  fingerprint latency of unique lines hides under the encryption, but the
  energy of both operations is burned on every line — including the
  duplicates whose encryption is discarded.  The paper rejects PDE on
  exactly this energy argument.

Both reuse the full-dedup machinery so their only differences from
Dedup_SHA1 are the pipeline orderings under study.
"""

from __future__ import annotations

from typing import Optional

from ..common.config import SystemConfig
from ..common.types import MemoryRequest, WritePathStage
from ..crypto.costs import CryptoCosts, DEFAULT_COSTS
from ..crypto.fingerprints import SHA1Engine
from ..nvmm.energy import EnergyCategory
from ..registry import register_scheme
from .base import WriteResult
from .full_dedup import FullDedupScheme


@register_scheme("DaE")
class DaEScheme(FullDedupScheme):
    """Deduplication-after-Encryption: fingerprint the ciphertext.

    Retained for the motivation experiment only — its dedup rate against
    counter-mode ciphertext is ~0, reproducing the paper's argument that
    DaE "is not applicable" to encrypted NVMM.
    """

    fingerprint_entry_size = 26

    def __init__(self, config: Optional[SystemConfig] = None,
                 costs: CryptoCosts = DEFAULT_COSTS) -> None:
        super().__init__(config, costs)
        self.engine = SHA1Engine(costs)

    def vec_prime_engines(self) -> tuple:
        # DaE digests the *ciphertext*, which depends on per-frame pads
        # unknown before resolution — plaintext priming would only pollute
        # the sha1 memo cache with keys no lookup ever uses.
        return ()

    def handle_write(self, request: MemoryRequest) -> WriteResult:
        assert request.data is not None
        self.counters.incr("writes")
        timeline = self._timeline(request)

        # 1. Encrypt first (DaE's defining order).  The frame must be
        # allocated before encryption because the pad binds to it.
        self._release_previous(request.line_index)
        frame = self.allocator.allocate()
        encrypted = self.crypto.encrypt(request.data, frame)
        self._integrity_update(frame)
        self.crypto_energy.charge(EnergyCategory.ENCRYPTION,
                                  self.crypto.encrypt_energy_nj)
        timeline.serial(WritePathStage.ENCRYPTION,
                        self.crypto.encrypt_latency_ns)

        # 2. Fingerprint the *ciphertext*.
        fingerprint = self.engine.fingerprint(encrypted.ciphertext)
        self._charge_fingerprint(self.engine.energy_nj)
        timeline.serial(WritePathStage.FINGERPRINT_COMPUTE,
                        self.engine.latency_ns)

        # 3. Lookup.  Diffusion makes a hit essentially impossible, but the
        # pipeline is honest: a hit would dedup.
        lookup = self.store.lookup(fingerprint, timeline.now)
        timeline.advance_to(WritePathStage.FINGERPRINT_NVMM_LOOKUP,
                            lookup.completion_ns)

        if lookup.found:
            # The allocated frame is not needed after all.
            self.allocator.free(frame)
            assert lookup.frame is not None
            self._commit_duplicate(request.line_index, lookup.frame, timeline)
            return self._finalize_write(request, timeline,
                                        deduplicated=True, wrote_line=False)

        # 4. Unique: the ciphertext is already made; write it out.
        result = self.controller.write(frame, encrypted.ciphertext,
                                       timeline.now)
        timeline.advance_to(WritePathStage.WRITE_UNIQUE, result.completion_ns)
        self.refcounts.acquire(frame)
        self._frame_fingerprint[frame] = fingerprint
        self.store.insert(fingerprint, frame, timeline.now)
        t2 = self.mapping.update(request.line_index, frame, timeline.now)
        timeline.advance_to(WritePathStage.METADATA, t2)
        return self._finalize_write(request, timeline,
                                    deduplicated=False, wrote_line=True)


@register_scheme("PDE")
class PDEScheme(FullDedupScheme):
    """Parallelism of Deduplication and Encryption.

    Fingerprint (SHA-1, on the plaintext) and encryption start together on
    *every* write.  Unique lines hide the hash latency under the (shorter)
    encryption plus the lookup; duplicate lines throw the finished
    encryption away.  Latency approaches Dedup_SHA1-with-hidden-hash;
    energy pays both operations on all lines.
    """

    fingerprint_entry_size = 26

    def __init__(self, config: Optional[SystemConfig] = None,
                 costs: CryptoCosts = DEFAULT_COSTS) -> None:
        super().__init__(config, costs)
        self.engine = SHA1Engine(costs)

    def handle_write(self, request: MemoryRequest) -> WriteResult:
        assert request.data is not None
        self.counters.incr("writes")
        timeline = self._timeline(request)

        # Fingerprint and encryption start together as concurrent branches;
        # both energies are spent unconditionally (PDE's defining property).
        fingerprint = self.engine.fingerprint(request.data)
        self._charge_fingerprint(self.engine.energy_nj)
        self.crypto_energy.charge(EnergyCategory.ENCRYPTION,
                                  self.crypto.encrypt_energy_nj)
        enc_leg = timeline.overlap_with(WritePathStage.ENCRYPTION,
                                        self.crypto.encrypt_latency_ns)
        fp_leg = timeline.branch()
        fp_leg.serial(WritePathStage.FINGERPRINT_COMPUTE,
                      self.engine.latency_ns)

        # The lookup needs the fingerprint, so it starts when the hash ends.
        lookup = self.store.lookup(fingerprint, fp_leg.now)
        fp_leg.advance_to(WritePathStage.FINGERPRINT_NVMM_LOOKUP,
                          lookup.completion_ns)

        if lookup.found:
            # Duplicate: the parallel encryption was wasted energy; its
            # branch is never joined, so the discarded work costs no time.
            self.counters.incr("wasted_encryptions")
            assert lookup.frame is not None
            timeline.join(fp_leg)
            self._commit_duplicate(request.line_index, lookup.frame, timeline)
            return self._finalize_write(request, timeline,
                                        deduplicated=True, wrote_line=False)

        # Unique: commit once both the encryption and the fingerprint leg
        # (hash + confirming lookup) are done.
        timeline.join(enc_leg)
        timeline.join(fp_leg)
        self._commit_unique(request.line_index, fingerprint, request.data,
                            timeline, pre_encrypted=True)
        return self._finalize_write(request, timeline,
                                    deduplicated=False, wrote_line=True)
