"""Full-deduplication fingerprint index: cache front + NVMM-resident store.

Dedup_SHA1 and DeWrite perform *full* deduplication: every unique line's
fingerprint is indexed, the whole index lives in NVMM, and a small
memory-controller cache fronts it.  The consequence the paper hammers on
(Figure 5) is the **fingerprint NVMM_lookup bottleneck**: when a write's
fingerprint misses the cache, the scheme must consult the NVMM-resident
index *before it can declare the line unique* — one PCM metadata read on
the critical write path, whether or not the fingerprint exists.

The store tracks which duplicates were identified by the cache versus by
the NVMM index, which is exactly the split Figure 5 plots.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..nvmm.controller import MemoryController


class LookupWhere(enum.Enum):
    """Where a fingerprint lookup was resolved."""

    CACHE = "cache"
    NVMM = "nvmm"
    ABSENT = "absent"


@dataclass(frozen=True)
class LookupResult:
    """Outcome of one fingerprint lookup."""

    frame: Optional[int]
    completion_ns: float
    where: LookupWhere

    @property
    def found(self) -> bool:
        return self.frame is not None


class FullFingerprintStore:
    """fingerprint -> physical frame, with an LRU cache over an NVMM home.

    Args:
        cache_bytes: on-chip fingerprint cache capacity.
        entry_size: bytes per index entry (fingerprint + frame + refcount);
            20 B SHA-1 digests make Dedup_SHA1 entries much fatter than
            DeWrite's packed (16 B + 3 bit) entries.
        controller: charged for the NVMM metadata traffic.
        probe_latency_ns: on-chip probe latency.
    """

    def __init__(self, cache_bytes: int, entry_size: int,
                 controller: MemoryController,
                 probe_latency_ns: float = 1.0) -> None:
        if cache_bytes <= 0 or entry_size <= 0:
            raise ValueError("cache_bytes and entry_size must be positive")
        self.entry_size = entry_size
        self.capacity = max(1, cache_bytes // entry_size)
        self.probe_latency_ns = probe_latency_ns
        self._controller = controller
        self._cache: "OrderedDict[int, int]" = OrderedDict()
        self._home: Dict[int, int] = {}
        # Figure 5 counters.
        self.cache_hits = 0
        self.nvmm_hits = 0
        self.absent_lookups = 0
        self.nvmm_lookup_ops = 0
        # Index insertions coalesce into 64-byte metadata-line writes.
        self._entries_per_line = max(1, 64 // entry_size)
        self._pending_inserts = 0
        self.nvmm_insert_writes = 0

    def _install(self, fingerprint: int, frame: int) -> None:
        if fingerprint in self._cache:
            self._cache.move_to_end(fingerprint)
            self._cache[fingerprint] = frame
            return
        while len(self._cache) >= self.capacity:
            self._cache.popitem(last=False)
        self._cache[fingerprint] = frame

    def lookup(self, fingerprint: int, at_time_ns: float) -> LookupResult:
        """Resolve a fingerprint, charging an NVMM read on cache miss.

        The NVMM read happens on *every* cache miss — proving absence
        requires consulting the full index, which is the cost full
        deduplication cannot avoid.
        """
        t = at_time_ns + self.probe_latency_ns
        frame = self._cache.get(fingerprint)
        if frame is not None:
            self._cache.move_to_end(fingerprint)
            self.cache_hits += 1
            return LookupResult(frame=frame, completion_ns=t,
                                where=LookupWhere.CACHE)
        self.nvmm_lookup_ops += 1
        t = self._controller.metadata_read(fingerprint, t).completion_ns
        frame = self._home.get(fingerprint)
        if frame is not None:
            self.nvmm_hits += 1
            self._install(fingerprint, frame)
            return LookupResult(frame=frame, completion_ns=t,
                                where=LookupWhere.NVMM)
        self.absent_lookups += 1
        return LookupResult(frame=None, completion_ns=t,
                            where=LookupWhere.ABSENT)

    def insert(self, fingerprint: int, frame: int,
               at_time_ns: float) -> float:
        """Index a new unique line.

        Home-copy writes coalesce: one PCM metadata write lands per full
        64-byte metadata line's worth of new entries (append-style index
        growth combines well in the controller's write buffer).
        """
        self._home[fingerprint] = frame
        self._install(fingerprint, frame)
        self._pending_inserts += 1
        if self._pending_inserts >= self._entries_per_line:
            self._pending_inserts = 0
            self.nvmm_insert_writes += 1
            return self._controller.metadata_write(fingerprint,
                                                   at_time_ns).completion_ns
        return at_time_ns

    def remove(self, fingerprint: int) -> None:
        """Drop an entry (its frame was freed).  Functional only —
        invalidation piggybacks on the frame-free path."""
        self._home.pop(fingerprint, None)
        self._cache.pop(fingerprint, None)

    def contains(self, fingerprint: int) -> bool:
        return fingerprint in self._cache or fingerprint in self._home

    def contains_batch(self, fingerprints) -> "np.ndarray":
        """Vectorized membership probe over a batch of fingerprints.

        Pure observation: touches no LRU recency, no Figure 5 counters, and
        charges no NVMM traffic — by design, so the vectorized engine (and
        analysis code) can ask "which of this epoch's fingerprints are
        already indexed?" without perturbing simulated state.  Timed
        resolution still goes through :meth:`lookup` line by line.

        Returns:
            A boolean numpy array aligned with ``fingerprints``.
        """
        import numpy as np
        cache, home = self._cache, self._home
        return np.fromiter(
            ((fp in cache or fp in home) for fp in fingerprints),
            dtype=bool, count=len(fingerprints))

    @property
    def entry_count(self) -> int:
        return len(self._home)

    def nvmm_bytes(self) -> int:
        """NVMM-resident index footprint."""
        return len(self._home) * self.entry_size

    def onchip_bytes(self) -> int:
        return len(self._cache) * self.entry_size

    def duplicate_filter_split(self) -> Tuple[int, int]:
        """(duplicates filtered by cache, filtered by NVMM index) — Fig. 5."""
        return self.cache_hits, self.nvmm_hits
