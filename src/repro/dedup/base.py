"""Scheme interface shared by Baseline, Dedup_SHA1, DeWrite, and ESD.

Every scheme consumes :class:`~repro.common.types.MemoryRequest` objects and
returns per-request timing results; the simulation engine treats all four
identically, which is what lets every benchmark sweep schemes uniformly.

A scheme owns:

* a :class:`~repro.nvmm.controller.MemoryController` (PCM timing/energy),
* a :class:`~repro.crypto.counter_mode.CounterModeEngine` (encryption),
* an :class:`~repro.nvmm.energy.EnergyAccount` for crypto/fingerprint energy
  (PCM energy is accounted inside the controller),
* a :class:`~repro.common.types.LatencyBreakdown` accumulating the Figure 17
  write-path profile,
* counters for dedup effectiveness (duplicates eliminated, writes issued).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..common.config import SystemConfig
from ..common.stats import Counter
from ..common.types import (
    LatencyBreakdown,
    MemoryRequest,
    WritePathStage,
)
from ..crypto.costs import CryptoCosts, DEFAULT_COSTS
from ..crypto.counter_mode import CounterModeEngine
from ..nvmm.allocator import FrameAllocator
from ..nvmm.controller import MemoryController
from ..nvmm.energy import EnergyAccount, EnergyCategory


@dataclass(frozen=True)
class WriteResult:
    """Timing outcome of one write handled by a scheme."""

    completion_ns: float
    latency_ns: float
    deduplicated: bool
    #: True when a data line was physically written to PCM.
    wrote_line: bool
    #: Per-stage latency of this write (feeds Figure 17).
    stages: Dict[WritePathStage, float] = field(default_factory=dict)


@dataclass(frozen=True)
class ReadResult:
    """Timing + data outcome of one read handled by a scheme."""

    data: bytes
    completion_ns: float
    latency_ns: float


@dataclass(frozen=True)
class MetadataFootprint:
    """Measured metadata space consumption of a scheme (Figure 19)."""

    onchip_bytes: int
    nvmm_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.onchip_bytes + self.nvmm_bytes


class DedupScheme(abc.ABC):
    """Base class wiring the shared substrates together."""

    #: Scheme identifier used in results tables ("Baseline", "Dedup_SHA1",
    #: "DeWrite", "ESD").
    name: str = "abstract"

    def __init__(self, config: Optional[SystemConfig] = None,
                 costs: CryptoCosts = DEFAULT_COSTS) -> None:
        self.config = config or SystemConfig()
        self.costs = costs
        self.controller = MemoryController(self.config.pcm)
        self.allocator = FrameAllocator(self.config.pcm.num_lines)
        self.crypto = CounterModeEngine(costs=costs)
        self.crypto_energy = EnergyAccount()
        self.breakdown = LatencyBreakdown()
        self.counters = Counter()
        #: Optional counter-integrity tree (Section III-E trust model).
        self.integrity_tree = None
        if self.config.protect_counters:
            from ..crypto.integrity import CounterIntegrityTree
            self.integrity_tree = CounterIntegrityTree(
                self.crypto.counters, self.config.pcm.num_lines)

    def _integrity_update(self, frame: int) -> float:
        """Maintain the counter tree after a write; returns its latency."""
        if self.integrity_tree is None:
            return 0.0
        self.integrity_tree.update(frame)
        return (self.integrity_tree.depth
                * self.config.integrity_hash_latency_ns)

    def _integrity_verify(self, frame: int) -> float:
        """Verify the counter path before trusting a read's pad."""
        if self.integrity_tree is None:
            return 0.0
        self.integrity_tree.verify(frame)
        return (self.integrity_tree.depth
                * self.config.integrity_hash_latency_ns)

    # ------------------------------------------------------------------
    # Abstract request handlers
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def handle_write(self, request: MemoryRequest) -> WriteResult:
        """Process one write-back arriving at the memory controller."""

    @abc.abstractmethod
    def handle_read(self, request: MemoryRequest) -> ReadResult:
        """Process one LLC miss fill; must return the current plaintext."""

    @abc.abstractmethod
    def metadata_footprint(self) -> MetadataFootprint:
        """Current measured metadata space consumption."""

    # ------------------------------------------------------------------
    # Shared building blocks
    # ------------------------------------------------------------------

    def _charge_fingerprint(self, latency_ns: float, energy_nj: float) -> None:
        self.crypto_energy.charge(EnergyCategory.FINGERPRINT, energy_nj)
        self.breakdown.add(WritePathStage.FINGERPRINT_COMPUTE, latency_ns)

    def _encrypt_and_write(self, frame: int, plaintext: bytes,
                           at_time_ns: float,
                           stages: Dict[WritePathStage, float]) -> float:
        """Encrypt a line and write its ciphertext to PCM; returns completion."""
        enc = self.crypto.encrypt(plaintext, frame)
        self.crypto_energy.charge(EnergyCategory.ENCRYPTION,
                                  self.crypto.encrypt_energy_nj)
        t = at_time_ns + self.crypto.encrypt_latency_ns
        stages[WritePathStage.ENCRYPTION] = stages.get(
            WritePathStage.ENCRYPTION, 0.0) + self.crypto.encrypt_latency_ns
        tree_ns = self._integrity_update(frame)
        if tree_ns:
            stages[WritePathStage.METADATA] = stages.get(
                WritePathStage.METADATA, 0.0) + tree_ns
            t += tree_ns
        result = self.controller.write(frame, enc.ciphertext, t)
        stages[WritePathStage.WRITE_UNIQUE] = stages.get(
            WritePathStage.WRITE_UNIQUE, 0.0) + result.latency_ns
        return result.completion_ns

    def _read_and_decrypt(self, frame: int, at_time_ns: float) -> "tuple[bytes, float]":
        """Read a frame and decrypt it; returns (plaintext, completion).

        With ``protect_counters`` enabled, the counter's integrity path is
        verified (overlapping the PCM read; only the excess is exposed).
        """
        ciphertext, access = self.controller.read(frame, at_time_ns)
        tree_ns = self._integrity_verify(frame)
        self.crypto_energy.charge(EnergyCategory.DECRYPTION,
                                  self.crypto.decrypt_energy_nj)
        plaintext = self.crypto.decrypt_at(ciphertext, frame)
        completion = access.completion_ns + self.crypto.decrypt_latency_ns
        # The tree walk overlaps the (slower) PCM array access.
        exposed_tree = max(0.0, at_time_ns + tree_ns - access.completion_ns)
        return plaintext, completion + exposed_tree

    def _charge_compare(self) -> float:
        """Account one byte-by-byte line comparison; returns its latency."""
        self.crypto_energy.charge(EnergyCategory.COMPARISON,
                                  self.costs.compare.energy_nj)
        return self.costs.compare.latency_ns

    def _record_write(self, stages: Dict[WritePathStage, float]) -> None:
        """Fold one write's stage latencies into the running breakdown."""
        for stage, latency in stages.items():
            self.breakdown.add(stage, latency)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def total_energy(self) -> EnergyAccount:
        """PCM energy (controller) merged with crypto/fingerprint energy."""
        return self.controller.energy.merged_with(self.crypto_energy)

    @property
    def pcm_data_writes(self) -> int:
        return self.controller.data_writes

    @property
    def duplicates_eliminated(self) -> int:
        return self.counters.get("dedup_hits")

    @property
    def writes_handled(self) -> int:
        return self.counters.get("writes")

    def write_reduction(self) -> float:
        """Fraction of handled writes that never reached PCM as data writes."""
        handled = self.writes_handled
        if handled == 0:
            return 0.0
        return 1.0 - (self.controller.data_writes / handled)
