"""Scheme interface shared by Baseline, Dedup_SHA1, DeWrite, and ESD.

Every scheme consumes :class:`~repro.common.types.MemoryRequest` objects and
returns per-request timing results; the simulation engine treats all four
identically, which is what lets every benchmark sweep schemes uniformly.

A scheme owns:

* a :class:`~repro.nvmm.controller.MemoryController` (PCM timing/energy),
* a :class:`~repro.crypto.counter_mode.CounterModeEngine` (encryption),
* an :class:`~repro.nvmm.energy.EnergyAccount` for crypto/fingerprint energy
  (PCM energy is accounted inside the controller),
* a :class:`~repro.common.types.LatencyBreakdown` accumulating the Figure 17
  write-path profile (and a second one for the read path),
* counters for dedup effectiveness (duplicates eliminated, writes issued).

Request handlers declare their pipeline on a
:class:`~repro.common.timeline.StageTimeline` and finish through
:meth:`DedupScheme._finalize_write` / :meth:`DedupScheme._finalize_read`,
the single point where a request's sealed timeline folds into the scheme's
running breakdowns.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from ..common.config import SystemConfig
from ..common.stats import Counter
from ..common.timeline import StageTimeline
from ..common.types import (
    LatencyBreakdown,
    MemoryRequest,
    WritePathStage,
)
from ..crypto.costs import CryptoCosts, DEFAULT_COSTS
from ..crypto.counter_mode import CounterModeEngine
from ..nvmm.allocator import FrameAllocator
from ..nvmm.controller import MemoryController
from ..nvmm.energy import EnergyAccount, EnergyCategory

if TYPE_CHECKING:
    from ..crypto.integrity import CounterIntegrityTree


@dataclass(frozen=True)
class WriteResult:
    """Timing outcome of one write handled by a scheme."""

    completion_ns: float
    latency_ns: float
    deduplicated: bool
    #: True when a data line was physically written to PCM.
    wrote_line: bool
    #: The sealed per-request timeline (critical path + stage exposures).
    timeline: Optional[StageTimeline] = None

    @property
    def stages(self) -> Dict[WritePathStage, float]:
        """Per-stage exposed latency of this write (feeds Figure 17)."""
        if self.timeline is None:
            return {}
        return self.timeline.exposures


@dataclass(frozen=True)
class ReadResult:
    """Timing + data outcome of one read handled by a scheme."""

    data: bytes
    completion_ns: float
    latency_ns: float
    #: The sealed per-request timeline (critical path + stage exposures).
    timeline: Optional[StageTimeline] = None


@dataclass(frozen=True)
class MetadataFootprint:
    """Measured metadata space consumption of a scheme (Figure 19)."""

    onchip_bytes: int
    nvmm_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.onchip_bytes + self.nvmm_bytes


class DedupScheme(abc.ABC):
    """Base class wiring the shared substrates together."""

    #: Scheme identifier used in results tables ("Baseline", "Dedup_SHA1",
    #: "DeWrite", "ESD").  Set by the ``@register_scheme`` decorator.
    name: str = "abstract"

    def __init__(self, config: Optional[SystemConfig] = None,
                 costs: CryptoCosts = DEFAULT_COSTS) -> None:
        self.config = config or SystemConfig()
        self.costs = costs
        self.controller = MemoryController(self.config.pcm)
        self.allocator = FrameAllocator(self.config.pcm.num_lines)
        self.crypto = CounterModeEngine(costs=costs)
        self.crypto_energy = EnergyAccount()
        self.breakdown = LatencyBreakdown()
        self.read_breakdown = LatencyBreakdown()
        self.counters = Counter()
        #: Optional counter-integrity tree (Section III-E trust model).
        self.integrity_tree: Optional["CounterIntegrityTree"] = None
        if self.config.protect_counters:
            from ..crypto.integrity import CounterIntegrityTree
            self.integrity_tree = CounterIntegrityTree(
                self.crypto.counters, self.config.pcm.num_lines)

    def _integrity_update(self, frame: int) -> float:
        """Maintain the counter tree after a write; returns its latency."""
        if self.integrity_tree is None:
            return 0.0
        self.integrity_tree.update(frame)
        return (self.integrity_tree.depth
                * self.config.integrity_hash_latency_ns)

    def _integrity_verify(self, frame: int) -> float:
        """Verify the counter path before trusting a read's pad."""
        if self.integrity_tree is None:
            return 0.0
        self.integrity_tree.verify(frame)
        return (self.integrity_tree.depth
                * self.config.integrity_hash_latency_ns)

    # ------------------------------------------------------------------
    # Abstract request handlers
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def handle_write(self, request: MemoryRequest) -> WriteResult:
        """Process one write-back arriving at the memory controller."""

    @abc.abstractmethod
    def handle_read(self, request: MemoryRequest) -> ReadResult:
        """Process one LLC miss fill; must return the current plaintext."""

    @abc.abstractmethod
    def metadata_footprint(self) -> MetadataFootprint:
        """Current measured metadata space consumption."""

    # ------------------------------------------------------------------
    # Timeline lifecycle
    # ------------------------------------------------------------------

    def _timeline(self, request: MemoryRequest) -> StageTimeline:
        """Open a timeline at the request's arrival at the controller."""
        return StageTimeline(request.issue_time_ns)

    def _finalize_write(self, request: MemoryRequest,
                        timeline: StageTimeline, *,
                        deduplicated: bool,
                        wrote_line: bool) -> WriteResult:
        """Seal a write's timeline and fold it into the running breakdown.

        The single instrumentation point of the write path: sealing checks
        stage conservation, folding accumulates the Figure 17 profile, and
        the reported latency is the timeline's critical path by
        construction.
        """
        timeline.seal()
        timeline.fold_into(self.breakdown)
        return WriteResult(
            completion_ns=timeline.now,
            latency_ns=timeline.now - request.issue_time_ns,
            deduplicated=deduplicated,
            wrote_line=wrote_line,
            timeline=timeline,
        )

    def _finalize_read(self, request: MemoryRequest,
                       timeline: StageTimeline,
                       data: bytes) -> ReadResult:
        """Seal a read's timeline and fold it into ``read_breakdown``."""
        timeline.seal()
        timeline.fold_into(self.read_breakdown)
        return ReadResult(
            data=data,
            completion_ns=timeline.now,
            latency_ns=timeline.now - request.issue_time_ns,
            timeline=timeline,
        )

    # ------------------------------------------------------------------
    # Shared building blocks
    # ------------------------------------------------------------------

    def _charge_fingerprint(self, energy_nj: float) -> None:
        """Account fingerprint energy; its latency lives on the timeline."""
        self.crypto_energy.charge(EnergyCategory.FINGERPRINT, energy_nj)

    def _encrypt_and_write(self, frame: int, plaintext: bytes,
                           timeline: StageTimeline) -> None:
        """Encrypt a line and write its ciphertext to PCM.

        Declares ENCRYPTION (plus the counter-tree METADATA update when
        enabled) serially, then advances to the controller's completion,
        charging the full queueing-inclusive access to WRITE_UNIQUE.
        """
        enc = self.crypto.encrypt(plaintext, frame)
        self.crypto_energy.charge(EnergyCategory.ENCRYPTION,
                                  self.crypto.encrypt_energy_nj)
        timeline.serial(WritePathStage.ENCRYPTION,
                        self.crypto.encrypt_latency_ns)
        tree_ns = self._integrity_update(frame)
        if tree_ns:
            timeline.serial(WritePathStage.METADATA, tree_ns)
        result = self.controller.write(frame, enc.ciphertext, timeline.now)
        timeline.advance_to(WritePathStage.WRITE_UNIQUE,
                            result.completion_ns)

    def _read_and_decrypt(
            self, frame: int, timeline: StageTimeline, *,
            read_stage: WritePathStage = WritePathStage.READ_FOR_COMPARISON,
            decrypt_stage: Optional[WritePathStage] = None) -> bytes:
        """Read a frame and decrypt it, declaring the work on ``timeline``.

        With ``protect_counters`` enabled, the counter's integrity path is
        verified as a METADATA branch overlapping the (usually slower) PCM
        array access; joining the branch exposes only its excess.
        """
        ciphertext, access = self.controller.read(frame, timeline.now)
        tree_ns = self._integrity_verify(frame)
        tree_leg = (timeline.overlap_with(WritePathStage.METADATA, tree_ns)
                    if tree_ns else None)
        timeline.advance_to(read_stage, access.completion_ns)
        if tree_leg is not None:
            timeline.join(tree_leg)
        self.crypto_energy.charge(EnergyCategory.DECRYPTION,
                                  self.crypto.decrypt_energy_nj)
        plaintext = self.crypto.decrypt_at(ciphertext, frame)
        timeline.serial(decrypt_stage or read_stage,
                        self.crypto.decrypt_latency_ns)
        return plaintext

    def _charge_compare(self) -> float:
        """Account one byte-by-byte line comparison; returns its latency."""
        self.crypto_energy.charge(EnergyCategory.COMPARISON,
                                  self.costs.compare.energy_nj)
        return self.costs.compare.latency_ns

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def total_energy(self) -> EnergyAccount:
        """PCM energy (controller) merged with crypto/fingerprint energy."""
        return self.controller.energy.merged_with(self.crypto_energy)

    @property
    def pcm_data_writes(self) -> int:
        return self.controller.data_writes

    @property
    def duplicates_eliminated(self) -> int:
        return self.counters.get("dedup_hits")

    @property
    def writes_handled(self) -> int:
        return self.counters.get("writes")

    def write_reduction(self) -> float:
        """Fraction of handled writes that never reached PCM as data writes."""
        handled = self.writes_handled
        if handled == 0:
            return 0.0
        return 1.0 - (self.controller.data_writes / handled)
