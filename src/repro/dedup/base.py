"""Scheme interface shared by Baseline, Dedup_SHA1, DeWrite, and ESD.

Every scheme consumes :class:`~repro.common.types.MemoryRequest` objects and
returns per-request timing results; the simulation engine treats all four
identically, which is what lets every benchmark sweep schemes uniformly.

A scheme owns:

* a :class:`~repro.nvmm.controller.MemoryController` (PCM timing/energy),
* a :class:`~repro.crypto.counter_mode.CounterModeEngine` (encryption),
* an :class:`~repro.nvmm.energy.EnergyAccount` for crypto/fingerprint energy
  (PCM energy is accounted inside the controller),
* a :class:`~repro.common.types.LatencyBreakdown` accumulating the Figure 17
  write-path profile (and a second one for the read path),
* counters for dedup effectiveness (duplicates eliminated, writes issued).

Request handlers declare their pipeline on a
:class:`~repro.common.timeline.StageTimeline` and finish through
:meth:`DedupScheme._finalize_write` / :meth:`DedupScheme._finalize_read`,
the single point where a request's sealed timeline folds into the scheme's
running breakdowns.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, NamedTuple, Optional

from ..common.config import SystemConfig
from ..common.stats import Counter
from ..common.timeline import StageTimeline
from ..common.types import (
    LatencyBreakdown,
    MemoryRequest,
    WritePathStage,
)
from ..crypto.costs import CryptoCosts, DEFAULT_COSTS
from ..crypto.counter_mode import CounterModeEngine
from ..nvmm.allocator import FrameAllocator
from ..nvmm.controller import MemoryController
from ..nvmm.energy import EnergyAccount, EnergyCategory
from ..obs import runtime as _obs
from ..perf import memo as _memo

if TYPE_CHECKING:
    from ..crypto.integrity import CounterIntegrityTree

# Hoisted enum members for the fast-path branches (module-global loads are
# cheaper than two-level attribute lookups on per-request paths).
_ENCRYPTION = WritePathStage.ENCRYPTION
_WRITE_UNIQUE = WritePathStage.WRITE_UNIQUE


class WriteResult(NamedTuple):
    """Timing outcome of one write handled by a scheme.

    ``NamedTuple`` rather than a frozen dataclass: one is built per write
    request, and tuple construction is C-level.
    """

    completion_ns: float
    latency_ns: float
    deduplicated: bool
    #: True when a data line was physically written to PCM.
    wrote_line: bool
    #: The sealed per-request timeline (critical path + stage exposures).
    timeline: Optional[StageTimeline] = None

    @property
    def stages(self) -> Dict[WritePathStage, float]:
        """Per-stage exposed latency of this write (feeds Figure 17)."""
        if self.timeline is None:
            return {}
        return self.timeline.exposures


class ReadResult(NamedTuple):
    """Timing + data outcome of one read handled by a scheme."""

    data: bytes
    completion_ns: float
    latency_ns: float
    #: The sealed per-request timeline (critical path + stage exposures).
    timeline: Optional[StageTimeline] = None


@dataclass(frozen=True)
class MetadataFootprint:
    """Measured metadata space consumption of a scheme (Figure 19)."""

    onchip_bytes: int
    nvmm_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.onchip_bytes + self.nvmm_bytes


class DedupScheme(abc.ABC):
    """Base class wiring the shared substrates together."""

    #: Scheme identifier used in results tables ("Baseline", "Dedup_SHA1",
    #: "DeWrite", "ESD").  Set by the ``@register_scheme`` decorator.
    name: str = "abstract"

    def __init__(self, config: Optional[SystemConfig] = None,
                 costs: CryptoCosts = DEFAULT_COSTS) -> None:
        self.config = config or SystemConfig()
        self.costs = costs
        self.controller = MemoryController(self.config.pcm)
        self.allocator = FrameAllocator(self.config.pcm.num_lines)
        self.crypto = CounterModeEngine(costs=costs)
        self.crypto_energy = EnergyAccount()
        self.breakdown = LatencyBreakdown()
        self.read_breakdown = LatencyBreakdown()
        self.counters = Counter()
        # Cost scalars hoisted out of the (frozen) cost table: the shared
        # write/read helpers below run once or more per request, and each
        # ``self.crypto.encrypt_latency_ns`` there is a property call plus
        # two attribute hops.  Used by the kernel-fast-path branches only;
        # the reference branches keep the original dotted lookups.
        self._encrypt_latency_ns = costs.encrypt.latency_ns
        self._encrypt_energy_nj = costs.encrypt.energy_nj
        self._decrypt_latency_ns = costs.decrypt.latency_ns
        self._decrypt_energy_nj = costs.decrypt.energy_nj
        self._compare_latency_ns = costs.compare.latency_ns
        self._compare_energy_nj = costs.compare.energy_nj
        #: Optional counter-integrity tree (Section III-E trust model).
        self.integrity_tree: Optional["CounterIntegrityTree"] = None
        if self.config.protect_counters:
            from ..crypto.integrity import CounterIntegrityTree
            self.integrity_tree = CounterIntegrityTree(
                self.crypto.counters, self.config.pcm.num_lines)

    def _integrity_update(self, frame: int) -> float:
        """Maintain the counter tree after a write; returns its latency."""
        if self.integrity_tree is None:
            return 0.0
        self.integrity_tree.update(frame)
        return (self.integrity_tree.depth
                * self.config.integrity_hash_latency_ns)

    def _integrity_verify(self, frame: int) -> float:
        """Verify the counter path before trusting a read's pad."""
        if self.integrity_tree is None:
            return 0.0
        self.integrity_tree.verify(frame)
        return (self.integrity_tree.depth
                * self.config.integrity_hash_latency_ns)

    # ------------------------------------------------------------------
    # Abstract request handlers
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def handle_write(self, request: MemoryRequest) -> WriteResult:
        """Process one write-back arriving at the memory controller."""

    @abc.abstractmethod
    def handle_read(self, request: MemoryRequest) -> ReadResult:
        """Process one LLC miss fill; must return the current plaintext."""

    @abc.abstractmethod
    def metadata_footprint(self) -> MetadataFootprint:
        """Current measured metadata space consumption."""

    def vec_prime_engines(self) -> tuple:
        """Fingerprint engines keyed on *plaintext line content*.

        The vectorized engine's epoch front end batch-digests each epoch's
        unique write contents through these engines, priming their memo
        caches before the scalar per-line resolution (see
        :mod:`repro.vec.epoch`).  Priming is only sound for engines whose
        ``fingerprint`` is called on ``request.data`` verbatim, so the
        default discovers the conventional engine attributes; schemes that
        digest something else (e.g. DaE fingerprints *ciphertext*) must
        override this to exclude those engines.
        """
        engines = []
        for attr in ("engine", "weak_engine", "strong_engine"):
            candidate = getattr(self, attr, None)
            if candidate is not None and hasattr(candidate, "prime_batch"):
                engines.append(candidate)
        return tuple(engines)

    # ------------------------------------------------------------------
    # Timeline lifecycle
    # ------------------------------------------------------------------

    def _timeline(self, request: MemoryRequest) -> StageTimeline:
        """Open a timeline at the request's arrival at the controller."""
        return StageTimeline(request.issue_time_ns)

    def _finalize_write(self, request: MemoryRequest,
                        timeline: StageTimeline, *,
                        deduplicated: bool,
                        wrote_line: bool) -> WriteResult:
        """Seal a write's timeline and fold it into the running breakdown.

        The single instrumentation point of the write path: sealing checks
        stage conservation, folding accumulates the Figure 17 profile, and
        the reported latency is the timeline's critical path by
        construction.
        """
        if _memo.ENABLED:
            # seal(validate=False) + fold_into inlined: the conservation
            # check is covered by the slow-path parity gate, and the fold
            # is a plain dict accumulation.
            timeline._sealed = True
            obs = _obs.RUN
            if obs is not None:
                # The fast path never calls seal(); this is its seal
                # point, so the trace sees the same event either way.
                obs.record(timeline.now, "timeline", "sealed",
                           critical_path_ns=(timeline.now
                                             - timeline.start_ns),
                           stages=len(timeline._exposure))
            by_stage = self.breakdown.by_stage
            for stage, ns in timeline._exposure.items():
                if ns > 0.0:
                    by_stage[stage] = by_stage.get(stage, 0.0) + ns
            now = timeline.now
            return WriteResult(now, now - request.issue_time_ns,
                               deduplicated, wrote_line, timeline)
        timeline.seal()
        timeline.fold_into(self.breakdown)
        return WriteResult(
            completion_ns=timeline.now,
            latency_ns=timeline.now - request.issue_time_ns,
            deduplicated=deduplicated,
            wrote_line=wrote_line,
            timeline=timeline,
        )

    def _finalize_read(self, request: MemoryRequest,
                       timeline: StageTimeline,
                       data: bytes) -> ReadResult:
        """Seal a read's timeline and fold it into ``read_breakdown``."""
        if _memo.ENABLED:
            timeline._sealed = True
            obs = _obs.RUN
            if obs is not None:
                # Fast-path seal point (see _finalize_write).
                obs.record(timeline.now, "timeline", "sealed",
                           critical_path_ns=(timeline.now
                                             - timeline.start_ns),
                           stages=len(timeline._exposure))
            by_stage = self.read_breakdown.by_stage
            for stage, ns in timeline._exposure.items():
                if ns > 0.0:
                    by_stage[stage] = by_stage.get(stage, 0.0) + ns
            now = timeline.now
            return ReadResult(data, now, now - request.issue_time_ns,
                              timeline)
        timeline.seal()
        timeline.fold_into(self.read_breakdown)
        return ReadResult(
            data=data,
            completion_ns=timeline.now,
            latency_ns=timeline.now - request.issue_time_ns,
            timeline=timeline,
        )

    # ------------------------------------------------------------------
    # Shared building blocks
    # ------------------------------------------------------------------

    def _charge_fingerprint(self, energy_nj: float) -> None:
        """Account fingerprint energy; its latency lives on the timeline."""
        if _memo.ENABLED:
            buckets = self.crypto_energy.buckets
            buckets[EnergyCategory.FINGERPRINT] = buckets.get(
                EnergyCategory.FINGERPRINT, 0.0) + energy_nj
            return
        self.crypto_energy.charge(EnergyCategory.FINGERPRINT, energy_nj)

    def _encrypt_and_write(self, frame: int, plaintext: bytes,
                           timeline: StageTimeline) -> None:
        """Encrypt a line and write its ciphertext to PCM.

        Declares ENCRYPTION (plus the counter-tree METADATA update when
        enabled) serially, then advances to the controller's completion,
        charging the full queueing-inclusive access to WRITE_UNIQUE.
        """
        if _memo.ENABLED:
            # Fast path: energy charge inlined, cost scalars hoisted, and
            # the two timeline declarations (serial ENCRYPTION, advance to
            # the write's completion) folded into direct field updates —
            # identical arithmetic to serial()/advance_to(), minus two
            # method calls on a once-per-unique-write path.
            enc = self.crypto.encrypt(plaintext, frame)
            buckets = self.crypto_energy.buckets
            buckets[EnergyCategory.ENCRYPTION] = buckets.get(
                EnergyCategory.ENCRYPTION, 0.0) + self._encrypt_energy_nj
            exposure = timeline._exposure
            segments = timeline._segments
            now = timeline.now
            enc_ns = self._encrypt_latency_ns
            exposure[_ENCRYPTION] = exposure.get(_ENCRYPTION, 0.0) + enc_ns
            segments.append((_ENCRYPTION, now, now + enc_ns))
            now += enc_ns
            timeline.now = now
            if self.integrity_tree is not None:
                tree_ns = self._integrity_update(frame)
                if tree_ns:
                    timeline.serial(WritePathStage.METADATA, tree_ns)
                now = timeline.now
            result = self.controller.write(frame, enc.ciphertext, now)
            completion = result.service.completion_ns
            duration = completion - now
            if duration < 0.0:
                duration = 0.0
            exposure[_WRITE_UNIQUE] = (exposure.get(_WRITE_UNIQUE, 0.0)
                                       + duration)
            segments.append((_WRITE_UNIQUE, now, now + duration))
            if completion > now:
                timeline.now = completion
            return
        # Reference form (pre-fast-path implementation).
        enc = self.crypto.encrypt(plaintext, frame)
        self.crypto_energy.charge(EnergyCategory.ENCRYPTION,
                                  self.crypto.encrypt_energy_nj)
        timeline.serial(WritePathStage.ENCRYPTION,
                        self.crypto.encrypt_latency_ns)
        tree_ns = self._integrity_update(frame)
        if tree_ns:
            timeline.serial(WritePathStage.METADATA, tree_ns)
        result = self.controller.write(frame, enc.ciphertext, timeline.now)
        timeline.advance_to(WritePathStage.WRITE_UNIQUE,
                            result.completion_ns)

    def _read_and_decrypt(
            self, frame: int, timeline: StageTimeline, *,
            read_stage: WritePathStage = WritePathStage.READ_FOR_COMPARISON,
            decrypt_stage: Optional[WritePathStage] = None) -> bytes:
        """Read a frame and decrypt it, declaring the work on ``timeline``.

        With ``protect_counters`` enabled, the counter's integrity path is
        verified as a METADATA branch overlapping the (usually slower) PCM
        array access; joining the branch exposes only its excess.
        """
        if _memo.ENABLED and self.integrity_tree is None:
            # Fast path for the common no-integrity-tree configuration:
            # the advance-to-read-completion and serial-decrypt timeline
            # declarations are folded into direct field updates (identical
            # arithmetic, minus two method calls on the hottest read path).
            # The bank completion can never precede the timeline clock —
            # service starts at or after the arrival we just passed in —
            # so advance_to's backwards-clock check is vacuous here.
            ciphertext, access = self.controller.read(frame, timeline.now)
            completion = access.service.completion_ns
            exposure = timeline._exposure
            segments = timeline._segments
            now = timeline.now
            duration = completion - now
            if duration < 0.0:
                duration = 0.0
            exposure[read_stage] = exposure.get(read_stage, 0.0) + duration
            segments.append((read_stage, now, now + duration))
            if completion > now:
                now = completion
            buckets = self.crypto_energy.buckets
            buckets[EnergyCategory.DECRYPTION] = buckets.get(
                EnergyCategory.DECRYPTION, 0.0) + self._decrypt_energy_nj
            plaintext = self.crypto.decrypt_at(ciphertext, frame)
            dec_stage = decrypt_stage or read_stage
            dec_ns = self._decrypt_latency_ns
            exposure[dec_stage] = exposure.get(dec_stage, 0.0) + dec_ns
            segments.append((dec_stage, now, now + dec_ns))
            timeline.now = now + dec_ns
            return plaintext
        ciphertext, access = self.controller.read(frame, timeline.now)
        tree_ns = self._integrity_verify(frame)
        tree_leg = (timeline.overlap_with(WritePathStage.METADATA, tree_ns)
                    if tree_ns else None)
        timeline.advance_to(read_stage, access.completion_ns)
        if tree_leg is not None:
            timeline.join(tree_leg)
        self.crypto_energy.charge(EnergyCategory.DECRYPTION,
                                  self.crypto.decrypt_energy_nj)
        plaintext = self.crypto.decrypt_at(ciphertext, frame)
        timeline.serial(decrypt_stage or read_stage,
                        self.crypto.decrypt_latency_ns)
        return plaintext

    def _charge_compare(self) -> float:
        """Account one byte-by-byte line comparison; returns its latency."""
        if _memo.ENABLED:
            buckets = self.crypto_energy.buckets
            buckets[EnergyCategory.COMPARISON] = buckets.get(
                EnergyCategory.COMPARISON, 0.0) + self._compare_energy_nj
            return self._compare_latency_ns
        self.crypto_energy.charge(EnergyCategory.COMPARISON,
                                  self.costs.compare.energy_nj)
        return self.costs.compare.latency_ns

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def total_energy(self) -> EnergyAccount:
        """PCM energy (controller) merged with crypto/fingerprint energy."""
        return self.controller.energy.merged_with(self.crypto_energy)

    @property
    def pcm_data_writes(self) -> int:
        return self.controller.data_writes

    @property
    def duplicates_eliminated(self) -> int:
        return self.counters.get("dedup_hits")

    @property
    def writes_handled(self) -> int:
        return self.counters.get("writes")

    def write_reduction(self) -> float:
        """Fraction of handled writes that never reached PCM as data writes."""
        handled = self.writes_handled
        if handled == 0:
            return 0.0
        return 1.0 - (self.controller.data_writes / handled)
