"""Duplication predictor for the DeWrite scheme.

DeWrite (Zuo et al., MICRO'18) decides *before* computing anything whether
an incoming write is likely a duplicate, and picks one of two pipelines:

* predicted duplicate  -> serial: CRC, lookup, read-and-compare;
* predicted unique     -> parallel: CRC and encryption overlap.

The predictor here is a table of 2-bit saturating counters indexed by the
logical line address, the classic branch-predictor structure: a line whose
recent writes were duplicates is predicted duplicate.  The paper stresses
that DeWrite's efficiency "strictly depends on the result of prediction";
the accuracy counters exposed here let experiments quantify exactly that
(the F2/F4 mis-prediction penalties of Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PredictionStats:
    """Confusion-matrix tallies of the predictor."""

    true_dup: int = 0       # predicted dup, was dup        (paper's T1)
    false_dup: int = 0      # predicted dup, was unique     (paper's F2)
    true_unique: int = 0    # predicted unique, was unique  (paper's T3)
    false_unique: int = 0   # predicted unique, was dup     (paper's F4)

    @property
    def total(self) -> int:
        return (self.true_dup + self.false_dup
                + self.true_unique + self.false_unique)

    @property
    def accuracy(self) -> float:
        if self.total == 0:
            return 0.0
        return (self.true_dup + self.true_unique) / self.total


class DuplicationPredictor:
    """Per-address saturating-counter duplication predictor."""

    def __init__(self, entries: int = 4096, bits: int = 2) -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        if not 1 <= bits <= 8:
            raise ValueError("bits must be 1..8")
        self._entries = entries
        self._max = (1 << bits) - 1
        #: Counters start weakly-duplicate: cold lines are predicted
        #: duplicate, matching DeWrite's dedup-first bias.
        self._threshold = (self._max + 1) // 2
        self._table = [self._threshold] * entries
        self.stats = PredictionStats()

    def _index(self, logical_line: int) -> int:
        # Multiplicative hash spreads strided address patterns.
        return (logical_line * 2654435761) % self._entries

    def predict(self, logical_line: int) -> bool:
        """True when the line's next write is predicted to be a duplicate."""
        return self._table[self._index(logical_line)] >= self._threshold

    def update(self, logical_line: int, was_duplicate: bool) -> None:
        """Train with the actual outcome and record accuracy."""
        idx = self._index(logical_line)
        predicted_dup = self._table[idx] >= self._threshold
        if predicted_dup and was_duplicate:
            self.stats.true_dup += 1
        elif predicted_dup:
            self.stats.false_dup += 1
        elif was_duplicate:
            self.stats.false_unique += 1
        else:
            self.stats.true_unique += 1
        if was_duplicate:
            if self._table[idx] < self._max:
                self._table[idx] += 1
        else:
            if self._table[idx] > 0:
                self._table[idx] -= 1
