"""DeWrite: prediction-driven full deduplication with CRC fingerprints.

Reproduction of the state-of-the-art comparison point (Zuo et al.,
MICRO'18).  DeWrite performs *full* deduplication (every unique line is
indexed, the index lives in NVMM) but attacks the hash-latency problem with
two pipelines selected by a duplication predictor:

* **Predicted duplicate (serial)** — compute the 32-bit CRC, look it up
  (cache, then NVMM), and on a hit read the candidate frame back, decrypt,
  and byte-compare (CRC is too weak to trust).  Correct prediction (T1)
  eliminates the write; a mis-prediction (F2) has paid CRC + lookup +
  compare before falling back to encrypt-and-write, all serial — the
  paper's worst case.
* **Predicted unique (parallel)** — CRC and encryption start together, so
  the CRC's latency hides under the (longer) encryption (T3).  The lookup
  still must confirm uniqueness before the write commits; when the line was
  actually a duplicate (F4), the speculative encryption was wasted energy.

Both pipelines inherit full deduplication's fingerprint NVMM_lookup cost on
every fingerprint-cache miss.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..common.config import SystemConfig
from ..common.types import MemoryRequest, WritePathStage
from ..crypto.costs import CryptoCosts, DEFAULT_COSTS
from ..crypto.fingerprints import CRC32Engine
from ..nvmm.energy import EnergyCategory
from .base import WriteResult
from .full_dedup import FullDedupScheme
from .predictor import DuplicationPredictor


class DeWriteScheme(FullDedupScheme):
    """DeWrite (MICRO'18): CRC + prediction + parallel encryption."""

    name = "DeWrite"
    #: The paper quotes (16 bytes + 3 bits) of metadata per physical line.
    fingerprint_entry_size = 17

    def __init__(self, config: Optional[SystemConfig] = None,
                 costs: CryptoCosts = DEFAULT_COSTS) -> None:
        super().__init__(config, costs)
        self.engine = CRC32Engine(costs)
        self.predictor = DuplicationPredictor(
            entries=self.config.dewrite.predictor_entries,
            bits=self.config.dewrite.predictor_bits)

    # ------------------------------------------------------------------
    # Write pipelines
    # ------------------------------------------------------------------

    def _write_predicted_duplicate(self, request: MemoryRequest,
                                   stages: Dict[WritePathStage, float]
                                   ) -> WriteResult:
        """Serial pipeline: CRC -> lookup -> read-and-compare -> commit."""
        assert request.data is not None
        t = request.issue_time_ns

        fingerprint = self.engine.fingerprint(request.data)
        self._charge_fingerprint(self.engine.latency_ns, self.engine.energy_nj)
        stages[WritePathStage.FINGERPRINT_COMPUTE] = self.engine.latency_ns
        t += self.engine.latency_ns

        lookup = self.store.lookup(fingerprint, t)
        stages[WritePathStage.FINGERPRINT_NVMM_LOOKUP] = (
            lookup.completion_ns - t)
        t = lookup.completion_ns

        if lookup.found:
            assert lookup.frame is not None
            stored, t_read = self._read_and_decrypt(lookup.frame, t)
            t_read += self._charge_compare()
            stages[WritePathStage.READ_FOR_COMPARISON] = t_read - t
            t = t_read
            if stored == request.data:
                # T1: correctly predicted duplicate.
                self.predictor.update(request.line_index, True)
                completion = self._commit_duplicate(request.line_index,
                                                    lookup.frame, t, stages)
                self._record_write(stages)
                return WriteResult(
                    completion_ns=completion,
                    latency_ns=completion - request.issue_time_ns,
                    deduplicated=True, wrote_line=False, stages=stages)
            # CRC collision: same fingerprint, different bytes -> unique.
            self.counters.incr("crc_collisions")

        # F2 (or collision): everything so far was wasted; fall back to the
        # fully serial unique path.
        self.predictor.update(request.line_index, False)
        _frame, completion = self._commit_unique(
            request.line_index, fingerprint, request.data, t, stages)
        self._record_write(stages)
        return WriteResult(completion_ns=completion,
                           latency_ns=completion - request.issue_time_ns,
                           deduplicated=False, wrote_line=True, stages=stages)

    def _write_predicted_unique(self, request: MemoryRequest,
                                stages: Dict[WritePathStage, float]
                                ) -> WriteResult:
        """Parallel pipeline: CRC overlaps encryption; lookup gates commit."""
        assert request.data is not None
        t0 = request.issue_time_ns

        # CRC and encryption start together.  Only the portion of the CRC
        # that outlasts the encryption is exposed.  The speculative
        # encryption's energy is spent regardless of the outcome.
        fingerprint = self.engine.fingerprint(request.data)
        self._charge_fingerprint(0.0, self.engine.energy_nj)
        self.crypto_energy.charge(EnergyCategory.ENCRYPTION,
                                  self.crypto.encrypt_energy_nj)
        crc_done = t0 + self.engine.latency_ns
        encrypt_done = t0 + self.crypto.encrypt_latency_ns
        exposed_crc = max(0.0, crc_done - encrypt_done)
        if exposed_crc:
            stages[WritePathStage.FINGERPRINT_COMPUTE] = exposed_crc

        # The lookup needs the fingerprint, so it starts when the CRC ends.
        lookup = self.store.lookup(fingerprint, crc_done)
        stages[WritePathStage.FINGERPRINT_NVMM_LOOKUP] = (
            lookup.completion_ns - crc_done)

        if lookup.found:
            assert lookup.frame is not None
            t = lookup.completion_ns
            stored, t_read = self._read_and_decrypt(lookup.frame, t)
            t_read += self._charge_compare()
            stages[WritePathStage.READ_FOR_COMPARISON] = t_read - t
            if stored == request.data:
                # F4: the line was a duplicate after all.  The speculative
                # encryption is wasted energy (already charged); commit the
                # dedup.
                self.counters.incr("wasted_encryptions")
                self.predictor.update(request.line_index, True)
                completion = self._commit_duplicate(
                    request.line_index, lookup.frame, t_read, stages)
                self._record_write(stages)
                return WriteResult(
                    completion_ns=completion,
                    latency_ns=completion - request.issue_time_ns,
                    deduplicated=True, wrote_line=False, stages=stages)
            self.counters.incr("crc_collisions")
            t_commit = max(t_read, encrypt_done)
        else:
            # T3: confirmed unique; the write can commit once both the
            # encryption and the confirming lookup are done.  Only the
            # encryption tail that outlasts the lookup is exposed latency.
            t_commit = max(lookup.completion_ns, encrypt_done)
            exposed_encrypt = max(0.0, encrypt_done - lookup.completion_ns)
            if exposed_encrypt:
                stages[WritePathStage.ENCRYPTION] = exposed_encrypt

        self.predictor.update(request.line_index, False)
        _frame, completion = self._commit_unique(
            request.line_index, fingerprint, request.data, t_commit, stages,
            pre_encrypted_completion=t_commit)
        self._record_write(stages)
        return WriteResult(completion_ns=completion,
                           latency_ns=completion - request.issue_time_ns,
                           deduplicated=False, wrote_line=True, stages=stages)

    def handle_write(self, request: MemoryRequest) -> WriteResult:
        assert request.data is not None
        self.counters.incr("writes")
        stages: Dict[WritePathStage, float] = {}
        if self.predictor.predict(request.line_index):
            return self._write_predicted_duplicate(request, stages)
        return self._write_predicted_unique(request, stages)

    def metadata_footprint(self):
        """DeWrite packs all per-line metadata into (16 bytes + 3 bits).

        The paper quotes 25.59 % metadata overhead for DeWrite — a single
        (16 B + 3 bit) record per line covering fingerprint *and* mapping
        state, rather than the separate index + mapping tables Dedup_SHA1
        carries.  The NVMM footprint is therefore that packed record per
        mapped logical line.
        """
        from .base import MetadataFootprint
        bits_per_entry = 16 * 8 + 3
        entries = self.mapping.entry_count
        nvmm = (entries * bits_per_entry + 7) // 8
        return MetadataFootprint(
            onchip_bytes=self.store.onchip_bytes() + self.mapping.onchip_bytes(),
            nvmm_bytes=nvmm)
