"""DeWrite: prediction-driven full deduplication with CRC fingerprints.

Reproduction of the state-of-the-art comparison point (Zuo et al.,
MICRO'18).  DeWrite performs *full* deduplication (every unique line is
indexed, the index lives in NVMM) but attacks the hash-latency problem with
two pipelines selected by a duplication predictor:

* **Predicted duplicate (serial)** — compute the 32-bit CRC, look it up
  (cache, then NVMM), and on a hit read the candidate frame back, decrypt,
  and byte-compare (CRC is too weak to trust).  Correct prediction (T1)
  eliminates the write; a mis-prediction (F2) has paid CRC + lookup +
  compare before falling back to encrypt-and-write, all serial — the
  paper's worst case.
* **Predicted unique (parallel)** — CRC and encryption start together as
  two timeline branches, so the CRC's latency hides under the (longer)
  encryption (T3).  The lookup still must confirm uniqueness before the
  write commits; when the line was actually a duplicate (F4), the
  speculative encryption was wasted energy and its branch is never joined.

Both pipelines inherit full deduplication's fingerprint NVMM_lookup cost on
every fingerprint-cache miss.
"""

from __future__ import annotations

from typing import Optional

from ..common.config import SystemConfig
from ..common.timeline import StageTimeline
from ..common.types import MemoryRequest, WritePathStage
from ..crypto.costs import CryptoCosts, DEFAULT_COSTS
from ..crypto.fingerprints import CRC32Engine
from ..nvmm.energy import EnergyCategory
from ..registry import register_scheme
from .base import WriteResult
from .full_dedup import FullDedupScheme
from .predictor import DuplicationPredictor


@register_scheme("DeWrite", evaluation=True, code="2")
class DeWriteScheme(FullDedupScheme):
    """DeWrite (MICRO'18): CRC + prediction + parallel encryption."""

    #: The paper quotes (16 bytes + 3 bits) of metadata per physical line.
    fingerprint_entry_size = 17

    def __init__(self, config: Optional[SystemConfig] = None,
                 costs: CryptoCosts = DEFAULT_COSTS) -> None:
        super().__init__(config, costs)
        self.engine = CRC32Engine(costs)
        self.predictor = DuplicationPredictor(
            entries=self.config.dewrite.predictor_entries,
            bits=self.config.dewrite.predictor_bits)

    # ------------------------------------------------------------------
    # Write pipelines
    # ------------------------------------------------------------------

    def _write_predicted_duplicate(self, request: MemoryRequest,
                                   timeline: StageTimeline) -> WriteResult:
        """Serial pipeline: CRC -> lookup -> read-and-compare -> commit."""
        assert request.data is not None

        fingerprint = self.engine.fingerprint(request.data)
        self._charge_fingerprint(self.engine.energy_nj)
        timeline.serial(WritePathStage.FINGERPRINT_COMPUTE,
                        self.engine.latency_ns)

        lookup = self.store.lookup(fingerprint, timeline.now)
        timeline.advance_to(WritePathStage.FINGERPRINT_NVMM_LOOKUP,
                            lookup.completion_ns)

        if lookup.found:
            assert lookup.frame is not None
            stored = self._read_and_decrypt(lookup.frame, timeline)
            timeline.serial(WritePathStage.READ_FOR_COMPARISON,
                            self._charge_compare())
            if stored == request.data:
                # T1: correctly predicted duplicate.
                self.predictor.update(request.line_index, True)
                self._commit_duplicate(request.line_index, lookup.frame,
                                       timeline)
                return self._finalize_write(request, timeline,
                                            deduplicated=True,
                                            wrote_line=False)
            # CRC collision: same fingerprint, different bytes -> unique.
            self.counters.incr("crc_collisions")

        # F2 (or collision): everything so far was wasted; fall back to the
        # fully serial unique path.
        self.predictor.update(request.line_index, False)
        self._commit_unique(request.line_index, fingerprint, request.data,
                            timeline)
        return self._finalize_write(request, timeline,
                                    deduplicated=False, wrote_line=True)

    def _write_predicted_unique(self, request: MemoryRequest,
                                timeline: StageTimeline) -> WriteResult:
        """Parallel pipeline: CRC overlaps encryption; lookup gates commit."""
        assert request.data is not None

        # CRC and encryption start together as concurrent branches.  Only
        # the portion of the fingerprint leg that outlasts the encryption
        # is exposed.  The speculative encryption's energy is spent
        # regardless of the outcome.
        fingerprint = self.engine.fingerprint(request.data)
        self._charge_fingerprint(self.engine.energy_nj)
        self.crypto_energy.charge(EnergyCategory.ENCRYPTION,
                                  self.crypto.encrypt_energy_nj)
        enc_leg = timeline.overlap_with(WritePathStage.ENCRYPTION,
                                        self.crypto.encrypt_latency_ns)
        fp_leg = timeline.branch()
        fp_leg.serial(WritePathStage.FINGERPRINT_COMPUTE,
                      self.engine.latency_ns)

        # The lookup needs the fingerprint, so it starts when the CRC ends.
        lookup = self.store.lookup(fingerprint, fp_leg.now)
        fp_leg.advance_to(WritePathStage.FINGERPRINT_NVMM_LOOKUP,
                          lookup.completion_ns)

        if lookup.found:
            assert lookup.frame is not None
            stored = self._read_and_decrypt(lookup.frame, fp_leg)
            fp_leg.serial(WritePathStage.READ_FOR_COMPARISON,
                          self._charge_compare())
            if stored == request.data:
                # F4: the line was a duplicate after all.  The speculative
                # encryption is wasted work: its branch is never joined, so
                # its time never reaches the critical path (the energy was
                # already charged).  Commit the dedup.
                self.counters.incr("wasted_encryptions")
                self.predictor.update(request.line_index, True)
                timeline.join(fp_leg)
                self._commit_duplicate(request.line_index, lookup.frame,
                                       timeline)
                return self._finalize_write(request, timeline,
                                            deduplicated=True,
                                            wrote_line=False)
            self.counters.incr("crc_collisions")

        # T3 (or collision): confirmed unique; the write can commit once
        # both the encryption and the confirming fingerprint leg are done.
        # Joining the encryption first means the fingerprint leg is charged
        # only for the tail that outlasts it — the CRC hides entirely when
        # encryption is longer.
        timeline.join(enc_leg)
        timeline.join(fp_leg)
        self.predictor.update(request.line_index, False)
        self._commit_unique(request.line_index, fingerprint, request.data,
                            timeline, pre_encrypted=True)
        return self._finalize_write(request, timeline,
                                    deduplicated=False, wrote_line=True)

    def handle_write(self, request: MemoryRequest) -> WriteResult:
        assert request.data is not None
        self.counters.incr("writes")
        timeline = self._timeline(request)
        if self.predictor.predict(request.line_index):
            return self._write_predicted_duplicate(request, timeline)
        return self._write_predicted_unique(request, timeline)

    def metadata_footprint(self):
        """DeWrite packs all per-line metadata into (16 bytes + 3 bits).

        The paper quotes 25.59 % metadata overhead for DeWrite — a single
        (16 B + 3 bit) record per line covering fingerprint *and* mapping
        state, rather than the separate index + mapping tables Dedup_SHA1
        carries.  The NVMM footprint is therefore that packed record per
        mapped logical line.
        """
        from .base import MetadataFootprint
        bits_per_entry = 16 * 8 + 3
        entries = self.mapping.entry_count
        nvmm = (entries * bits_per_entry + 7) // 8
        return MetadataFootprint(
            onchip_bytes=self.store.onchip_bytes() + self.mapping.onchip_bytes(),
            nvmm_bytes=nvmm)
