"""Shared machinery for the full-deduplication schemes (Dedup_SHA1, DeWrite).

Full deduplication tries to eliminate *every* duplicate line: each unique
line's fingerprint is indexed in an NVMM-resident store
(:class:`~repro.dedup.fingerprint_store.FullFingerprintStore`), and each
logical address is remapped through a :class:`~repro.dedup.mapping.MappingTable`.
This base class owns that plumbing — reference counting, frame recycling,
fingerprint-entry invalidation, and the shared read path — so the concrete
schemes only implement their distinctive write pipelines.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..common.config import SystemConfig
from ..common.types import CACHE_LINE_SIZE, MemoryRequest, WritePathStage
from ..crypto.costs import CryptoCosts, DEFAULT_COSTS
from .base import DedupScheme, MetadataFootprint, ReadResult
from .fingerprint_store import FullFingerprintStore
from .mapping import FrameRefcounts, MappingTable


class FullDedupScheme(DedupScheme):
    """Base for schemes that index every unique line's fingerprint."""

    #: Bytes per fingerprint-store entry; subclasses override.
    fingerprint_entry_size: int = 32
    #: Bytes per mapping-table entry (8 B logical + 5 B packed physical +
    #: refcount/flags); shared by both full-dedup schemes.
    mapping_entry_size: int = 16

    def __init__(self, config: Optional[SystemConfig] = None,
                 costs: CryptoCosts = DEFAULT_COSTS) -> None:
        super().__init__(config, costs)
        mc = self.config.metadata_cache
        self.store = FullFingerprintStore(
            cache_bytes=mc.efit_bytes,
            entry_size=self.fingerprint_entry_size,
            controller=self.controller,
            probe_latency_ns=mc.probe_latency_ns)
        self.mapping = MappingTable(
            cache_bytes=mc.amt_bytes,
            entry_size=self.mapping_entry_size,
            controller=self.controller,
            probe_latency_ns=mc.probe_latency_ns)
        self.refcounts = FrameRefcounts(self.allocator)
        #: frame -> fingerprint, for invalidating index entries of freed frames.
        self._frame_fingerprint: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Commit helpers shared by the concrete write pipelines
    # ------------------------------------------------------------------

    def _release_previous(self, logical_line: int) -> None:
        """Drop the logical line's old mapping reference, recycling frames."""
        old_frame = self.mapping.current_frame(logical_line)
        if old_frame is None:
            return
        remaining = self.refcounts.release(old_frame)
        if remaining == 0:
            fingerprint = self._frame_fingerprint.pop(old_frame, None)
            if fingerprint is not None:
                self.store.remove(fingerprint)

    def _commit_duplicate(self, logical_line: int, frame: int,
                          at_time_ns: float,
                          stages: Dict[WritePathStage, float]) -> float:
        """Remap the logical line onto an existing frame (dedup hit).

        The new reference is acquired *before* the old mapping is released:
        when a line rewrites the content it already points at (old frame ==
        new frame, refcount 1), releasing first would free the frame — and
        drop its fingerprint — mid-commit.
        """
        self.counters.incr("dedup_hits")
        self.refcounts.acquire(frame)
        self._release_previous(logical_line)
        t = self.mapping.update(logical_line, frame, at_time_ns)
        stages[WritePathStage.METADATA] = stages.get(
            WritePathStage.METADATA, 0.0) + (t - at_time_ns)
        return t

    def _commit_unique(self, logical_line: int, fingerprint: int,
                       plaintext: bytes, at_time_ns: float,
                       stages: Dict[WritePathStage, float],
                       *, pre_encrypted_completion: Optional[float] = None,
                       ) -> Tuple[int, float]:
        """Write a unique line: allocate, encrypt+write, index, remap.

        Args:
            pre_encrypted_completion: when the caller already overlapped the
                encryption+write (DeWrite's parallel path), the completion
                time of that work; otherwise the encryption and write are
                performed serially here.

        Returns:
            (frame, completion_time).
        """
        self._release_previous(logical_line)
        frame = self.allocator.allocate()
        if pre_encrypted_completion is None:
            t = self._encrypt_and_write(frame, plaintext, at_time_ns, stages)
        else:
            # Caller accounted encryption; issue the PCM write now.
            enc = self.crypto.encrypt(plaintext, frame)
            self._integrity_update(frame)
            result = self.controller.write(frame, enc.ciphertext,
                                           pre_encrypted_completion)
            stages[WritePathStage.WRITE_UNIQUE] = stages.get(
                WritePathStage.WRITE_UNIQUE, 0.0) + result.latency_ns
            t = result.completion_ns
        self.refcounts.acquire(frame)
        self._frame_fingerprint[frame] = fingerprint
        # Index insertion's NVMM write proceeds off the critical path (it
        # occupies a bank and consumes energy, but the write's completion
        # does not wait for it).
        self.store.insert(fingerprint, frame, t)
        t2 = self.mapping.update(logical_line, frame, t)
        stages[WritePathStage.METADATA] = stages.get(
            WritePathStage.METADATA, 0.0) + (t2 - t)
        return frame, t2

    # ------------------------------------------------------------------
    # Shared read path
    # ------------------------------------------------------------------

    def handle_read(self, request: MemoryRequest) -> ReadResult:
        self.counters.incr("reads")
        frame, t, _hit = self.mapping.lookup(request.line_index,
                                             request.issue_time_ns)
        if frame is None:
            return ReadResult(data=bytes(CACHE_LINE_SIZE), completion_ns=t,
                              latency_ns=t - request.issue_time_ns)
        plaintext, completion = self._read_and_decrypt(frame, t)
        return ReadResult(data=plaintext, completion_ns=completion,
                          latency_ns=completion - request.issue_time_ns)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def metadata_footprint(self) -> MetadataFootprint:
        return MetadataFootprint(
            onchip_bytes=self.store.onchip_bytes() + self.mapping.onchip_bytes(),
            nvmm_bytes=self.store.nvmm_bytes() + self.mapping.nvmm_bytes())
