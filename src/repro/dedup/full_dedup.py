"""Shared machinery for the full-deduplication schemes (Dedup_SHA1, DeWrite).

Full deduplication tries to eliminate *every* duplicate line: each unique
line's fingerprint is indexed in an NVMM-resident store
(:class:`~repro.dedup.fingerprint_store.FullFingerprintStore`), and each
logical address is remapped through a :class:`~repro.dedup.mapping.MappingTable`.
This base class owns that plumbing — reference counting, frame recycling,
fingerprint-entry invalidation, and the shared read path — so the concrete
schemes only implement their distinctive write pipelines.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..common.config import SystemConfig
from ..common.timeline import StageTimeline
from ..common.types import CACHE_LINE_SIZE, MemoryRequest, WritePathStage
from ..crypto.costs import CryptoCosts, DEFAULT_COSTS
from .base import DedupScheme, MetadataFootprint, ReadResult
from .fingerprint_store import FullFingerprintStore
from .mapping import FrameRefcounts, MappingTable


class FullDedupScheme(DedupScheme):
    """Base for schemes that index every unique line's fingerprint."""

    #: Bytes per fingerprint-store entry; subclasses override.
    fingerprint_entry_size: int = 32
    #: Bytes per mapping-table entry (8 B logical + 5 B packed physical +
    #: refcount/flags); shared by both full-dedup schemes.
    mapping_entry_size: int = 16

    def __init__(self, config: Optional[SystemConfig] = None,
                 costs: CryptoCosts = DEFAULT_COSTS) -> None:
        super().__init__(config, costs)
        mc = self.config.metadata_cache
        self.store = FullFingerprintStore(
            cache_bytes=mc.efit_bytes,
            entry_size=self.fingerprint_entry_size,
            controller=self.controller,
            probe_latency_ns=mc.probe_latency_ns)
        self.mapping = MappingTable(
            cache_bytes=mc.amt_bytes,
            entry_size=self.mapping_entry_size,
            controller=self.controller,
            probe_latency_ns=mc.probe_latency_ns)
        self.refcounts = FrameRefcounts(self.allocator)
        #: frame -> fingerprint, for invalidating index entries of freed frames.
        self._frame_fingerprint: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Commit helpers shared by the concrete write pipelines
    # ------------------------------------------------------------------

    def _release_previous(self, logical_line: int) -> None:
        """Drop the logical line's old mapping reference, recycling frames."""
        old_frame = self.mapping.current_frame(logical_line)
        if old_frame is None:
            return
        remaining = self.refcounts.release(old_frame)
        if remaining == 0:
            fingerprint = self._frame_fingerprint.pop(old_frame, None)
            if fingerprint is not None:
                self.store.remove(fingerprint)

    def _commit_duplicate(self, logical_line: int, frame: int,
                          timeline: StageTimeline) -> None:
        """Remap the logical line onto an existing frame (dedup hit).

        The new reference is acquired *before* the old mapping is released:
        when a line rewrites the content it already points at (old frame ==
        new frame, refcount 1), releasing first would free the frame — and
        drop its fingerprint — mid-commit.
        """
        self.counters.incr("dedup_hits")
        self.refcounts.acquire(frame)
        self._release_previous(logical_line)
        t = self.mapping.update(logical_line, frame, timeline.now)
        timeline.advance_to(WritePathStage.METADATA, t)

    def _commit_unique(self, logical_line: int, fingerprint: int,
                       plaintext: bytes, timeline: StageTimeline,
                       *, pre_encrypted: bool = False) -> int:
        """Write a unique line: allocate, encrypt+write, index, remap.

        Args:
            pre_encrypted: when the caller already declared the encryption
                on the timeline (DeWrite/PDE overlap it with fingerprinting),
                only the PCM write is issued here; otherwise encryption and
                write are declared serially.

        Returns:
            The allocated frame.
        """
        self._release_previous(logical_line)
        frame = self.allocator.allocate()
        if not pre_encrypted:
            self._encrypt_and_write(frame, plaintext, timeline)
        else:
            # Caller accounted encryption; issue the PCM write now.
            enc = self.crypto.encrypt(plaintext, frame)
            self._integrity_update(frame)
            result = self.controller.write(frame, enc.ciphertext,
                                           timeline.now)
            timeline.advance_to(WritePathStage.WRITE_UNIQUE,
                                result.completion_ns)
        self.refcounts.acquire(frame)
        self._frame_fingerprint[frame] = fingerprint
        # Index insertion's NVMM write proceeds off the critical path (it
        # occupies a bank and consumes energy, but the write's completion
        # does not wait for it).
        self.store.insert(fingerprint, frame, timeline.now)
        t2 = self.mapping.update(logical_line, frame, timeline.now)
        timeline.advance_to(WritePathStage.METADATA, t2)
        return frame

    # ------------------------------------------------------------------
    # Shared read path
    # ------------------------------------------------------------------

    def handle_read(self, request: MemoryRequest) -> ReadResult:
        self.counters.incr("reads")
        timeline = self._timeline(request)
        frame, t, _hit = self.mapping.lookup(request.line_index,
                                             timeline.now)
        timeline.advance_to(WritePathStage.METADATA, t)
        if frame is None:
            return self._finalize_read(request, timeline,
                                       bytes(CACHE_LINE_SIZE))
        plaintext = self._read_and_decrypt(
            frame, timeline,
            read_stage=WritePathStage.READ_FILL,
            decrypt_stage=WritePathStage.DECRYPTION)
        return self._finalize_read(request, timeline, plaintext)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def metadata_footprint(self) -> MetadataFootprint:
        return MetadataFootprint(
            onchip_bytes=self.store.onchip_bytes() + self.mapping.onchip_bytes(),
            nvmm_bytes=self.store.nvmm_bytes() + self.mapping.nvmm_bytes())
