"""Logical-to-physical mapping with a hot-entry cache and NVMM home.

Deduplication remaps logical cache-line addresses onto shared physical
frames, so every dedup scheme needs an address-mapping table.  The table's
*home* is in NVMM (it must survive and it is large); a bounded on-chip cache
holds hot entries.  Cache behaviour is write-back: updates dirty the cached
entry, and evicting a dirty entry costs one NVMM metadata write.  Misses on
the read path cost one NVMM metadata read.

This generic table serves Dedup_SHA1 and DeWrite directly; ESD's AMT
(:mod:`repro.core.amt`) builds on it, adding the paper's packed
``Addr_base``/``Addr_offsets`` physical address representation.

Reference counting of physical frames lives in :class:`FrameRefcounts`
(shared by all dedup schemes): remapping a logical address away from a frame
drops a reference, and frames are recycled when the last reference goes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..nvmm.allocator import FrameAllocator
from ..nvmm.controller import MemoryController
from ..obs import runtime as _obs


@dataclass
class _CachedMapping:
    frame: int
    dirty: bool


class MappingTable:
    """logical line number -> physical frame, cached + NVMM-resident.

    Args:
        cache_bytes: capacity of the on-chip hot-entry cache.
        entry_size: bytes one mapping entry occupies (determines how many
            entries the cache holds, and the NVMM footprint per entry).
        controller: charged for NVMM metadata accesses.
        probe_latency_ns: latency of an on-chip cache probe.
    """

    def __init__(self, cache_bytes: int, entry_size: int,
                 controller: MemoryController,
                 probe_latency_ns: float = 1.0) -> None:
        if cache_bytes <= 0 or entry_size <= 0:
            raise ValueError("cache_bytes and entry_size must be positive")
        self.entry_size = entry_size
        self.capacity = max(1, cache_bytes // entry_size)
        self.probe_latency_ns = probe_latency_ns
        self._controller = controller
        self._cache: "OrderedDict[int, _CachedMapping]" = OrderedDict()
        self._home: Dict[int, int] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.nvmm_reads = 0
        self.nvmm_writes = 0
        # NVMM metadata is written at 64-byte line granularity: several
        # entries coalesce into one PCM write through the controller's
        # write-combining buffer.
        self._entries_per_line = max(1, 64 // entry_size)
        self._pending_dirty = 0

    # ------------------------------------------------------------------
    # Internal cache plumbing
    # ------------------------------------------------------------------

    def _evict_if_needed(self, at_time_ns: float) -> float:
        """Make room in the cache; returns the time after any write-back.

        Dirty write-backs coalesce: one PCM metadata write covers a full
        64-byte metadata line's worth of entries.
        """
        t = at_time_ns
        while len(self._cache) >= self.capacity:
            victim_key, victim = self._cache.popitem(last=False)
            if victim.dirty:
                self._home[victim_key] = victim.frame
                self._pending_dirty += 1
                if self._pending_dirty >= self._entries_per_line:
                    self._pending_dirty = 0
                    self.nvmm_writes += 1
                    t = self._controller.metadata_write(victim_key,
                                                        t).completion_ns
        return t

    def _install(self, logical_line: int, frame: int, dirty: bool,
                 at_time_ns: float) -> float:
        t = self._evict_if_needed(at_time_ns)
        self._cache[logical_line] = _CachedMapping(frame=frame, dirty=dirty)
        self._cache.move_to_end(logical_line)
        return t

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    def lookup(self, logical_line: int,
               at_time_ns: float) -> Tuple[Optional[int], float, bool]:
        """Translate a logical line.

        Returns ``(frame_or_None, completion_time, cache_hit)``.  A cache
        miss costs one NVMM metadata read (the entry may or may not exist
        there; absence is only known after the read) and installs the entry
        on success.
        """
        t = at_time_ns + self.probe_latency_ns
        cached = self._cache.get(logical_line)
        obs = _obs.RUN
        if cached is not None:
            self._cache.move_to_end(logical_line)
            self.cache_hits += 1
            if obs is not None:
                obs.record(t, "amt", "hit", line=logical_line)
            return cached.frame, t, True
        self.cache_misses += 1
        self.nvmm_reads += 1
        if obs is not None:
            obs.record(t, "amt", "miss", line=logical_line)
        t = self._controller.metadata_read(logical_line, t).completion_ns
        frame = self._home.get(logical_line)
        if frame is not None:
            t = self._install(logical_line, frame, dirty=False, at_time_ns=t)
        return frame, t, False

    def update(self, logical_line: int, frame: int,
               at_time_ns: float) -> float:
        """Set/replace a mapping (write path); returns completion time.

        The update lands in the cache (dirtying the entry); NVMM cost is
        deferred to dirty eviction.
        """
        t = at_time_ns + self.probe_latency_ns
        cached = self._cache.get(logical_line)
        if cached is not None:
            cached.frame = frame
            cached.dirty = True
            self._cache.move_to_end(logical_line)
            return t
        return self._install(logical_line, frame, dirty=True, at_time_ns=t)

    def current_frame(self, logical_line: int) -> Optional[int]:
        """Functional view (no timing): the mapping as of now."""
        cached = self._cache.get(logical_line)
        if cached is not None:
            return cached.frame
        return self._home.get(logical_line)

    @property
    def entry_count(self) -> int:
        """Distinct mappings across cache and home."""
        keys = set(self._home)
        keys.update(self._cache)
        return len(keys)

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def nvmm_bytes(self) -> int:
        """NVMM-resident metadata footprint (every mapping has a home slot)."""
        return self.entry_count * self.entry_size

    def onchip_bytes(self) -> int:
        return min(len(self._cache), self.capacity) * self.entry_size


class FrameRefcounts:
    """Reference counts over physical frames, recycling freed frames."""

    def __init__(self, allocator: FrameAllocator) -> None:
        self._allocator = allocator
        self._counts: Dict[int, int] = {}

    def acquire(self, frame: int) -> int:
        """Add a reference; returns the new count."""
        count = self._counts.get(frame, 0) + 1
        self._counts[frame] = count
        return count

    def release(self, frame: int) -> int:
        """Drop a reference; frees the frame at zero.  Returns new count."""
        count = self._counts.get(frame)
        if count is None or count <= 0:
            raise ValueError(f"frame {frame} has no outstanding references")
        count -= 1
        if count == 0:
            del self._counts[frame]
            self._allocator.free(frame)
        else:
            self._counts[frame] = count
        return count

    def count(self, frame: int) -> int:
        return self._counts.get(frame, 0)

    def live_frames(self) -> int:
        return len(self._counts)
