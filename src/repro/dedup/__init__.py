"""Deduplication scheme zoo: Baseline, Dedup_SHA1, DeWrite (+ shared parts).

The ESD scheme itself lives in :mod:`repro.core`; both packages register
their schemes into :mod:`repro.registry`, the single source of truth for
names and construction.  ``SCHEME_NAMES``, ``EXTENDED_SCHEME_NAMES``, and
``make_scheme`` are kept here as lazy aliases (PEP 562) so existing
imports keep working without forcing every scheme module to load at
package-import time.
"""

from typing import Optional

from ..common.config import SystemConfig
from ..crypto.costs import CryptoCosts, DEFAULT_COSTS
from .base import DedupScheme, MetadataFootprint, ReadResult, WriteResult
from .baseline import BaselineScheme
from .dae_pde import DaEScheme, PDEScheme
from .dedup_sha1 import DedupSHA1Scheme
from .dewrite import DeWriteScheme
from .fingerprint_store import FullFingerprintStore, LookupResult, LookupWhere
from .full_dedup import FullDedupScheme
from .mapping import FrameRefcounts, MappingTable
from .predictor import DuplicationPredictor, PredictionStats


def make_scheme(name: str, config: Optional[SystemConfig] = None,
                costs: CryptoCosts = DEFAULT_COSTS) -> DedupScheme:
    """Instantiate a registered scheme by its paper name.

    Accepts every name in the registry: the evaluation schemes
    ``Baseline``, ``Dedup_SHA1``, ``DeWrite``, ``ESD`` plus the extended
    comparison points (``DaE``, ``PDE``, ``NV-Dedup``, ``ESD-Delta``).
    """
    from .. import registry
    return registry.scheme_info(name).cls(config, costs)


def __getattr__(name: str):
    # Lazy aliases over the registry: resolving them here (rather than at
    # import time) avoids binding a stale tuple while the scheme modules
    # are still being imported.
    if name == "SCHEME_NAMES":
        from .. import registry
        return registry.scheme_names()
    if name == "EXTENDED_SCHEME_NAMES":
        from .. import registry
        return registry.registered_scheme_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BaselineScheme",
    "DaEScheme",
    "DedupScheme",
    "DedupSHA1Scheme",
    "DeWriteScheme",
    "DuplicationPredictor",
    "EXTENDED_SCHEME_NAMES",
    "PDEScheme",
    "FrameRefcounts",
    "FullDedupScheme",
    "FullFingerprintStore",
    "LookupResult",
    "LookupWhere",
    "MappingTable",
    "MetadataFootprint",
    "PredictionStats",
    "ReadResult",
    "SCHEME_NAMES",
    "WriteResult",
    "make_scheme",
]
