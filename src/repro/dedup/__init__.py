"""Deduplication scheme zoo: Baseline, Dedup_SHA1, DeWrite (+ shared parts).

The ESD scheme itself lives in :mod:`repro.core`; :func:`make_scheme` builds
any of the four by name.
"""

from typing import Optional

from ..common.config import SystemConfig
from ..crypto.costs import CryptoCosts, DEFAULT_COSTS
from .base import DedupScheme, MetadataFootprint, ReadResult, WriteResult
from .baseline import BaselineScheme
from .dae_pde import DaEScheme, PDEScheme
from .dedup_sha1 import DedupSHA1Scheme
from .dewrite import DeWriteScheme
from .fingerprint_store import FullFingerprintStore, LookupResult, LookupWhere
from .full_dedup import FullDedupScheme
from .mapping import FrameRefcounts, MappingTable
from .predictor import DuplicationPredictor, PredictionStats

#: Scheme names in the paper's presentation order (the evaluation grid).
SCHEME_NAMES = ("Baseline", "Dedup_SHA1", "DeWrite", "ESD")

#: Additional schemes: the paper's rejected motivation orderings
#: (Section II-C), the NV-Dedup related work, and the ESD-Delta extension.
EXTENDED_SCHEME_NAMES = SCHEME_NAMES + ("DaE", "PDE", "NV-Dedup",
                                        "ESD-Delta")


def make_scheme(name: str, config: Optional[SystemConfig] = None,
                costs: CryptoCosts = DEFAULT_COSTS) -> DedupScheme:
    """Instantiate a scheme by its paper name.

    Accepts the evaluation schemes ``Baseline``, ``Dedup_SHA1``,
    ``DeWrite``, ``ESD`` plus the motivation schemes ``DaE`` and ``PDE``.
    """
    if name == "Baseline":
        return BaselineScheme(config, costs)
    if name == "Dedup_SHA1":
        return DedupSHA1Scheme(config, costs)
    if name == "DeWrite":
        return DeWriteScheme(config, costs)
    if name == "ESD":
        from ..core.esd import ESDScheme
        return ESDScheme(config, costs)
    if name == "DaE":
        return DaEScheme(config, costs)
    if name == "PDE":
        return PDEScheme(config, costs)
    if name == "NV-Dedup":
        from .nvdedup import NVDedupScheme
        return NVDedupScheme(config, costs)
    if name == "ESD-Delta":
        from ..core.esd_delta import ESDDeltaScheme
        return ESDDeltaScheme(config, costs)
    raise ValueError(
        f"unknown scheme {name!r}; known: {EXTENDED_SCHEME_NAMES}")


__all__ = [
    "BaselineScheme",
    "DaEScheme",
    "DedupScheme",
    "DedupSHA1Scheme",
    "DeWriteScheme",
    "DuplicationPredictor",
    "EXTENDED_SCHEME_NAMES",
    "PDEScheme",
    "FrameRefcounts",
    "FullDedupScheme",
    "FullFingerprintStore",
    "LookupResult",
    "LookupWhere",
    "MappingTable",
    "MetadataFootprint",
    "PredictionStats",
    "ReadResult",
    "SCHEME_NAMES",
    "WriteResult",
    "make_scheme",
]
