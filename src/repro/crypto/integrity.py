"""Counter integrity protection for the encrypted NVMM (Section III-E).

Counter-mode encryption is only secure while counters are fresh and
*authentic*: an attacker who can roll a counter back can force pad reuse.
Secure-NVMM designs the paper builds on (Yang et al. DAC'19, Zuo et al.,
SuperMem) therefore protect the counter store with an integrity tree whose
root lives on-chip.  ESD itself stores its fingerprints on-chip only (no
new off-chip metadata to protect — one of its selling points), but the
*counters* every scheme shares still need this substrate, so we implement
a compact Merkle counter tree:

* leaves cover fixed-size groups of per-line counters,
* inner nodes hash their children,
* the root is pinned in the (trusted) memory controller,
* verification walks leaf->root; any tamper flips the root.

The tree is functional (real SHA-256 hashing over real counter values) and
exposes verification plus tamper detection for tests and examples.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

from ..common.errors import IntegrityError
from .counter_mode import CounterTable

#: Counters per leaf node (one 64-byte metadata line of 8-byte counters).
COUNTERS_PER_LEAF = 8

#: Children per inner node.
TREE_ARITY = 8


def _hash_children(children: List[bytes]) -> bytes:
    h = hashlib.sha256()
    for child in children:
        h.update(child)
    return h.digest()


class CounterIntegrityTree:
    """Merkle tree over a :class:`~repro.crypto.counter_mode.CounterTable`.

    The tree is sparse: untouched regions hash to a well-defined default,
    so only counters that were ever written consume memory.

    Args:
        counters: the live counter table to protect.
        num_lines: the protected address-space size in cache lines.
    """

    def __init__(self, counters: CounterTable, num_lines: int) -> None:
        if num_lines <= 0:
            raise ValueError("num_lines must be positive")
        self._counters = counters
        self.num_lines = num_lines
        self.num_leaves = (num_lines + COUNTERS_PER_LEAF - 1) // COUNTERS_PER_LEAF
        #: Level sizes, leaf level first.
        self._levels: List[int] = []
        size = self.num_leaves
        while size > 1:
            self._levels.append(size)
            size = (size + TREE_ARITY - 1) // TREE_ARITY
        self._levels.append(size)  # the root level (size 1)
        #: Sparse node storage: (level, index) -> digest.
        self._nodes: Dict[tuple, bytes] = {}
        #: Default digests per level (hash of all-default children).
        self._defaults: List[bytes] = self._build_defaults()
        #: The root, pinned "on-chip".
        self.root = self._compute_node(len(self._levels) - 1, 0)
        self.verifications = 0
        self.updates = 0

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------

    def _leaf_digest(self, leaf_index: int) -> bytes:
        h = hashlib.sha256()
        base = leaf_index * COUNTERS_PER_LEAF
        for i in range(COUNTERS_PER_LEAF):
            value = self._counters.current(base + i)
            h.update(value.to_bytes(8, "little"))
        return h.digest()

    def _build_defaults(self) -> List[bytes]:
        defaults = [hashlib.sha256(b"\x00" * 8 * COUNTERS_PER_LEAF).digest()]
        for _ in range(1, len(self._levels)):
            defaults.append(_hash_children([defaults[-1]] * TREE_ARITY))
        return defaults

    def _get_node(self, level: int, index: int) -> bytes:
        return self._nodes.get((level, index), self._defaults[level])

    def _compute_node(self, level: int, index: int) -> bytes:
        if level == 0:
            return self._leaf_digest(index)
        children = [self._get_node(level - 1, index * TREE_ARITY + c)
                    for c in range(TREE_ARITY)]
        return _hash_children(children)

    # ------------------------------------------------------------------
    # Update / verify
    # ------------------------------------------------------------------

    def _leaf_for_line(self, line_number: int) -> int:
        if not 0 <= line_number < self.num_lines:
            raise ValueError(f"line {line_number} outside protected space")
        return line_number // COUNTERS_PER_LEAF

    def update(self, line_number: int) -> None:
        """Re-hash the path for a counter that just advanced (on write)."""
        index = self._leaf_for_line(line_number)
        digest = self._leaf_digest(index)
        self._nodes[(0, index)] = digest
        for level in range(1, len(self._levels)):
            index //= TREE_ARITY
            self._nodes[(level, index)] = self._compute_node(level, index)
        self.root = self._nodes[(len(self._levels) - 1, 0)]
        self.updates += 1

    def verify(self, line_number: int) -> None:
        """Verify the counter's path against the pinned root.

        Raises:
            IntegrityError: when the recomputed root differs from the
                pinned root (tampered counter or stale tree).
        """
        index = self._leaf_for_line(line_number)
        # Recompute the leaf from the live counters, then climb to the root
        # substituting the recomputed digest for the stored path node at
        # each level (siblings come from storage).
        digest = self._leaf_digest(index)
        for level in range(1, len(self._levels)):
            parent = index // TREE_ARITY
            children = [self._get_node(level - 1, parent * TREE_ARITY + c)
                        for c in range(TREE_ARITY)]
            children[index % TREE_ARITY] = digest
            digest = _hash_children(children)
            index = parent
        self.verifications += 1
        if digest != self.root:
            raise IntegrityError(
                f"counter integrity check failed for line {line_number}")

    def verify_all_touched(self) -> int:
        """Verify every leaf that was ever updated; returns the count."""
        leaves = sorted({idx for (lvl, idx) in self._nodes if lvl == 0})
        for leaf in leaves:
            self.verify(leaf * COUNTERS_PER_LEAF)
        return len(leaves)

    @property
    def depth(self) -> int:
        return len(self._levels)

    def node_count(self) -> int:
        """Materialized (non-default) nodes."""
        return len(self._nodes)
