"""Latency and energy cost constants for cryptographic operations.

The paper quotes per-cache-line fingerprint latencies of **321 ns for SHA-1**
and **312 ns for MD5** (Section III-C) and models energy after Westermann et
al.'s SHA-candidate power study [56].  DeWrite's CRC is "lightweight": the
paper's Figure 17 attributes ~10 % of DeWrite's write latency to fingerprint
computation, which with the PCM write path at a few hundred nanoseconds puts
the CRC around tens of nanoseconds; we default to 40 ns.

Counter-mode encryption (CME) overlaps one-time-pad generation with other
work; the residual XOR-and-forward latency on the write path is small.  We
default to 40 ns exposed latency and charge full AES energy per line.

Every value is a dataclass field, so experiments can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..common.errors import ConfigError


@dataclass(frozen=True)
class OperationCostModel:
    """Latency/energy of one operation applied to one 64-byte cache line."""

    latency_ns: float
    energy_nj: float

    def __post_init__(self) -> None:
        if self.latency_ns < 0:
            raise ConfigError("latency must be non-negative")
        if self.energy_nj < 0:
            raise ConfigError("energy must be non-negative")


@dataclass(frozen=True)
class CryptoCosts:
    """The full table of per-line crypto operation costs.

    Defaults follow the paper's quoted latencies and an energy model scaled
    from Westermann et al. [56]: hashing a 64-byte block costs on the order
    of single-digit nanojoules, with CRC roughly an order of magnitude
    cheaper than cryptographic hashes, and AES counter-mode encryption
    between the two.
    """

    sha1: OperationCostModel = field(
        default_factory=lambda: OperationCostModel(latency_ns=321.0, energy_nj=4.6))
    md5: OperationCostModel = field(
        default_factory=lambda: OperationCostModel(latency_ns=312.0, energy_nj=4.4))
    crc32: OperationCostModel = field(
        default_factory=lambda: OperationCostModel(latency_ns=40.0, energy_nj=0.5))
    #: ECC has zero *marginal* cost: the controller computes it regardless of
    #: deduplication, so reusing it as a fingerprint is free.
    ecc: OperationCostModel = field(
        default_factory=lambda: OperationCostModel(latency_ns=0.0, energy_nj=0.0))
    #: Counter-mode encryption of one line: exposed latency after pad overlap.
    encrypt: OperationCostModel = field(
        default_factory=lambda: OperationCostModel(latency_ns=40.0, energy_nj=2.1))
    #: Counter-mode decryption (same structure as encryption).
    decrypt: OperationCostModel = field(
        default_factory=lambda: OperationCostModel(latency_ns=40.0, energy_nj=2.1))
    #: Byte-by-byte comparison of two on-chip 64-byte buffers.  Simple wide
    #: XOR/compare logic; effectively one controller cycle.
    compare: OperationCostModel = field(
        default_factory=lambda: OperationCostModel(latency_ns=2.0, energy_nj=0.05))

    def by_name(self) -> Dict[str, OperationCostModel]:
        return {
            "sha1": self.sha1,
            "md5": self.md5,
            "crc32": self.crc32,
            "ecc": self.ecc,
            "encrypt": self.encrypt,
            "decrypt": self.decrypt,
            "compare": self.compare,
        }


#: Module-level default cost table used when a scheme is not handed one.
DEFAULT_COSTS = CryptoCosts()
