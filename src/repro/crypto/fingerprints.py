"""Fingerprint engines: SHA-1, MD5, CRC-32, and truncated variants.

Each engine computes a *real* digest over the 64-byte line (so collision
behaviour is genuine, not synthetic) and carries the latency/energy cost
model used by the timing simulation.  The ECC fingerprint lives in
:mod:`repro.ecc.codec` because it is derived from the ECC codec rather than
a hash; it satisfies the same :class:`FingerprintEngine` protocol.

Fingerprint widths matter for two of the paper's analyses:

* Figure 8 compares collision probabilities across fingerprint types; the
  truncated engines (:class:`TruncatedEngine`) let experiments study width
  effects directly.
* Figure 19's metadata overhead depends on stored fingerprint size
  (SHA-1: 20 bytes, DeWrite CRC entry: 16 bytes + 3 bits, ESD ECC: 8 bytes).
"""

from __future__ import annotations

import hashlib
import zlib
from typing import Protocol, runtime_checkable

from ..common.types import validate_line
from ..perf import memo as _memo
from .costs import DEFAULT_COSTS, CryptoCosts, OperationCostModel

#: Capacity of each per-engine fingerprint memo cache.
_FP_CACHE_CAPACITY = 1 << 16


@runtime_checkable
class FingerprintEngine(Protocol):
    """Protocol implemented by every fingerprint generator."""

    #: Short identifier ("sha1", "crc32", "ecc", ...).
    name: str
    #: Fingerprint width in bits.
    bits: int
    #: Exposed latency of computing one fingerprint on the write path.
    latency_ns: float
    #: Energy of computing one fingerprint.
    energy_nj: float

    def fingerprint(self, data: bytes) -> int:
        """Digest of a 64-byte cache line as an unsigned integer."""
        ...

    def fingerprint_size_bytes(self) -> int:
        """Bytes needed to store one fingerprint in a metadata table."""
        ...


class _HashEngineBase:
    """Shared plumbing for digest-backed engines.

    ``fingerprint`` is memoized on line content (:mod:`repro.perf`): engines
    of the same ``name`` share one process-global content-addressed cache
    (sound — the digest is a pure function of the data), so a simulation
    that fingerprints the same hot line thousands of times hashes it once.
    Subclasses implement :meth:`_digest` with the actual computation.
    """

    name = "abstract"
    bits = 0

    def __init__(self, cost: OperationCostModel) -> None:
        self.latency_ns = cost.latency_ns
        self.energy_nj = cost.energy_nj
        self._cache = None

    def _digest(self, data: bytes) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def fingerprint(self, data: bytes) -> int:
        if not _memo.ENABLED:
            return self._digest(data)
        cache = self._cache
        if cache is None:
            cache = self._cache = _memo.get_cache(f"fp_{self.name}",
                                                  _FP_CACHE_CAPACITY)
        value = cache.get(data)
        if value is None:
            value = self._digest(data)
            cache.put(data, value)
        return value

    def prime_batch(self, contents) -> int:
        """Digest and cache every uncached content (vec epoch priming).

        The vectorized engine hands each epoch's *unique* write contents
        here before the per-line resolution, so a content repeated across
        the epoch is digested once and every later ``fingerprint`` call
        hits.  Batch-computed entries are charged as cache misses — the
        digest was actually computed — keeping memo statistics truthful.
        No-op when the fast path is disabled (there is no cache to prime).

        Returns:
            The number of digests computed and inserted.
        """
        if not _memo.ENABLED:
            return 0
        cache = self._cache
        if cache is None:
            cache = self._cache = _memo.get_cache(f"fp_{self.name}",
                                                  _FP_CACHE_CAPACITY)
        digest = self._digest
        primed = 0
        for data in contents:
            if data in cache:
                continue
            cache.misses += 1
            cache.put(data, digest(data))
            primed += 1
        return primed

    def fingerprint_size_bytes(self) -> int:
        return (self.bits + 7) // 8

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}(bits={self.bits}, "
                f"latency_ns={self.latency_ns})")


class SHA1Engine(_HashEngineBase):
    """Full 160-bit SHA-1, the fingerprint of the Dedup_SHA1 scheme."""

    name = "sha1"
    bits = 160

    def __init__(self, costs: CryptoCosts = DEFAULT_COSTS) -> None:
        super().__init__(costs.sha1)

    def _digest(self, data: bytes) -> int:
        validate_line(data)
        return int.from_bytes(hashlib.sha1(data).digest(), "big")


class MD5Engine(_HashEngineBase):
    """Full 128-bit MD5 (evaluated in the paper's motivation)."""

    name = "md5"
    bits = 128

    def __init__(self, costs: CryptoCosts = DEFAULT_COSTS) -> None:
        super().__init__(costs.md5)

    def _digest(self, data: bytes) -> int:
        validate_line(data)
        return int.from_bytes(hashlib.md5(data).digest(), "big")


class CRC32Engine(_HashEngineBase):
    """32-bit CRC, the lightweight fingerprint DeWrite uses.

    CRC's short width gives it the highest collision probability of the
    compared fingerprints (Figure 8), which is why DeWrite must confirm
    candidate duplicates with a read-and-compare.
    """

    name = "crc32"
    bits = 32

    def __init__(self, costs: CryptoCosts = DEFAULT_COSTS) -> None:
        super().__init__(costs.crc32)

    def _digest(self, data: bytes) -> int:
        validate_line(data)
        return zlib.crc32(data) & 0xFFFFFFFF


class TruncatedEngine(_HashEngineBase):
    """A width-truncated view of another engine (for collision studies).

    Delegates to the inner engine's (memoized) ``fingerprint``; the mask is
    too cheap to be worth a second cache, so this override replaces the
    base-class memo entirely.
    """

    def __init__(self, inner: FingerprintEngine, bits: int) -> None:
        if not 1 <= bits <= inner.bits:
            raise ValueError(
                f"cannot truncate {inner.name} ({inner.bits} bits) to {bits}")
        super().__init__(OperationCostModel(latency_ns=inner.latency_ns,
                                            energy_nj=inner.energy_nj))
        self._inner = inner
        self.bits = bits
        self.name = f"{inner.name}_{bits}"

    def fingerprint(self, data: bytes) -> int:
        return self._inner.fingerprint(data) & ((1 << self.bits) - 1)

    def prime_batch(self, contents) -> int:
        # Delegate: the memo cache being primed is the *inner* engine's.
        return self._inner.prime_batch(contents)


def make_engine(name: str, costs: CryptoCosts = DEFAULT_COSTS) -> FingerprintEngine:
    """Factory for the named fingerprint engine.

    Accepts ``sha1``, ``md5``, ``crc32``, and ``ecc``.
    """
    if name == "sha1":
        return SHA1Engine(costs)
    if name == "md5":
        return MD5Engine(costs)
    if name == "crc32":
        return CRC32Engine(costs)
    if name == "ecc":
        # Local import: ecc depends on common only, no cycle, but keep the
        # crypto package importable without the codec tables built.
        from ..ecc.codec import ECCFingerprintEngine
        return ECCFingerprintEngine()
    raise ValueError(f"unknown fingerprint engine {name!r}")
