"""Crypto substrate: fingerprint engines, counter-mode encryption, cost models."""

from .costs import DEFAULT_COSTS, CryptoCosts, OperationCostModel
from .counter_mode import (
    CounterModeEngine,
    CounterTable,
    EncryptedLine,
    demonstrate_diffusion,
)
from .integrity import CounterIntegrityTree
from .fingerprints import (
    CRC32Engine,
    FingerprintEngine,
    MD5Engine,
    SHA1Engine,
    TruncatedEngine,
    make_engine,
)

__all__ = [
    "CRC32Engine",
    "CounterIntegrityTree",
    "CounterModeEngine",
    "CounterTable",
    "CryptoCosts",
    "DEFAULT_COSTS",
    "EncryptedLine",
    "FingerprintEngine",
    "MD5Engine",
    "OperationCostModel",
    "SHA1Engine",
    "TruncatedEngine",
    "demonstrate_diffusion",
    "make_engine",
]
