"""Split-counter organization for counter-mode encryption.

Production secure memories (DEUCE, SuperMem, Osiris lineage — the works
the paper builds its encryption assumptions on) do not store a full 64-bit
counter per line: they keep one large **major** counter per page plus a
small **minor** counter per line.  The pad derives from (major, minor).
When a line's minor counter overflows, the page's major counter advances
and *every line in the page is re-encrypted* — a burst of extra writes.

This module provides that organization as an alternative backing store
for :class:`~repro.crypto.counter_mode.CounterModeEngine`-style pads, with
the overflow/re-encryption behaviour observable for experiments: minor
width trades metadata space against re-encryption storms.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..common.errors import ConfigError
from ..common.types import CACHE_LINE_SIZE, validate_line

#: Cache lines per page (4 KiB pages of 64 B lines).
LINES_PER_PAGE = 64


@dataclass(frozen=True)
class SplitCounterConfig:
    """Geometry of the split-counter organization."""

    minor_bits: int = 7
    major_bits: int = 64
    lines_per_page: int = LINES_PER_PAGE

    def __post_init__(self) -> None:
        if not 1 <= self.minor_bits <= 16:
            raise ConfigError("minor_bits must be 1..16")
        if not 8 <= self.major_bits <= 64:
            raise ConfigError("major_bits must be 8..64")
        if self.lines_per_page <= 0:
            raise ConfigError("lines_per_page must be positive")

    @property
    def minor_max(self) -> int:
        return (1 << self.minor_bits) - 1

    def metadata_bits_per_line(self) -> float:
        """Counter metadata cost per line (minor + amortized major)."""
        return self.minor_bits + self.major_bits / self.lines_per_page


@dataclass
class _PageCounters:
    major: int = 1
    minors: Dict[int, int] = field(default_factory=dict)


class SplitCounterTable:
    """Per-page major + per-line minor counters with overflow handling.

    Args:
        config: counter geometry.
        on_page_reencrypt: callback invoked with (page_number, line_numbers)
            when a minor overflow forces a page re-encryption; the caller
            (memory controller model) charges the write burst.
    """

    def __init__(self, config: Optional[SplitCounterConfig] = None,
                 on_page_reencrypt: Optional[Callable] = None) -> None:
        self.config = config or SplitCounterConfig()
        self._pages: Dict[int, _PageCounters] = {}
        self._on_reencrypt = on_page_reencrypt
        self.page_reencryptions = 0
        self.reencrypted_lines = 0

    def _page_of(self, line_number: int) -> Tuple[int, int]:
        return (line_number // self.config.lines_per_page,
                line_number % self.config.lines_per_page)

    def current(self, line_number: int) -> Tuple[int, int]:
        """(major, minor) pair a read would use."""
        page_number, slot = self._page_of(line_number)
        page = self._pages.get(page_number)
        if page is None:
            return 1, 0
        return page.major, page.minors.get(slot, 0)

    def advance(self, line_number: int) -> Tuple[int, int]:
        """Advance for a write; handles minor overflow.

        Returns the (major, minor) pair the write's pad must use.
        """
        page_number, slot = self._page_of(line_number)
        page = self._pages.setdefault(page_number, _PageCounters())
        minor = page.minors.get(slot, 0) + 1
        if minor > self.config.minor_max:
            # Overflow: bump the major, reset every minor, re-encrypt the
            # page's written lines under the new major.  Reset slots stay
            # in the dict at 0 so *future* overflows still know they hold
            # data needing re-encryption.
            page.major += 1
            touched = sorted(page.minors)
            page.minors = {s: 0 for s in touched}
            page.minors[slot] = 1
            self.page_reencryptions += 1
            self.reencrypted_lines += len(touched)
            if self._on_reencrypt is not None:
                base = page_number * self.config.lines_per_page
                self._on_reencrypt(page_number,
                                   [base + s for s in touched if s != slot])
            return page.major, 1
        page.minors[slot] = minor
        return page.major, minor

    def touched_pages(self) -> int:
        return len(self._pages)

    def metadata_bytes(self, num_lines_touched: int) -> int:
        """Approximate counter-store footprint for the touched region."""
        bits = (self.touched_pages() * self.config.major_bits
                + num_lines_touched * self.config.minor_bits)
        return (bits + 7) // 8


class SplitCounterModeEngine:
    """Counter-mode encryption backed by split counters.

    Functionally equivalent to
    :class:`~repro.crypto.counter_mode.CounterModeEngine` (keyed pad,
    XOR, per-write freshness) but the pad binds to (line, major, minor)
    and minor overflow triggers page re-encryption.  The engine keeps the
    plaintext of live lines so re-encryption is exact.
    """

    def __init__(self, key: bytes = b"\x29" * 32,
                 config: Optional[SplitCounterConfig] = None) -> None:
        if len(key) < 16:
            raise ValueError("key must be at least 16 bytes")
        self._key = bytes(key)
        self.counters = SplitCounterTable(config,
                                          on_page_reencrypt=self._reencrypt)
        #: line -> current plaintext (needed to re-encrypt on overflow).
        self._plaintexts: Dict[int, bytes] = {}
        #: line -> current ciphertext (the device-facing view).
        self._ciphertexts: Dict[int, bytes] = {}
        self.encrypt_count = 0
        #: Lines rewritten due to minor-counter overflow (extra PCM writes
        #: a real system would issue).
        self.overflow_writes = 0

    def _pad(self, line_number: int, major: int, minor: int) -> bytes:
        pads = []
        for block in range(2):
            msg = self._key + struct.pack("<QQIB", line_number, major,
                                          minor, block)
            pads.append(hashlib.sha256(msg).digest())
        return b"".join(pads)

    def _apply(self, data: bytes, pad: bytes) -> bytes:
        return bytes(a ^ b for a, b in zip(data, pad))

    def _reencrypt(self, _page_number: int, line_numbers: List[int]) -> None:
        for line in line_numbers:
            plaintext = self._plaintexts.get(line)
            if plaintext is None:
                continue
            major, minor = self.counters.current(line)
            self._ciphertexts[line] = self._apply(
                plaintext, self._pad(line, major, minor))
            self.overflow_writes += 1

    def encrypt(self, plaintext: bytes, line_number: int) -> bytes:
        """Encrypt a line; may trigger a page re-encryption burst."""
        validate_line(plaintext)
        self._plaintexts[line_number] = bytes(plaintext)
        major, minor = self.counters.advance(line_number)
        ciphertext = self._apply(plaintext, self._pad(line_number, major,
                                                      minor))
        self._ciphertexts[line_number] = ciphertext
        self.encrypt_count += 1
        return ciphertext

    def decrypt(self, line_number: int) -> bytes:
        """Decrypt the line's current ciphertext."""
        ciphertext = self._ciphertexts.get(line_number)
        if ciphertext is None:
            return bytes(CACHE_LINE_SIZE)
        major, minor = self.counters.current(line_number)
        return self._apply(ciphertext, self._pad(line_number, major, minor))

    def stored_ciphertext(self, line_number: int) -> Optional[bytes]:
        return self._ciphertexts.get(line_number)
