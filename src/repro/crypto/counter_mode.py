"""Counter-mode encryption (CME) for cache lines.

ESD encrypts every line written to NVMM with counter-mode encryption
(Section III-A): a per-line counter is incremented on each write, a one-time
pad is derived from ``(key, physical line, counter)``, and the ciphertext is
``plaintext XOR pad``.  Counter mode matters to the design twice over:

* **Deduplication must happen before encryption.**  The pad depends on the
  line address and write counter, so identical plaintexts encrypt to
  different ciphertexts — the "strong diffusion effect" that rules out
  deduplication-after-encryption (Section II-C).  This property is real in
  this implementation and is asserted by tests.
* **Pad generation can overlap other work**, so only a small residual
  latency lands on the critical path (modeled by
  :class:`~repro.crypto.costs.CryptoCosts.encrypt`).

The pad is derived with SHA-256 as a keyed PRF.  This is a *functional
stand-in* for the AES counter mode hardware the paper assumes: it gives the
required properties (deterministic keyed pad, per-(address, counter)
uniqueness, invertibility by XOR) without needing an AES implementation; the
timing/energy model is carried separately in :mod:`repro.crypto.costs`.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Dict, NamedTuple, Tuple

from ..common.types import CACHE_LINE_SIZE, validate_line
from ..perf import memo as _memo
from .costs import DEFAULT_COSTS, CryptoCosts

#: Pad memo (:mod:`repro.perf.memo`).  Encryption advances the write counter,
#: so encrypt-side pads are always fresh; the hits come from the read path
#: (``decrypt_at`` re-derives the pad minted at encrypt time) and from ESD's
#: read-for-comparison decrypts of candidate duplicate frames.
_PAD_CACHE = _memo.get_cache("counter_pad", 1 << 16)
#: The cache's backing OrderedDict, for the inlined lookup in decrypt_at()
#: (MemoCache.reset() clears this dict in place, never reassigns it).
_PAD_DATA = _PAD_CACHE._data


def _derive_pad_uncached(key: bytes, line_number: int, counter: int) -> bytes:
    """64-byte one-time pad for ``(key, line, counter)``.

    Two SHA-256 invocations (domain-separated by a block index) produce the
    64 pad bytes.
    """
    pads = []
    for block in range(2):
        msg = key + struct.pack("<QQB", line_number, counter, block)
        pads.append(hashlib.sha256(msg).digest())
    return b"".join(pads)


def _derive_pad(key: bytes, line_number: int, counter: int) -> bytes:
    """Memoized pad derivation.

    The cache key covers all three arguments — including the engine key, so
    two engines with different keys can never serve each other's pads —
    even though in any one simulation the key is a per-engine constant and
    the effective key is ``(line, counter)``.
    """
    if _memo.ENABLED:
        memo_key = (key, line_number, counter)
        pad = _PAD_CACHE.get(memo_key)
        if pad is not None:
            return pad
        pad = _derive_pad_uncached(key, line_number, counter)
        _PAD_CACHE.put(memo_key, pad)
        return pad
    return _derive_pad_uncached(key, line_number, counter)


def _xor_line_reference(a: bytes, b: bytes) -> bytes:
    """Reference per-byte XOR (the slow path's obviously-correct form)."""
    return bytes(p ^ q for p, q in zip(a, b))


def _xor_line(a: bytes, b: bytes) -> bytes:
    """XOR two 64-byte lines.

    Fast path: one ``int.from_bytes``/XOR/``to_bytes`` round trip over a
    single 512-bit integer runs in C and is an order of magnitude cheaper
    than the per-byte generator expression, with bit-identical output
    (asserted against the reference in ``tests/test_perf_parity.py``).
    """
    if _memo.ENABLED:
        return (int.from_bytes(a, "little")
                ^ int.from_bytes(b, "little")).to_bytes(CACHE_LINE_SIZE,
                                                        "little")
    return _xor_line_reference(a, b)


@dataclass
class CounterTable:
    """Per-physical-line write counters backing counter-mode encryption.

    Real systems store minor/major counters in NVMM with an on-chip counter
    cache; for the purposes of this reproduction the table is exact and
    in-memory, with its state observable for overflow studies.
    """

    counters: Dict[int, int] = field(default_factory=dict)
    #: Counter width in bits (64-bit monotonic counters never overflow in
    #: simulation-scale runs, but the width is kept explicit).
    width_bits: int = 64

    def current(self, line_number: int) -> int:
        return self.counters.get(line_number, 0)

    def advance(self, line_number: int) -> int:
        """Increment and return the new counter for a line (on write)."""
        value = self.counters.get(line_number, 0) + 1
        if value >= (1 << self.width_bits):
            raise OverflowError(f"counter overflow on line {line_number}")
        self.counters[line_number] = value
        return value

    def __len__(self) -> int:
        return len(self.counters)


class EncryptedLine(NamedTuple):
    """Ciphertext plus the counter needed to decrypt it.

    A ``NamedTuple`` rather than a frozen dataclass: one is built per
    encrypted write, and tuple construction is C-level.
    """

    ciphertext: bytes
    line_number: int
    counter: int


class CounterModeEngine:
    """Counter-mode encrypt/decrypt for 64-byte cache lines.

    Args:
        key: symmetric key held inside the (trusted) processor chip.
        costs: latency/energy cost table for the timing model.
    """

    def __init__(self, key: bytes = b"\x13" * 32,
                 costs: CryptoCosts = DEFAULT_COSTS) -> None:
        if len(key) < 16:
            raise ValueError("key must be at least 16 bytes")
        self._key = bytes(key)
        self._counters = CounterTable()
        # Counter-overflow limit hoisted for the fast-path encrypt branch.
        self._counter_limit = 1 << self._counters.width_bits
        self.costs = costs
        #: Number of encrypt operations performed (for energy accounting).
        self.encrypt_count = 0
        #: Number of decrypt operations performed.
        self.decrypt_count = 0

    @property
    def counters(self) -> CounterTable:
        return self._counters

    def encrypt(self, plaintext: bytes, line_number: int) -> EncryptedLine:
        """Encrypt a line for storage at physical line ``line_number``.

        Advances the line's write counter, so re-encrypting identical
        plaintext at the same address still produces fresh ciphertext.
        """
        if _memo.ENABLED:
            # Fast path: validation narrowed to the hot ``bytes`` case, and
            # counter advance, pad memo, and XOR inlined (this runs once
            # per encrypted write).  Encrypt-side pads are always cache
            # misses — the counter just advanced — but the lookup keeps the
            # cache warm for the read path's re-derivation.
            if (plaintext.__class__ is not bytes
                    or len(plaintext) != CACHE_LINE_SIZE):
                validate_line(plaintext)
            if line_number < 0:
                raise ValueError("line number must be non-negative")
            counters = self._counters.counters
            counter = counters.get(line_number, 0) + 1
            if counter >= self._counter_limit:
                raise OverflowError(f"counter overflow on line {line_number}")
            counters[line_number] = counter
            memo_key = (self._key, line_number, counter)
            pad = _PAD_CACHE.get(memo_key)
            if pad is None:
                pad = _derive_pad_uncached(self._key, line_number, counter)
                _PAD_CACHE.put(memo_key, pad)
            self.encrypt_count += 1
            return EncryptedLine(
                (int.from_bytes(plaintext, "little")
                 ^ int.from_bytes(pad, "little")).to_bytes(CACHE_LINE_SIZE,
                                                           "little"),
                line_number, counter)
        validate_line(plaintext)
        if line_number < 0:
            raise ValueError("line number must be non-negative")
        counter = self._counters.advance(line_number)
        pad = _derive_pad(self._key, line_number, counter)
        ciphertext = _xor_line(plaintext, pad)
        self.encrypt_count += 1
        return EncryptedLine(ciphertext=ciphertext, line_number=line_number,
                             counter=counter)

    def decrypt(self, encrypted: EncryptedLine) -> bytes:
        """Recover the plaintext of a previously encrypted line."""
        if len(encrypted.ciphertext) != CACHE_LINE_SIZE:
            raise ValueError("ciphertext must be one cache line")
        pad = _derive_pad(self._key, encrypted.line_number, encrypted.counter)
        self.decrypt_count += 1
        return _xor_line(encrypted.ciphertext, pad)

    def decrypt_at(self, ciphertext: bytes, line_number: int) -> bytes:
        """Decrypt using the line's *current* counter (normal read path).

        Equivalent to :meth:`decrypt` of an :class:`EncryptedLine` built
        from the current counter, minus the wrapper allocation — this is
        the hot decrypt entry point (every read fill and every ESD
        read-for-comparison lands here).  The slow path keeps the original
        wrapper-based form.
        """
        if _memo.ENABLED:
            if len(ciphertext) != CACHE_LINE_SIZE:
                raise ValueError("ciphertext must be one cache line")
            # Counter lookup, pad memo (with its hit/miss accounting), and
            # XOR inlined — this is the hottest crypto entry point (every
            # read fill and every ESD read-for-comparison).
            counter = self._counters.counters.get(line_number, 0)
            memo_key = (self._key, line_number, counter)
            pad = _PAD_DATA.get(memo_key)
            if pad is None:
                _PAD_CACHE.misses += 1
                pad = _derive_pad_uncached(self._key, line_number, counter)
                if len(_PAD_DATA) >= _PAD_CACHE.capacity:
                    _PAD_DATA.popitem(last=False)
                    _PAD_CACHE.evictions += 1
                _PAD_DATA[memo_key] = pad
            else:
                _PAD_CACHE.hits += 1
                _PAD_DATA.move_to_end(memo_key)
            self.decrypt_count += 1
            return (int.from_bytes(ciphertext, "little")
                    ^ int.from_bytes(pad, "little")).to_bytes(
                        CACHE_LINE_SIZE, "little")
        counter = self._counters.current(line_number)
        return self.decrypt(EncryptedLine(ciphertext=ciphertext,
                                          line_number=line_number,
                                          counter=counter))

    # ---------------------------------------------------------------
    # Cost model accessors
    # ---------------------------------------------------------------

    @property
    def encrypt_latency_ns(self) -> float:
        return self.costs.encrypt.latency_ns

    @property
    def encrypt_energy_nj(self) -> float:
        return self.costs.encrypt.energy_nj

    @property
    def decrypt_latency_ns(self) -> float:
        return self.costs.decrypt.latency_ns

    @property
    def decrypt_energy_nj(self) -> float:
        return self.costs.decrypt.energy_nj

    def total_crypto_energy_nj(self) -> float:
        """Energy consumed by all encrypt/decrypt operations so far."""
        return (self.encrypt_count * self.encrypt_energy_nj
                + self.decrypt_count * self.decrypt_energy_nj)


def demonstrate_diffusion(engine: CounterModeEngine, plaintext: bytes,
                          line_a: int, line_b: int) -> Tuple[bytes, bytes]:
    """Encrypt the same plaintext at two addresses; ciphertexts differ.

    This is the property that makes deduplication-after-encryption (DaE)
    unworkable and motivates ESD's dedup-before-encryption pipeline.
    """
    ct_a = engine.encrypt(plaintext, line_a).ciphertext
    ct_b = engine.encrypt(plaintext, line_b).ciphertext
    return ct_a, ct_b
