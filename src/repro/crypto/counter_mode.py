"""Counter-mode encryption (CME) for cache lines.

ESD encrypts every line written to NVMM with counter-mode encryption
(Section III-A): a per-line counter is incremented on each write, a one-time
pad is derived from ``(key, physical line, counter)``, and the ciphertext is
``plaintext XOR pad``.  Counter mode matters to the design twice over:

* **Deduplication must happen before encryption.**  The pad depends on the
  line address and write counter, so identical plaintexts encrypt to
  different ciphertexts — the "strong diffusion effect" that rules out
  deduplication-after-encryption (Section II-C).  This property is real in
  this implementation and is asserted by tests.
* **Pad generation can overlap other work**, so only a small residual
  latency lands on the critical path (modeled by
  :class:`~repro.crypto.costs.CryptoCosts.encrypt`).

The pad is derived with SHA-256 as a keyed PRF.  This is a *functional
stand-in* for the AES counter mode hardware the paper assumes: it gives the
required properties (deterministic keyed pad, per-(address, counter)
uniqueness, invertibility by XOR) without needing an AES implementation; the
timing/energy model is carried separately in :mod:`repro.crypto.costs`.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..common.types import CACHE_LINE_SIZE, validate_line
from .costs import DEFAULT_COSTS, CryptoCosts


def _derive_pad(key: bytes, line_number: int, counter: int) -> bytes:
    """64-byte one-time pad for ``(key, line, counter)``.

    Two SHA-256 invocations (domain-separated by a block index) produce the
    64 pad bytes.
    """
    pads = []
    for block in range(2):
        msg = key + struct.pack("<QQB", line_number, counter, block)
        pads.append(hashlib.sha256(msg).digest())
    return b"".join(pads)


@dataclass
class CounterTable:
    """Per-physical-line write counters backing counter-mode encryption.

    Real systems store minor/major counters in NVMM with an on-chip counter
    cache; for the purposes of this reproduction the table is exact and
    in-memory, with its state observable for overflow studies.
    """

    counters: Dict[int, int] = field(default_factory=dict)
    #: Counter width in bits (64-bit monotonic counters never overflow in
    #: simulation-scale runs, but the width is kept explicit).
    width_bits: int = 64

    def current(self, line_number: int) -> int:
        return self.counters.get(line_number, 0)

    def advance(self, line_number: int) -> int:
        """Increment and return the new counter for a line (on write)."""
        value = self.counters.get(line_number, 0) + 1
        if value >= (1 << self.width_bits):
            raise OverflowError(f"counter overflow on line {line_number}")
        self.counters[line_number] = value
        return value

    def __len__(self) -> int:
        return len(self.counters)


@dataclass(frozen=True)
class EncryptedLine:
    """Ciphertext plus the counter needed to decrypt it."""

    ciphertext: bytes
    line_number: int
    counter: int


class CounterModeEngine:
    """Counter-mode encrypt/decrypt for 64-byte cache lines.

    Args:
        key: symmetric key held inside the (trusted) processor chip.
        costs: latency/energy cost table for the timing model.
    """

    def __init__(self, key: bytes = b"\x13" * 32,
                 costs: CryptoCosts = DEFAULT_COSTS) -> None:
        if len(key) < 16:
            raise ValueError("key must be at least 16 bytes")
        self._key = bytes(key)
        self._counters = CounterTable()
        self.costs = costs
        #: Number of encrypt operations performed (for energy accounting).
        self.encrypt_count = 0
        #: Number of decrypt operations performed.
        self.decrypt_count = 0

    @property
    def counters(self) -> CounterTable:
        return self._counters

    def encrypt(self, plaintext: bytes, line_number: int) -> EncryptedLine:
        """Encrypt a line for storage at physical line ``line_number``.

        Advances the line's write counter, so re-encrypting identical
        plaintext at the same address still produces fresh ciphertext.
        """
        validate_line(plaintext)
        if line_number < 0:
            raise ValueError("line number must be non-negative")
        counter = self._counters.advance(line_number)
        pad = _derive_pad(self._key, line_number, counter)
        ciphertext = bytes(p ^ q for p, q in zip(plaintext, pad))
        self.encrypt_count += 1
        return EncryptedLine(ciphertext=ciphertext, line_number=line_number,
                             counter=counter)

    def decrypt(self, encrypted: EncryptedLine) -> bytes:
        """Recover the plaintext of a previously encrypted line."""
        if len(encrypted.ciphertext) != CACHE_LINE_SIZE:
            raise ValueError("ciphertext must be one cache line")
        pad = _derive_pad(self._key, encrypted.line_number, encrypted.counter)
        self.decrypt_count += 1
        return bytes(c ^ q for c, q in zip(encrypted.ciphertext, pad))

    def decrypt_at(self, ciphertext: bytes, line_number: int) -> bytes:
        """Decrypt using the line's *current* counter (normal read path)."""
        counter = self._counters.current(line_number)
        return self.decrypt(EncryptedLine(ciphertext=ciphertext,
                                          line_number=line_number,
                                          counter=counter))

    # ---------------------------------------------------------------
    # Cost model accessors
    # ---------------------------------------------------------------

    @property
    def encrypt_latency_ns(self) -> float:
        return self.costs.encrypt.latency_ns

    @property
    def encrypt_energy_nj(self) -> float:
        return self.costs.encrypt.energy_nj

    @property
    def decrypt_latency_ns(self) -> float:
        return self.costs.decrypt.latency_ns

    @property
    def decrypt_energy_nj(self) -> float:
        return self.costs.decrypt.energy_nj

    def total_crypto_energy_nj(self) -> float:
        """Energy consumed by all encrypt/decrypt operations so far."""
        return (self.encrypt_count * self.encrypt_energy_nj
                + self.decrypt_count * self.decrypt_energy_nj)


def demonstrate_diffusion(engine: CounterModeEngine, plaintext: bytes,
                          line_a: int, line_b: int) -> Tuple[bytes, bytes]:
    """Encrypt the same plaintext at two addresses; ciphertexts differ.

    This is the property that makes deduplication-after-encryption (DaE)
    unworkable and motivates ESD's dedup-before-encryption pipeline.
    """
    ct_a = engine.encrypt(plaintext, line_a).ciphertext
    ct_b = engine.encrypt(plaintext, line_b).ciphertext
    return ct_a, ct_b
