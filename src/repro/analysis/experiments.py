"""One reproduction function per table/figure of the paper's evaluation.

Each ``figN_*`` function runs the necessary simulations and returns a
result object whose ``render()`` prints the same rows/series the paper
reports.  Figures 4, 6, 7, 9, 10 are schematics (no data) and have no
entry here; they are realized as code structure.

Scale note: absolute numbers come from a trace-driven Python model, not the
authors' gem5+NVMain testbed; the *shapes* (orderings, crossovers, rough
factors) are the reproduction target.  See EXPERIMENTS.md for paper-vs-
measured values and the per-experiment deviations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..common.config import SystemConfig
from ..common.stats import geometric_mean
from ..common.types import CACHE_LINE_SIZE, WritePathStage
from ..crypto.fingerprints import CRC32Engine, MD5Engine, SHA1Engine
from ..ecc.codec import ECCFingerprintEngine
from ..registry import scheme_names
from ..sim.engine import EngineConfig
from ..sim.metrics import SimulationResult
from ..sim.runner import ResultGrid, run_app, run_grid, ExperimentConfig, scaled_system_config
from ..workloads.analysis import (
    BUCKETS,
    content_locality_headline,
    duplicate_stats,
    reference_count_distribution,
)
from ..workloads.generator import TraceGenerator
from ..workloads.profiles import (
    TAIL_LATENCY_APPS,
    WORST_CASE_APPS,
    app_names,
    get_profile,
)
from .reporting import format_series, format_table, normalized_map

#: Subset used by the heavier grid figures when a full 20-app sweep is too
#: slow; spans both suites, both worst-case apps, and the extremes of the
#: duplicate-rate range.
REPRESENTATIVE_APPS: Tuple[str, ...] = (
    "gcc", "deepsjeng", "lbm", "leela", "mcf", "namd", "dedup", "x264",
)

DEDUP_SCHEMES: Tuple[str, ...] = ("Dedup_SHA1", "DeWrite", "ESD")


# ---------------------------------------------------------------------------
# Figure 1 — duplicate rate of cache lines per application
# ---------------------------------------------------------------------------

@dataclass
class Fig1Result:
    rates: Dict[str, float]

    @property
    def mean_rate(self) -> float:
        return sum(self.rates.values()) / len(self.rates)

    def render(self) -> str:
        rows = [[app, rate * 100.0] for app, rate in self.rates.items()]
        rows.append(["average", self.mean_rate * 100.0])
        return format_table(
            ["application", "duplicate_rate_%"], rows,
            title="Figure 1: duplicate rate of cache lines "
                  "(paper: 33.1%-99.9%, mean 62.9%)",
            float_format="{:.1f}")


def fig1_duplicate_rate(apps: Optional[Sequence[str]] = None,
                        requests: int = 20_000,
                        seed: int = 2023) -> Fig1Result:
    """Measure per-application duplicate rates on generated traces."""
    apps = list(apps) if apps is not None else app_names()
    rates = {}
    for app in apps:
        trace = TraceGenerator(app, seed=seed).generate_list(requests)
        rates[app] = duplicate_stats(trace).duplicate_rate
    return Fig1Result(rates=rates)


# ---------------------------------------------------------------------------
# Figure 2 — worst-case performance normalized to Baseline (leela, lbm)
# ---------------------------------------------------------------------------

@dataclass
class Fig2Result:
    #: {app: {scheme: normalized IPC}}
    normalized_ipc: Dict[str, Dict[str, float]]

    def render(self) -> str:
        rows = []
        for app, per_scheme in self.normalized_ipc.items():
            for scheme, value in per_scheme.items():
                rows.append([app, scheme, value])
        return format_table(
            ["application", "scheme", "ipc_vs_baseline"], rows,
            title="Figure 2: worst-case performance normalized to Baseline "
                  "(full dedup degrades; ESD does not)")


def fig2_worst_case(requests: int = 25_000,
                    system: Optional[SystemConfig] = None,
                    seed: int = 2023) -> Fig2Result:
    """The paper's worst-case apps: inline dedup *hurts* leela and lbm."""
    system = system or scaled_system_config()
    out: Dict[str, Dict[str, float]] = {}
    for app in WORST_CASE_APPS:
        results = run_app(app, scheme_names(), requests=requests,
                          system=system, seed=seed)
        base_ipc = results["Baseline"].ipc
        out[app] = {name: r.ipc / base_ipc for name, r in results.items()}
    return Fig2Result(normalized_ipc=out)


# ---------------------------------------------------------------------------
# Figure 3 — content locality (reference-count distribution)
# ---------------------------------------------------------------------------

@dataclass
class Fig3Result:
    #: bucket -> mean share of unique lines across apps (Figure 3a).
    unique_shares: Dict[str, float]
    #: bucket -> mean share of pre-dedup volume across apps (Figure 3b).
    volume_shares: Dict[str, float]
    #: the paper's headline: (num1000+ unique share, num1000+ volume share).
    headline: Tuple[float, float]

    def render(self) -> str:
        rows = [[b, self.unique_shares[b] * 100.0, self.volume_shares[b] * 100.0]
                for b in BUCKETS]
        table = format_table(
            ["bucket", "unique_lines_%", "pre_dedup_volume_%"], rows,
            title="Figure 3: reference-count distribution "
                  "(paper: num1000+ holds 0.08% of lines, 42.7% of volume)",
            float_format="{:.2f}")
        u, v = self.headline
        return (f"{table}\nheadline: num1000+ = {u * 100:.3f}% of unique "
                f"lines, {v * 100:.1f}% of volume")


def fig3_content_locality(apps: Optional[Sequence[str]] = None,
                          requests: int = 20_000,
                          seed: int = 2023) -> Fig3Result:
    """Bucket unique lines and volume by reference count, averaged."""
    apps = list(apps) if apps is not None else app_names()
    unique_acc = {b: 0.0 for b in BUCKETS}
    volume_acc = {b: 0.0 for b in BUCKETS}
    head_u = head_v = 0.0
    for app in apps:
        trace = TraceGenerator(app, seed=seed).generate_list(requests)
        dist = reference_count_distribution(trace)
        for b in BUCKETS:
            unique_acc[b] += dist.unique_share(b)
            volume_acc[b] += dist.volume_share(b)
        u, v = content_locality_headline(dist)
        head_u += u
        head_v += v
    n = len(apps)
    return Fig3Result(
        unique_shares={b: s / n for b, s in unique_acc.items()},
        volume_shares={b: s / n for b, s in volume_acc.items()},
        headline=(head_u / n, head_v / n))


# ---------------------------------------------------------------------------
# Figure 5 — fingerprint filter split and NVMM_lookup overhead
# ---------------------------------------------------------------------------

@dataclass
class Fig5Result:
    #: per app: (cache-filtered share of dups, NVMM-filtered share of dups,
    #: NVMM_lookup share of write latency)
    rows_by_app: Dict[str, Tuple[float, float, float]]

    def averages(self) -> Tuple[float, float, float]:
        vals = list(self.rows_by_app.values())
        n = len(vals)
        return (sum(v[0] for v in vals) / n, sum(v[1] for v in vals) / n,
                sum(v[2] for v in vals) / n)

    def render(self) -> str:
        rows = [[app, c * 100, m * 100, o * 100]
                for app, (c, m, o) in self.rows_by_app.items()]
        ac, am, ao = self.averages()
        rows.append(["average", ac * 100, am * 100, ao * 100])
        return format_table(
            ["application", "filtered_by_cache_%", "filtered_by_nvmm_%",
             "nvmm_lookup_latency_%"],
            rows,
            title="Figure 5: duplicate filter split and fingerprint "
                  "NVMM_lookup overhead (paper: 51.0% / 13.7% avg; lookup "
                  "costs up to 90.7%, avg 49.2%)",
            float_format="{:.1f}")


def fig5_lookup_overhead(apps: Optional[Sequence[str]] = None,
                         requests: int = 20_000,
                         system: Optional[SystemConfig] = None,
                         seed: int = 2023) -> Fig5Result:
    """Run the full-dedup scheme and split its duplicate detections."""
    apps = list(apps) if apps is not None else list(REPRESENTATIVE_APPS)
    system = system or scaled_system_config()
    out: Dict[str, Tuple[float, float, float]] = {}
    for app in apps:
        result = run_app(app, ["Dedup_SHA1"], requests=requests,
                         system=system, seed=seed)["Dedup_SHA1"]
        dups = max(1.0, float(result.dedup_eliminated))
        cache_f = result.extras.get("fp_cache_filtered", 0.0)
        nvmm_f = result.extras.get("fp_nvmm_filtered", 0.0)
        total_f = max(1.0, cache_f + nvmm_f)
        fractions = result.breakdown_fractions()
        lookup_share = fractions.get(WritePathStage.FINGERPRINT_NVMM_LOOKUP, 0.0)
        out[app] = (cache_f / total_f * (dups / dups),
                    nvmm_f / total_f,
                    lookup_share)
    return Fig5Result(rows_by_app=out)


# ---------------------------------------------------------------------------
# Figure 8 — fingerprint collision probabilities, normalized to CRC
# ---------------------------------------------------------------------------

@dataclass
class Fig8Result:
    #: engine name -> (bits, measured collision pairs, analytic probability)
    rows: Dict[str, Tuple[int, int, float]]
    pairs_compared: int

    def render(self) -> str:
        crc_prob = self.rows["crc32"][2]
        table_rows = []
        for name, (bits, measured, prob) in self.rows.items():
            table_rows.append([name, bits, measured, prob / crc_prob])
        return format_table(
            ["fingerprint", "bits", "measured_collisions",
             "prob_normalized_to_crc"],
            table_rows,
            title=(f"Figure 8: collision probabilities over "
                   f"{self.pairs_compared:.0f} random pairs "
                   "(CRC is orders of magnitude worse than ECC/MD5/SHA1)"),
            float_format="{:.3e}")


def fig8_collisions(num_lines: int = 60_000, seed: int = 2023) -> Fig8Result:
    """Empirically count fingerprint collisions over distinct random lines.

    A collision is two *different* lines with equal fingerprints.  The
    32-bit CRC shows measurable birthday collisions at this corpus size;
    the 64-bit ECC and the cryptographic hashes effectively never collide,
    so their analytic ``2**-bits`` probabilities carry the comparison.
    """
    rng = np.random.default_rng(seed)
    engines = [CRC32Engine(), ECCFingerprintEngine(), MD5Engine(), SHA1Engine()]
    seen_contents = set()
    fingerprints: Dict[str, Dict[int, int]] = {e.name: {} for e in engines}
    collisions = {e.name: 0 for e in engines}
    lines_made = 0
    while lines_made < num_lines:
        line = rng.integers(0, 256, CACHE_LINE_SIZE, dtype=np.uint8).tobytes()
        if line in seen_contents:
            continue
        seen_contents.add(line)
        lines_made += 1
        for engine in engines:
            fp = engine.fingerprint(line)
            bucket = fingerprints[engine.name]
            if fp in bucket:
                collisions[engine.name] += bucket[fp]
            bucket[fp] = bucket.get(fp, 0) + 1
    pairs = num_lines * (num_lines - 1) / 2
    rows = {}
    for engine in engines:
        analytic = 2.0 ** (-engine.bits)
        rows[engine.name] = (engine.bits, collisions[engine.name], analytic)
    return Fig8Result(rows=rows, pairs_compared=int(pairs))


# ---------------------------------------------------------------------------
# Shared evaluation grid for Figures 11-17
# ---------------------------------------------------------------------------

def run_evaluation_grid(apps: Optional[Sequence[str]] = None,
                        requests: int = 20_000,
                        system: Optional[SystemConfig] = None,
                        engine: Optional[EngineConfig] = None,
                        seed: int = 2023,
                        jobs: Optional[int] = None,
                        store=None) -> ResultGrid:
    """The (apps x 4 schemes) grid most evaluation figures read from.

    ``jobs``/``store`` route the grid through the ``repro.sweep``
    orchestrator (parallel workers, content-addressed result cache); the
    default stays serial and in-process.  Both paths produce byte-identical
    grids.
    """
    config = ExperimentConfig(
        apps=list(apps) if apps is not None else list(REPRESENTATIVE_APPS),
        schemes=list(scheme_names()),
        requests_per_app=requests,
        system=system or scaled_system_config(),
        engine=engine or EngineConfig(),
        seed=seed)
    if jobs is not None or store is not None:
        return run_grid(config, jobs=jobs, store=store)
    return run_grid(config)


def _apps_in(grid: ResultGrid) -> List[str]:
    seen: List[str] = []
    for app, _scheme in grid:
        if app not in seen:
            seen.append(app)
    return seen


# ---------------------------------------------------------------------------
# Figure 11 — write reduction normalized to Baseline
# ---------------------------------------------------------------------------

@dataclass
class Fig11Result:
    #: {app: {scheme: fraction of writes eliminated}}
    reductions: Dict[str, Dict[str, float]]

    def mean_reduction(self, scheme: str) -> float:
        vals = [per[scheme] for per in self.reductions.values()]
        return sum(vals) / len(vals)

    def render(self) -> str:
        rows = []
        for app, per in self.reductions.items():
            rows.append([app] + [per[s] * 100 for s in DEDUP_SCHEMES])
        rows.append(["average"] + [self.mean_reduction(s) * 100
                                   for s in DEDUP_SCHEMES])
        return format_table(
            ["application"] + [f"{s}_%" for s in DEDUP_SCHEMES], rows,
            title="Figure 11: cache-line write reduction vs Baseline "
                  "(paper: ESD 47.8% avg, ~18pp below full dedup)",
            float_format="{:.1f}")


def fig11_write_reduction(grid: ResultGrid) -> Fig11Result:
    reductions: Dict[str, Dict[str, float]] = {}
    for app in _apps_in(grid):
        base_writes = grid[(app, "Baseline")].pcm_data_writes
        per = {}
        for scheme in DEDUP_SCHEMES:
            writes = grid[(app, scheme)].pcm_data_writes
            per[scheme] = 1.0 - writes / base_writes if base_writes else 0.0
        reductions[app] = per
    return Fig11Result(reductions=reductions)


# ---------------------------------------------------------------------------
# Figures 12/13 — write/read speedups vs Baseline
# ---------------------------------------------------------------------------

@dataclass
class SpeedupResult:
    metric: str  # "write" | "read"
    #: {app: {scheme: speedup over Baseline}}
    speedups: Dict[str, Dict[str, float]]
    figure: str

    def best(self, scheme: str) -> float:
        return max(per[scheme] for per in self.speedups.values())

    def geomean(self, scheme: str) -> float:
        return geometric_mean([per[scheme] for per in self.speedups.values()])

    def render(self) -> str:
        from .charts import bar_chart
        rows = []
        for app, per in self.speedups.items():
            rows.append([app] + [per[s] for s in DEDUP_SCHEMES])
        rows.append(["geomean"] + [self.geomean(s) for s in DEDUP_SCHEMES])
        paper = ("paper: ESD up to 3.4x" if self.metric == "write"
                 else "paper: ESD up to 5.3x")
        table = format_table(
            ["application"] + list(DEDUP_SCHEMES), rows,
            title=f"{self.figure}: {self.metric} speedup vs Baseline ({paper})",
            float_format="{:.2f}")
        chart = bar_chart({s: self.geomean(s) for s in DEDUP_SCHEMES},
                          title="geomean speedup (| marks Baseline = 1.0):",
                          reference=1.0)
        return f"{table}\n{chart}"


def _speedups(grid: ResultGrid, metric: str, figure: str) -> SpeedupResult:
    out: Dict[str, Dict[str, float]] = {}
    for app in _apps_in(grid):
        base = grid[(app, "Baseline")]
        ref = (base.mean_write_latency_ns if metric == "write"
               else base.mean_read_latency_ns)
        per = {}
        for scheme in DEDUP_SCHEMES:
            r = grid[(app, scheme)]
            val = (r.mean_write_latency_ns if metric == "write"
                   else r.mean_read_latency_ns)
            per[scheme] = ref / val if val else float("inf")
        out[app] = per
    return SpeedupResult(metric=metric, speedups=out, figure=figure)


def fig12_write_speedup(grid: ResultGrid) -> SpeedupResult:
    return _speedups(grid, "write", "Figure 12")


def fig13_read_speedup(grid: ResultGrid) -> SpeedupResult:
    return _speedups(grid, "read", "Figure 13")


# ---------------------------------------------------------------------------
# Figure 14 — IPC normalized to Baseline
# ---------------------------------------------------------------------------

@dataclass
class Fig14Result:
    ipc_ratios: Dict[str, Dict[str, float]]

    def geomean(self, scheme: str) -> float:
        return geometric_mean([per[scheme]
                               for per in self.ipc_ratios.values()])

    def render(self) -> str:
        rows = []
        for app, per in self.ipc_ratios.items():
            rows.append([app] + [per[s] for s in DEDUP_SCHEMES])
        rows.append(["geomean"] + [self.geomean(s) for s in DEDUP_SCHEMES])
        return format_table(
            ["application"] + list(DEDUP_SCHEMES), rows,
            title="Figure 14: IPC normalized to Baseline "
                  "(paper: ESD up to 2.4x)",
            float_format="{:.2f}")


def fig14_ipc(grid: ResultGrid) -> Fig14Result:
    out: Dict[str, Dict[str, float]] = {}
    for app in _apps_in(grid):
        base_ipc = grid[(app, "Baseline")].ipc
        out[app] = {s: grid[(app, s)].ipc / base_ipc for s in DEDUP_SCHEMES}
    return Fig14Result(ipc_ratios=out)


# ---------------------------------------------------------------------------
# Figure 15 — CDF of write latency (tail latency)
# ---------------------------------------------------------------------------

@dataclass
class Fig15Result:
    #: {app: {scheme: (latencies, cumulative fractions)}}
    cdfs: Dict[str, Dict[str, Tuple[List[float], List[float]]]]
    #: {app: {scheme: p99 latency}}
    p99: Dict[str, Dict[str, float]]

    def render(self) -> str:
        from .charts import cdf_plot
        parts = ["Figure 15: CDF of write latency (ESD has the shortest "
                 "tails; paper plots gcc, leela, bodytrack, dedup, facesim, "
                 "fluidanimate, wrf, x264)"]
        rows = []
        for app, per in self.p99.items():
            rows.append([app] + [per[s] for s in DEDUP_SCHEMES])
        parts.append(format_table(
            ["application"] + [f"{s}_p99_ns" for s in DEDUP_SCHEMES], rows,
            float_format="{:.0f}"))
        first_app = next(iter(self.cdfs), None)
        if first_app is not None:
            parts.append(cdf_plot(self.cdfs[first_app],
                                  title=f"\n{first_app} write-latency CDFs:"))
        for app, per in self.cdfs.items():
            for scheme, (xs, ys) in per.items():
                parts.append(format_series(f"  {app}/{scheme}", xs, ys,
                                           x_label="ns", y_label="CDF"))
        return "\n".join(parts)


def fig15_tail_latency(apps: Optional[Sequence[str]] = None,
                       requests: int = 20_000,
                       system: Optional[SystemConfig] = None,
                       seed: int = 2023,
                       grid: Optional[ResultGrid] = None) -> Fig15Result:
    apps = list(apps) if apps is not None else list(TAIL_LATENCY_APPS)
    if grid is None:
        grid = run_evaluation_grid(apps, requests=requests, system=system,
                                   seed=seed)
    else:
        apps = [a for a in apps if (a, "ESD") in grid]
    cdfs: Dict[str, Dict[str, Tuple[List[float], List[float]]]] = {}
    p99: Dict[str, Dict[str, float]] = {}
    for app in apps:
        cdfs[app] = {}
        p99[app] = {}
        for scheme in DEDUP_SCHEMES:
            result = grid[(app, scheme)]
            cdfs[app][scheme] = result.write_cdf(points=50)
            p99[app][scheme] = result.write_latency.percentile(99)
    return Fig15Result(cdfs=cdfs, p99=p99)


# ---------------------------------------------------------------------------
# Figure 16 — energy consumption normalized to Baseline
# ---------------------------------------------------------------------------

@dataclass
class Fig16Result:
    normalized: Dict[str, Dict[str, float]]

    def mean(self, scheme: str) -> float:
        vals = [per[scheme] for per in self.normalized.values()]
        return sum(vals) / len(vals)

    def render(self) -> str:
        rows = []
        for app, per in self.normalized.items():
            rows.append([app] + [per[s] for s in DEDUP_SCHEMES])
        rows.append(["average"] + [self.mean(s) for s in DEDUP_SCHEMES])
        return format_table(
            ["application"] + [f"{s}_vs_base" for s in DEDUP_SCHEMES], rows,
            title="Figure 16: energy normalized to Baseline "
                  "(paper: ESD saves up to 69.3% vs Baseline)",
            float_format="{:.3f}")


def fig16_energy(grid: ResultGrid) -> Fig16Result:
    out: Dict[str, Dict[str, float]] = {}
    for app in _apps_in(grid):
        base = grid[(app, "Baseline")].total_energy_nj
        out[app] = {s: grid[(app, s)].total_energy_nj / base
                    for s in DEDUP_SCHEMES}
    return Fig16Result(normalized=out)


# ---------------------------------------------------------------------------
# Figure 17 — write-latency profile by pipeline stage
# ---------------------------------------------------------------------------

#: Figure 17's stage order.
PROFILE_STAGES: Tuple[WritePathStage, ...] = (
    WritePathStage.FINGERPRINT_COMPUTE,
    WritePathStage.FINGERPRINT_NVMM_LOOKUP,
    WritePathStage.READ_FOR_COMPARISON,
    WritePathStage.WRITE_UNIQUE,
    WritePathStage.ENCRYPTION,
    WritePathStage.METADATA,
)


@dataclass
class Fig17Result:
    #: {scheme: {stage: share of total write-path latency}}
    profiles: Dict[str, Dict[WritePathStage, float]]

    def render(self) -> str:
        rows = []
        for scheme, shares in self.profiles.items():
            rows.append([scheme] + [shares.get(st, 0.0) * 100
                                    for st in PROFILE_STAGES])
        return format_table(
            ["scheme"] + [str(st) for st in PROFILE_STAGES], rows,
            title="Figure 17: write-latency profile (paper: SHA1 ~80% "
                  "fingerprint compute; DeWrite ~10% compute + ~23% lookup; "
                  "ESD has neither)",
            float_format="{:.1f}")


def fig17_latency_profile(grid: ResultGrid) -> Fig17Result:
    profiles: Dict[str, Dict[WritePathStage, float]] = {}
    for scheme in DEDUP_SCHEMES:
        totals: Dict[WritePathStage, float] = {}
        for app in _apps_in(grid):
            breakdown = grid[(app, scheme)].breakdown
            if breakdown is None:
                continue
            for stage, value in breakdown.by_stage.items():
                totals[stage] = totals.get(stage, 0.0) + value
        grand = sum(totals.values())
        profiles[scheme] = ({st: v / grand for st, v in totals.items()}
                            if grand else {})
    return Fig17Result(profiles=profiles)


# ---------------------------------------------------------------------------
# Figure 18 — EFIT/AMT cache-size sensitivity
# ---------------------------------------------------------------------------

@dataclass
class Fig18Result:
    #: [(efit_bytes, hit rate with LRCU, hit rate without LRCU)]
    efit_series: List[Tuple[int, float, float]]
    #: [(amt_bytes, hit rate)]
    amt_series: List[Tuple[int, float]]

    def render(self) -> str:
        efit_rows = [[size // 1024, with_l, without_l]
                     for size, with_l, without_l in self.efit_series]
        amt_rows = [[size // 1024, hr] for size, hr in self.amt_series]
        a = format_table(["efit_KB", "hit_rate_lrcu", "hit_rate_no_lrcu"],
                         efit_rows,
                         title="Figure 18a: EFIT hit rate vs cache size "
                               "(hit rate saturates; LRCU > LRU)")
        b = format_table(["amt_KB", "hit_rate"], amt_rows,
                         title="Figure 18b: AMT hit rate vs cache size")
        return f"{a}\n{b}"


def fig18_cache_sensitivity(app: str = "gcc",
                            requests: int = 20_000,
                            efit_sizes: Optional[Sequence[int]] = None,
                            amt_sizes: Optional[Sequence[int]] = None,
                            seed: int = 2023) -> Fig18Result:
    """Sweep metadata cache sizes, with and without the LRCU policy.

    The paper sweeps 64 KB-2 MB against billion-request footprints and
    finds the knee at 512 KB; at simulation-scale footprints the same
    saturation shape appears at proportionally smaller sizes.
    """
    from ..common.units import kib
    efit_sizes = list(efit_sizes) if efit_sizes is not None else [
        kib(2), kib(4), kib(8), kib(16), kib(32), kib(64)]
    amt_sizes = list(amt_sizes) if amt_sizes is not None else [
        kib(8), kib(16), kib(32), kib(64), kib(128), kib(256)]

    efit_series: List[Tuple[int, float, float]] = []
    for size in efit_sizes:
        rates = []
        for use_lrcu in (True, False):
            system = (SystemConfig()
                      .with_metadata_cache(efit_bytes=size, amt_bytes=kib(64))
                      .with_esd(use_lrcu=use_lrcu))
            result = run_app(app, ["ESD"], requests=requests, system=system,
                             seed=seed)["ESD"]
            rates.append(result.extras["efit_hit_rate"])
        efit_series.append((size, rates[0], rates[1]))

    amt_series: List[Tuple[int, float]] = []
    for size in amt_sizes:
        system = SystemConfig().with_metadata_cache(efit_bytes=kib(16),
                                                    amt_bytes=size)
        result = run_app(app, ["ESD"], requests=requests, system=system,
                         seed=seed)["ESD"]
        amt_series.append((size, result.extras["amt_hit_rate"]))
    return Fig18Result(efit_series=efit_series, amt_series=amt_series)


# ---------------------------------------------------------------------------
# Figure 19 — metadata space overhead normalized to Dedup_SHA1
# ---------------------------------------------------------------------------

@dataclass
class Fig19Result:
    #: {scheme: measured NVMM-resident metadata bytes}
    nvmm_bytes: Dict[str, int]
    #: {scheme: bytes normalized to Dedup_SHA1}
    normalized: Dict[str, float]

    def render(self) -> str:
        rows = [[s, self.nvmm_bytes[s], self.normalized[s]]
                for s in DEDUP_SCHEMES]
        return format_table(
            ["scheme", "nvmm_metadata_bytes", "vs_Dedup_SHA1"], rows,
            title="Figure 19: NVMM metadata overhead normalized to "
                  "Dedup_SHA1 (paper: ESD -81.2%, DeWrite -60.9%)")


def fig19_metadata_overhead(grid: Optional[ResultGrid] = None,
                            app: str = "gcc",
                            requests: int = 20_000,
                            seed: int = 2023) -> Fig19Result:
    """Measure NVMM-resident metadata footprints after a run."""
    if grid is not None and (app, "ESD") in grid:
        results = {s: grid[(app, s)] for s in DEDUP_SCHEMES}
    else:
        results = run_app(app, DEDUP_SCHEMES, requests=requests,
                          system=scaled_system_config(), seed=seed)
    nvmm = {s: (r.metadata.nvmm_bytes if r.metadata else 0)
            for s, r in results.items()}
    normalized = normalized_map({s: float(v) for s, v in nvmm.items()},
                                "Dedup_SHA1")
    return Fig19Result(nvmm_bytes=nvmm, normalized=normalized)


# ---------------------------------------------------------------------------
# Table I — system configuration
# ---------------------------------------------------------------------------

@dataclass
class Table1Result:
    config: SystemConfig

    def render(self) -> str:
        c = self.config
        rows = [
            ["CPU", f"{c.processor.cores} cores, x86-64, "
                    f"{c.processor.clock_ghz:g} GHz"],
            ["L1 cache", f"{c.processor.l1.capacity_bytes // 1024} KB, "
                         f"{c.processor.l1.associativity}-way, "
                         f"{c.processor.l1.latency_cycles}-cycle"],
            ["L2 cache", f"{c.processor.l2.capacity_bytes // 1024} KB, "
                         f"{c.processor.l2.associativity}-way, "
                         f"{c.processor.l2.latency_cycles}-cycle"],
            ["L3 cache", f"{c.processor.l3.capacity_bytes // (1024*1024)} MB, "
                         f"{c.processor.l3.associativity}-way, "
                         f"{c.processor.l3.latency_cycles}-cycle"],
            ["Cache line", f"{CACHE_LINE_SIZE} B"],
            ["PCM capacity", f"{c.pcm.capacity_bytes // (1024**3)} GB"],
            ["PCM latency", f"read {c.pcm.read_latency_ns:g} ns / "
                            f"write {c.pcm.write_latency_ns:g} ns"],
            ["PCM energy", f"read {c.pcm.read_energy_nj:g} nJ / "
                           f"write {c.pcm.write_energy_nj:g} nJ"],
            ["Metadata cache", f"EFIT {c.metadata_cache.efit_bytes // 1024} KB, "
                               f"AMT {c.metadata_cache.amt_bytes // 1024} KB"],
        ]
        return format_table(["parameter", "value"], rows,
                            title="Table I: system configuration")


def table1_configuration(config: Optional[SystemConfig] = None) -> Table1Result:
    return Table1Result(config=config or SystemConfig())
