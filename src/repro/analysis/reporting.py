"""Plain-text table rendering for experiment results.

Every experiment in :mod:`repro.analysis.experiments` renders through these
helpers so benchmark output looks like the rows/series the paper reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

Cell = Union[str, float, int]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Cell]],
                 *, title: Optional[str] = None,
                 float_format: str = "{:.3f}") -> str:
    """Render an aligned plain-text table."""
    def render(cell: Cell) -> str:
        if isinstance(cell, bool):  # bool is an int subclass; keep readable
            return str(cell)
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def format_series(name: str, xs: Sequence[float], ys: Sequence[float],
                  *, x_label: str = "x", y_label: str = "y",
                  max_points: int = 12) -> str:
    """Render a (possibly downsampled) x/y series for CDF-style figures."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must be the same length")
    n = len(xs)
    if n == 0:
        return f"{name}: (empty)"
    if n > max_points:
        step = max(1, n // max_points)
        idx = list(range(0, n, step))
        if idx[-1] != n - 1:
            idx.append(n - 1)
    else:
        idx = list(range(n))
    pts = ", ".join(f"({xs[i]:.0f}, {ys[i]:.2f})" for i in idx)
    return f"{name} [{x_label} -> {y_label}]: {pts}"


def normalized_map(values: Dict[str, float], reference: str,
                   *, invert: bool = False) -> Dict[str, float]:
    """Normalize a {name: value} map to one reference entry.

    Args:
        invert: when True, report ``reference/value`` (speedups from
            latencies) instead of ``value/reference``.
    """
    ref = values[reference]
    if ref == 0:
        raise ValueError("reference value is zero")
    if invert:
        return {k: (ref / v if v else float("inf")) for k, v in values.items()}
    return {k: v / ref for k, v in values.items()}
