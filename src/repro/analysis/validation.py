"""Self-check: verify the reproduction's headline shapes in one pass.

Runs miniature versions of the paper's key claims and reports pass/fail
per claim — the smoke test a downstream user runs first to confirm their
environment reproduces the paper's qualitative results.  Exposed through
``python -m repro.cli validate``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from ..sim.runner import run_app, scaled_system_config
from ..workloads.analysis import duplicate_stats
from ..workloads.generator import TraceGenerator
from ..workloads.profiles import app_names


@dataclass(frozen=True)
class Claim:
    """One verifiable qualitative claim from the paper."""

    claim_id: str
    description: str
    check: Callable[[], bool]


@dataclass(frozen=True)
class ClaimResult:
    claim_id: str
    description: str
    passed: bool
    error: str = ""


def _grid(apps, requests, seed=2023):
    out = {}
    for app in apps:
        out[app] = run_app(app, ["Baseline", "Dedup_SHA1", "DeWrite", "ESD"],
                           requests=requests,
                           system=scaled_system_config(), seed=seed)
    return out


def build_claims(requests: int = 8_000) -> List[Claim]:
    """The claim suite; simulations are shared lazily across claims."""
    state: dict = {}

    def grid():
        if "grid" not in state:
            state["grid"] = _grid(["gcc", "deepsjeng", "leela"], requests)
        return state["grid"]

    def claim_duplicate_rates() -> bool:
        rates = []
        for app in app_names():
            trace = TraceGenerator(app, seed=1).generate_list(
                max(2_000, requests // 4))
            rates.append(duplicate_stats(trace).duplicate_rate)
        mean = sum(rates) / len(rates)
        return 0.55 < mean < 0.70 and max(rates) > 0.99

    def claim_esd_fastest_writes() -> bool:
        return all(
            per["ESD"].mean_write_latency_ns
            <= min(per[s].mean_write_latency_ns
                   for s in ("Baseline", "Dedup_SHA1", "DeWrite")) * 1.05
            for per in grid().values())

    def claim_esd_lowest_energy() -> bool:
        return all(
            per["ESD"].total_energy_nj
            == min(r.total_energy_nj for r in per.values())
            for per in grid().values())

    def claim_full_dedup_degrades_worst_case() -> bool:
        leela = grid()["leela"]
        return (leela["Dedup_SHA1"].ipc < leela["Baseline"].ipc
                and leela["ESD"].ipc >= leela["Baseline"].ipc * 0.95)

    def claim_esd_shortest_tail() -> bool:
        return all(
            per["ESD"].write_latency.percentile(99)
            <= per["Dedup_SHA1"].write_latency.percentile(99)
            for per in grid().values())

    def claim_esd_zero_fingerprint_cost() -> bool:
        from ..common.types import WritePathStage
        for per in grid().values():
            breakdown = per["ESD"].breakdown
            if breakdown is None:
                return False
            if WritePathStage.FINGERPRINT_COMPUTE in breakdown.by_stage:
                return False
            if WritePathStage.FINGERPRINT_NVMM_LOOKUP in breakdown.by_stage:
                return False
        return True

    def claim_metadata_savings() -> bool:
        per = grid()["gcc"]
        esd = per["ESD"].metadata.nvmm_bytes
        sha1 = per["Dedup_SHA1"].metadata.nvmm_bytes
        return sha1 > 0 and esd < sha1 * 0.5

    return [
        Claim("fig1", "mean duplicate rate ~62.9% with 99.9% peaks",
              claim_duplicate_rates),
        Claim("fig12", "ESD has the fastest writes of all schemes",
              claim_esd_fastest_writes),
        Claim("fig16", "ESD consumes the least energy",
              claim_esd_lowest_energy),
        Claim("fig2", "full dedup degrades leela; ESD does not",
              claim_full_dedup_degrades_worst_case),
        Claim("fig15", "ESD has the shortest p99 write tail",
              claim_esd_shortest_tail),
        Claim("fig17", "ESD pays zero fingerprint compute/NVMM lookups",
              claim_esd_zero_fingerprint_cost),
        Claim("fig19", "ESD stores <50% of Dedup_SHA1's NVMM metadata",
              claim_metadata_savings),
    ]


def validate(requests: int = 8_000) -> List[ClaimResult]:
    """Run every claim; returns per-claim results (never raises)."""
    results = []
    for claim in build_claims(requests):
        try:
            passed = bool(claim.check())
            results.append(ClaimResult(claim.claim_id, claim.description,
                                       passed))
        except Exception as exc:  # pragma: no cover - defensive
            results.append(ClaimResult(claim.claim_id, claim.description,
                                       False, error=repr(exc)))
    return results


def render_validation(results: List[ClaimResult]) -> str:
    from .reporting import format_table
    rows = [[r.claim_id, r.description,
             "PASS" if r.passed else f"FAIL {r.error}"] for r in results]
    passed = sum(1 for r in results if r.passed)
    table = format_table(["claim", "description", "status"], rows,
                         title="Reproduction self-check")
    return f"{table}\n{passed}/{len(results)} claims hold"
