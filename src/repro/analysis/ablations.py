"""Ablation studies for the design choices ESD (and this model) make.

Beyond the paper's own sensitivity study (Figure 18), these sweeps isolate
individual design decisions:

* :func:`ablate_lrcu_decay` — the LRCU "regular refresh" period/amount.
* :func:`ablate_referh_width` — the 1-byte ``referH`` budget.
* :func:`ablate_predictor` — DeWrite's predictor size (prediction quality
  vs. the F2/F4 penalty balance of Figure 4).
* :func:`ablate_bank_count` — PCM bank-level parallelism (how much of
  ESD's speedup is queueing relief).
* :func:`ablate_row_buffer` — the row-buffer hit latency (how much the
  byte-comparison reads cost without locality in the array).
* :func:`ablate_comparison_read` — selective dedup's read-for-compare
  against a hypothetical trust-the-fingerprint variant (quantifies the
  price ESD pays for zero data-loss risk).

Each returns ``(rows, headers)`` ready for
:func:`repro.analysis.reporting.format_table`.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from ..common.config import DeWriteConfig, PCMConfig, SystemConfig
from ..sim.runner import run_app, scaled_system_config
from ..workloads.generator import TraceGenerator

Rows = List[List]
Headers = List[str]


def _trace_for(app: str, requests: int, seed: int):
    return TraceGenerator(app, seed=seed).generate_list(requests)


def ablate_lrcu_decay(app: str = "gcc", requests: int = 12_000,
                      periods: Sequence[int] = (0, 512, 2048, 4096, 16384),
                      seed: int = 2023) -> Tuple[Rows, Headers]:
    """Sweep the LRCU decay ("regular refresh") period.

    Period 0 disables decay entirely; small periods decay aggressively.
    The paper argues decay keeps EFIT contents fresh; too-aggressive decay
    erases the reference-count signal and degenerates toward LRU.
    """
    trace = _trace_for(app, requests, seed)
    rows: Rows = []
    for period in periods:
        system = scaled_system_config().with_esd(
            decay_period=max(1, period) if period else 1,
            decay_amount=1 if period else 0)
        result = run_app(app, ["ESD"], system=system, trace=trace)["ESD"]
        rows.append([period if period else "off",
                     result.extras["efit_hit_rate"],
                     result.write_reduction,
                     result.mean_write_latency_ns])
    return rows, ["decay_period", "efit_hit_rate", "write_reduction",
                  "write_latency_ns"]


def ablate_referh_width(app: str = "deepsjeng", requests: int = 12_000,
                        maxima: Sequence[int] = (3, 15, 63, 255),
                        seed: int = 2023) -> Tuple[Rows, Headers]:
    """Sweep the referH saturation limit (the paper fixes 1 byte = 255).

    Small budgets force hot lines to be rewritten once the count saturates
    (Section III-D's overflow rule), costing write reduction on
    high-reference workloads like deepsjeng.
    """
    trace = _trace_for(app, requests, seed)
    rows: Rows = []
    for limit in maxima:
        system = scaled_system_config().with_esd(refer_h_max=limit)
        result = run_app(app, ["ESD"], system=system, trace=trace)["ESD"]
        rows.append([limit, result.write_reduction,
                     result.extras.get("referh_overflows", 0.0),
                     result.pcm_data_writes])
    return rows, ["referH_max", "write_reduction", "overflows",
                  "pcm_data_writes"]


def ablate_predictor(app: str = "lbm", requests: int = 12_000,
                     entries: Sequence[int] = (16, 256, 4096, 65536),
                     seed: int = 2023) -> Tuple[Rows, Headers]:
    """Sweep DeWrite's predictor table size.

    An undersized table aliases addresses and mispredicts, triggering the
    serial F2 path / wasted F4 encryptions the paper's Figure 4 describes.
    """
    trace = _trace_for(app, requests, seed)
    rows: Rows = []
    for n in entries:
        system = dataclasses.replace(
            scaled_system_config(),
            dewrite=DeWriteConfig(predictor_entries=n))
        result = run_app(app, ["DeWrite"], system=system,
                         trace=trace)["DeWrite"]
        rows.append([n, result.extras.get("prediction_accuracy", 0.0),
                     result.extras.get("wasted_encryptions", 0.0),
                     result.mean_write_latency_ns])
    return rows, ["predictor_entries", "accuracy", "wasted_encryptions",
                  "write_latency_ns"]


def ablate_bank_count(app: str = "lbm", requests: int = 12_000,
                      banks: Sequence[int] = (2, 4, 8, 16, 32),
                      seed: int = 2023) -> Tuple[Rows, Headers]:
    """Sweep PCM bank-level parallelism for Baseline vs. ESD.

    With few banks, write traffic queues and ESD's write elimination pays
    off most; with many banks the device absorbs Baseline's writes and the
    speedup shrinks toward the pure service-time ratio.
    """
    trace = _trace_for(app, requests, seed)
    rows: Rows = []
    for num_banks in banks:
        system = dataclasses.replace(
            scaled_system_config(),
            pcm=PCMConfig(num_banks=num_banks))
        results = run_app(app, ["Baseline", "ESD"], system=system,
                          trace=trace)
        base = results["Baseline"].mean_write_latency_ns
        esd = results["ESD"].mean_write_latency_ns
        rows.append([num_banks, base, esd, base / esd])
    return rows, ["banks", "baseline_write_ns", "esd_write_ns",
                  "esd_speedup"]


def ablate_row_buffer(app: str = "deepsjeng", requests: int = 12_000,
                      hit_latencies: Sequence[float] = (15.0, 40.0, 75.0),
                      seed: int = 2023) -> Tuple[Rows, Headers]:
    """Sweep the row-buffer hit latency (75 ns = row buffer disabled).

    ESD's comparison reads concentrate on hot rows (the shared zero line),
    so its write path is sensitive to this device characteristic.
    """
    trace = _trace_for(app, requests, seed)
    rows: Rows = []
    for latency in hit_latencies:
        system = dataclasses.replace(
            scaled_system_config(),
            pcm=PCMConfig(row_hit_read_latency_ns=latency))
        result = run_app(app, ["ESD"], system=system, trace=trace)["ESD"]
        rows.append([latency, result.mean_write_latency_ns,
                     result.mean_read_latency_ns])
    return rows, ["row_hit_ns", "esd_write_ns", "esd_read_ns"]


def ablate_comparison_read(app: str = "gcc", requests: int = 12_000,
                           seed: int = 2023) -> Tuple[Rows, Headers]:
    """Quantify the price of ESD's byte-by-byte confirmation.

    Compares real ESD against a hypothetical trust-the-ECC variant whose
    write path skips the read-for-comparison entirely.  The variant is
    UNSAFE (an ECC collision would silently alias two different lines —
    the data-loss hazard Section III-E rules out), so it exists only here,
    as an upper bound on what the comparison read costs.
    """
    trace = _trace_for(app, requests, seed)
    system = scaled_system_config()
    real = run_app(app, ["ESD"], system=system, trace=trace)["ESD"]

    # Hypothetical variant: charge the dedup path without the read.
    from ..core.esd import ESDScheme
    from ..sim.engine import SimulationEngine

    class TrustingESD(ESDScheme):
        name = "ESD_no_verify"

        def _read_and_decrypt(self, frame, timeline, *, read_stage=None,
                              decrypt_stage=None):
            # Trust the fingerprint: skip the PCM read, return the stored
            # plaintext functionally (so integrity checking still passes
            # when no collision occurs) at zero latency — the timeline is
            # deliberately left untouched.
            ciphertext = self.controller.device.read_line(frame)
            self.controller.device.read_ops -= 1  # not a modeled access
            return self.crypto.decrypt_at(ciphertext, frame)

    trusting = TrustingESD(system)
    engine = SimulationEngine(trusting)
    hypothetical = engine.run(iter(list(trace)), app=app,
                              total_hint=len(trace))
    rows = [
        ["ESD (verified, safe)", real.mean_write_latency_ns,
         real.write_reduction],
        ["trust-ECC (UNSAFE bound)", hypothetical.mean_write_latency_ns,
         hypothetical.write_reduction],
    ]
    return rows, ["variant", "write_latency_ns", "write_reduction"]
