"""ASCII chart rendering for terminal-friendly figures.

The paper's figures are bar charts and CDFs; these helpers render both as
monospace text so the benchmark harness and CLI can show *shapes*, not
just numbers, without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def bar_chart(values: Dict[str, float], *, title: Optional[str] = None,
              width: int = 50, reference: Optional[float] = None,
              value_format: str = "{:.2f}") -> str:
    """Horizontal bar chart of a {label: value} mapping.

    Args:
        reference: when given, a ``|`` marker is drawn at this value
            (e.g. 1.0 for "normalized to Baseline" figures).
    """
    if not values:
        return title or "(empty chart)"
    if width <= 0:
        raise ValueError("width must be positive")
    max_value = max(max(values.values()), reference or 0.0)
    if max_value <= 0:
        max_value = 1.0
    label_width = max(len(str(k)) for k in values)
    ref_col = (round(width * reference / max_value)
               if reference is not None else None)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in values.items():
        filled = round(width * max(0.0, value) / max_value)
        bar = list("#" * filled + " " * (width - filled))
        if ref_col is not None and 0 <= ref_col < width:
            bar[ref_col] = "|" if bar[ref_col] == " " else "+"
        lines.append(f"{str(label).rjust(label_width)} "
                     f"[{''.join(bar)}] {value_format.format(value)}")
    return "\n".join(lines)


def grouped_bar_chart(groups: Dict[str, Dict[str, float]], *,
                      title: Optional[str] = None, width: int = 40,
                      reference: Optional[float] = None) -> str:
    """One bar block per group (the paper's per-application clusters)."""
    parts: List[str] = []
    if title:
        parts.append(title)
    for group, values in groups.items():
        parts.append(f"{group}:")
        chart = bar_chart(values, width=width, reference=reference)
        parts.extend("  " + line for line in chart.splitlines())
    return "\n".join(parts)


def cdf_plot(series: Dict[str, Tuple[Sequence[float], Sequence[float]]], *,
             title: Optional[str] = None, width: int = 60,
             height: int = 12) -> str:
    """Overlayed ASCII CDFs (Figure 15 style), one symbol per series."""
    if not series:
        return title or "(empty plot)"
    if width <= 2 or height <= 2:
        raise ValueError("width and height must exceed 2")
    symbols = "*o+x@%&"
    max_x = max((xs[-1] for xs, _ys in series.values() if xs), default=1.0)
    if max_x <= 0:
        max_x = 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (name, (xs, ys)) in enumerate(series.items()):
        symbol = symbols[index % len(symbols)]
        for x, y in zip(xs, ys):
            col = min(width - 1, int(width * x / max_x))
            row = min(height - 1, int((height - 1) * (1.0 - y)))
            grid[row][col] = symbol
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("1.0 +" + "-" * width)
    for row in grid:
        lines.append("    |" + "".join(row))
    lines.append("0.0 +" + "-" * width)
    lines.append(f"    0 ns{'.'.rjust(width - 10)} {max_x:.0f} ns")
    legend = "  ".join(f"{symbols[i % len(symbols)]}={name}"
                       for i, name in enumerate(series))
    lines.append(f"    {legend}")
    return "\n".join(lines)
