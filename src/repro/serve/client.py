"""Client SDK for the dedup-as-a-service front end.

Two clients with the same surface: :class:`ServeClient` (blocking
sockets — scripts, tests, benchmarks) and :class:`AsyncServeClient`
(asyncio streams — concurrent drivers).  Both stream a
:mod:`repro.workloads` trace into a server session in batches, obey the
server's backpressure protocol (sleep ``retry_after_ms`` and resend the
identical rejected batch), and return the summary row; the lossless
result state travels alongside so callers can rebuild the full
:class:`~repro.sim.metrics.SimulationResult` with
:func:`~repro.sim.export.result_from_state`.

The dependency points one way only: ``repro.serve`` imports the
simulation core, never the reverse — the engine stays import-clean of
any server code.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..common.errors import ServeError, WorkerCrashError
from ..common.types import MemoryRequest
from ..sim.export import result_from_state
from ..sim.metrics import SimulationResult
from .protocol import (
    MAX_LINE_BYTES,
    WireReader,
    encode_message,
    encode_requests,
)

__all__ = ["AsyncServeClient", "ServeClient"]

#: Give up resending one backpressured batch after this many rejections.
_MAX_BACKPRESSURE_RETRIES = 10_000


def _chunked(requests: Iterable[MemoryRequest],
             size: int) -> Iterable[List[MemoryRequest]]:
    batch: List[MemoryRequest] = []
    for request in requests:
        batch.append(request)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch


def _check(reply: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Raise the reply's error as a :class:`ServeError`; pass ``ok``.

    The ``worker_crash`` wire code comes back as the typed
    :class:`WorkerCrashError` so callers can distinguish "your worker
    died, reopen and resend" from ordinary engine failures.
    """
    if reply is None:
        raise ServeError("server closed the connection", code="internal")
    if not reply.get("ok"):
        detail = str(reply.get("detail", "request failed"))
        code = str(reply.get("error", "internal"))
        if code == "worker_crash":
            raise WorkerCrashError(detail)
        raise ServeError(detail, code=code)
    return reply


class _SessionState:
    """Client-side bookkeeping shared by both client flavors."""

    def __init__(self, reply: Dict[str, Any]) -> None:
        self.sid: str = reply["session"]
        self.credits: int = int(reply.get("credits", 0))
        # Default batch size: the server's micro-batch hint, capped at
        # the session's initial credits (= the queue limit) so a default
        # batch always *can* be admitted once the queue drains.
        self.batch_hint: int = max(1, min(int(reply.get("batch_hint", 1024)),
                                          self.credits or 1024))
        #: Backpressure rejections observed while streaming (tests
        #: assert the protocol actually engaged).
        self.backpressure_rejections = 0


class ServeClient:
    """Blocking NDJSON client over a plain socket."""

    def __init__(self, host: str, port: int, *,
                 timeout: Optional[float] = 120.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._fh = self._sock.makefile("rwb")
        self._reader = WireReader(self._fh)
        self._session: Optional[_SessionState] = None

    # -- plumbing ------------------------------------------------------

    def _call(self, message: Dict[str, Any]) -> Dict[str, Any]:
        self._fh.write(encode_message(message))
        self._fh.flush()
        reply = self._reader.read_message()
        if reply is None:
            raise ServeError("server closed the connection",
                             code="internal")
        return reply

    def close(self) -> None:
        try:
            self._fh.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- verbs ---------------------------------------------------------

    def open_session(self, scheme: str, *, tenant: str = "default",
                     app: str = "served",
                     total_hint: Optional[int] = None,
                     options: Optional[Dict[str, Any]] = None) -> str:
        reply = _check(self._call({
            "verb": "hello", "scheme": scheme, "tenant": tenant,
            "app": app, "total_hint": total_hint,
            "options": options or {}}))
        self._session = _SessionState(reply)
        return self._session.sid

    @property
    def session(self) -> _SessionState:
        if self._session is None:
            raise ServeError("no open session; call open_session first",
                             code="bad_request")
        return self._session

    def send(self, requests: Sequence[MemoryRequest]) -> int:
        """Send one batch, resending through backpressure; returns the
        credits left after admission."""
        state = self.session
        wire = encode_requests(requests)
        message = {"verb": "batch", "session": state.sid, "requests": wire}
        for _ in range(_MAX_BACKPRESSURE_RETRIES):
            reply = self._call(message)
            if reply.get("ok"):
                state.credits = int(reply.get("credits", 0))
                return state.credits
            if reply.get("error") != "backpressure":
                _check(reply)
            state.backpressure_rejections += 1
            time.sleep(float(reply.get("retry_after_ms", 25)) / 1000.0)
        raise ServeError("backpressure retry budget exhausted",
                         code="backpressure")

    def stream(self, requests: Iterable[MemoryRequest], *,
               batch_size: Optional[int] = None) -> int:
        """Stream a whole trace in batches; returns requests sent."""
        state = self.session
        sent = 0
        for batch in _chunked(requests, batch_size or state.batch_hint):
            self.send(batch)
            sent += len(batch)
        return sent

    def finalize(self) -> Dict[str, Any]:
        """Drain and finalize; returns ``{"summary", "state"}``."""
        state = self.session
        reply = _check(self._call({"verb": "finalize",
                                   "session": state.sid}))
        self._session = None
        return {"summary": reply["summary"], "state": reply["state"]}

    def run_trace(self, requests: Iterable[MemoryRequest], scheme: str, *,
                  tenant: str = "default", app: str = "served",
                  total_hint: Optional[int] = None,
                  options: Optional[Dict[str, Any]] = None,
                  batch_size: Optional[int] = None) -> Dict[str, Any]:
        """Open → stream → finalize; returns the finalize payload.

        The payload's ``"summary"`` is the scheme's summary row;
        :meth:`result_of` rebuilds the full result from ``"state"``.
        """
        self.open_session(scheme, tenant=tenant, app=app,
                          total_hint=total_hint, options=options)
        self.stream(requests, batch_size=batch_size)
        return self.finalize()

    @staticmethod
    def result_of(payload: Dict[str, Any]) -> SimulationResult:
        """Rebuild the full result from a finalize payload."""
        return result_from_state(payload["state"])

    def metrics(self) -> Dict[str, Any]:
        return _check(self._call({"verb": "metrics"}))

    def schemes(self) -> List[str]:
        return list(_check(self._call({"verb": "schemes"}))["schemes"])

    def ping(self) -> Dict[str, Any]:
        return _check(self._call({"verb": "ping"}))


class AsyncServeClient:
    """Asyncio flavor of :class:`ServeClient` (same surface, awaited)."""

    def __init__(self) -> None:
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._session: Optional[_SessionState] = None

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncServeClient":
        client = cls()
        client._reader, client._writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES)
        return client

    async def _call(self, message: Dict[str, Any]) -> Dict[str, Any]:
        assert self._reader is not None and self._writer is not None
        self._writer.write(encode_message(message))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ServeError("server closed the connection",
                             code="internal")
        return json.loads(line)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def __aenter__(self) -> "AsyncServeClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    @property
    def session(self) -> _SessionState:
        if self._session is None:
            raise ServeError("no open session; call open_session first",
                             code="bad_request")
        return self._session

    async def open_session(self, scheme: str, *, tenant: str = "default",
                           app: str = "served",
                           total_hint: Optional[int] = None,
                           options: Optional[Dict[str, Any]] = None) -> str:
        reply = _check(await self._call({
            "verb": "hello", "scheme": scheme, "tenant": tenant,
            "app": app, "total_hint": total_hint,
            "options": options or {}}))
        self._session = _SessionState(reply)
        return self._session.sid

    async def send(self, requests: Sequence[MemoryRequest]) -> int:
        state = self.session
        message = {"verb": "batch", "session": state.sid,
                   "requests": encode_requests(requests)}
        for _ in range(_MAX_BACKPRESSURE_RETRIES):
            reply = await self._call(message)
            if reply.get("ok"):
                state.credits = int(reply.get("credits", 0))
                return state.credits
            if reply.get("error") != "backpressure":
                _check(reply)
            state.backpressure_rejections += 1
            await asyncio.sleep(
                float(reply.get("retry_after_ms", 25)) / 1000.0)
        raise ServeError("backpressure retry budget exhausted",
                         code="backpressure")

    async def stream(self, requests: Iterable[MemoryRequest], *,
                     batch_size: Optional[int] = None) -> int:
        state = self.session
        sent = 0
        for batch in _chunked(requests, batch_size or state.batch_hint):
            await self.send(batch)
            sent += len(batch)
        return sent

    async def finalize(self) -> Dict[str, Any]:
        state = self.session
        reply = _check(await self._call({"verb": "finalize",
                                         "session": state.sid}))
        self._session = None
        return {"summary": reply["summary"], "state": reply["state"]}

    async def run_trace(self, requests: Iterable[MemoryRequest],
                        scheme: str, *, tenant: str = "default",
                        app: str = "served",
                        total_hint: Optional[int] = None,
                        options: Optional[Dict[str, Any]] = None,
                        batch_size: Optional[int] = None) -> Dict[str, Any]:
        await self.open_session(scheme, tenant=tenant, app=app,
                                total_hint=total_hint, options=options)
        await self.stream(requests, batch_size=batch_size)
        return await self.finalize()

    @staticmethod
    def result_of(payload: Dict[str, Any]) -> SimulationResult:
        return result_from_state(payload["state"])

    async def metrics(self) -> Dict[str, Any]:
        return _check(await self._call({"verb": "metrics"}))

    async def ping(self) -> Dict[str, Any]:
        return _check(await self._call({"verb": "ping"}))
