"""Configuration of the serving front end (:mod:`repro.serve`)."""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import ConfigError

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one :class:`~repro.serve.server.DedupServer` instance."""

    #: Bind address.  Loopback by default — the service speaks plaintext
    #: NDJSON and trusts its network.
    host: str = "127.0.0.1"
    #: Bind port; 0 asks the OS for an ephemeral port (the bound port is
    #: reported by ``DedupServer.port`` and printed by ``repro serve``).
    port: int = 0
    #: Engine worker threads.  Engine work is serialized by the engine
    #: lock (the fast-path/vec switches are process-global, and the GIL
    #: serializes the pure-Python simulation anyway); extra workers buy
    #: queue-drain fairness between sessions, not CPU parallelism.
    workers: int = 2
    #: Maximum concurrently open sessions; further ``hello``s are
    #: rejected with ``session_limit``.
    max_sessions: int = 8
    #: Per-session ingest queue bound, in requests.  A ``batch`` that
    #: does not fit entirely is rejected with ``backpressure`` and
    #: nothing from it is enqueued.
    queue_limit: int = 8192
    #: Suggested client delay before resending a rejected batch.
    retry_after_ms: int = 25
    #: Grace period for in-flight sessions after SIGTERM/SIGINT before
    #: connections are closed forcibly.
    drain_grace_s: float = 30.0

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ConfigError("port must be in [0, 65535]")
        if self.workers <= 0:
            raise ConfigError("workers must be positive")
        if self.max_sessions <= 0:
            raise ConfigError("max_sessions must be positive")
        if self.queue_limit <= 0:
            raise ConfigError("queue_limit must be positive")
        if self.retry_after_ms < 0:
            raise ConfigError("retry_after_ms must be non-negative")
        if self.drain_grace_s < 0:
            raise ConfigError("drain_grace_s must be non-negative")
