"""Configuration of the serving front end (:mod:`repro.serve`)."""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from ..common.errors import ConfigError

__all__ = ["MAX_WORKERS", "ServeConfig", "resolve_workers"]

#: Upper bound on ``workers``.  Engine workers are full Python processes
#: each importing the simulator; past this count a deployment wants a
#: fleet of servers, not one pool (mirrors the sweep layer's multi-host
#: work queue).
MAX_WORKERS = 64

#: Environment default for ``--workers`` (the flag wins when given).
WORKERS_ENV = "REPRO_SERVE_WORKERS"


def _workers_range_error(got: object) -> ConfigError:
    """The one message every bad worker count gets: states the accepted
    range, mirroring the unknown-backend errors of :mod:`repro.sweep`."""
    return ConfigError(
        f"invalid serve worker count {got!r}; accepted range: 1.."
        f"{MAX_WORKERS} (1 = in-process engine, N>1 = N spawned engine "
        f"worker processes)")


def resolve_workers(value: Optional[int] = None) -> int:
    """Resolve the engine worker count: flag > ``REPRO_SERVE_WORKERS`` > 1.

    Raises:
        ConfigError: when the flag or the environment value is not an
            integer in ``[1, MAX_WORKERS]``; the message lists the
            accepted range.
    """
    if value is None:
        raw = os.environ.get(WORKERS_ENV)
        if raw is None:
            return 1
        try:
            value = int(raw)
        except ValueError:
            raise _workers_range_error(raw) from None
    if not 1 <= value <= MAX_WORKERS:
        raise _workers_range_error(value)
    return value


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one :class:`~repro.serve.server.DedupServer` instance."""

    #: Bind address.  Loopback by default — the service speaks plaintext
    #: NDJSON and trusts its network.
    host: str = "127.0.0.1"
    #: Bind port; 0 asks the OS for an ephemeral port (the bound port is
    #: reported by ``DedupServer.port`` and printed by ``repro serve``).
    port: int = 0
    #: Engine worker *processes*.  1 (the default) keeps the in-process
    #: engine path: all sessions interleave on one engine lock, bound to
    #: one core by the GIL.  N>1 spawns N spawn-safe worker processes,
    #: each owning its own memo/vec/obs state, with sessions routed by
    #: consistent tenant-hash affinity (DESIGN.md §14).
    workers: int = 1
    #: Per-worker bound on dispatched-but-unanswered IPC commands; keeps
    #: a fast admitter from buffering unbounded pickled batches in the
    #: worker pipes.
    worker_inflight: int = 8
    #: Maximum concurrently open sessions; further ``hello``s are
    #: rejected with ``session_limit``.
    max_sessions: int = 8
    #: Per-session ingest queue bound, in requests.  A ``batch`` that
    #: does not fit entirely is rejected with ``backpressure`` and
    #: nothing from it is enqueued.
    queue_limit: int = 8192
    #: Suggested client delay before resending a rejected batch.
    retry_after_ms: int = 25
    #: Grace period for in-flight sessions after SIGTERM/SIGINT before
    #: connections are closed forcibly.
    drain_grace_s: float = 30.0

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ConfigError("port must be in [0, 65535]")
        if not 1 <= self.workers <= MAX_WORKERS:
            raise _workers_range_error(self.workers)
        if self.worker_inflight <= 0:
            raise ConfigError("worker_inflight must be positive")
        if self.max_sessions <= 0:
            raise ConfigError("max_sessions must be positive")
        if self.queue_limit <= 0:
            raise ConfigError("queue_limit must be positive")
        if self.retry_after_ms < 0:
            raise ConfigError("retry_after_ms must be non-negative")
        if self.drain_grace_s < 0:
            raise ConfigError("drain_grace_s must be non-negative")
