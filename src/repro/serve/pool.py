"""Multi-process engine worker pool: the parent-side dispatch layer.

The serve front end stays a single asyncio process; CPU-heavy engine
work goes to N spawned worker processes (:mod:`repro.serve.worker`), one
engine world each.  This module owns the parent half (DESIGN.md §14):

* **Affinity.**  :func:`worker_for_tenant` maps a tenant label to a
  worker with a *stable* hash (SHA-256, not Python's salted ``hash``),
  so every session of a tenant — across connections and server restarts
  with the same worker count — lands on the same worker and its
  ``open``/``feed``/``finalize`` stream never migrates mid-session.
* **IPC.**  One duplex :func:`multiprocessing.Pipe` per worker carrying
  length-prefixed pickle frames.  Each worker gets a writer thread (the
  pipe blocks when full — never on the event loop) and a reader thread
  (blocking ``recv``); the worker answers strictly in receive order, so
  replies match pending futures FIFO.
* **Credit.**  An :class:`asyncio.Semaphore` of ``worker_inflight``
  commands per worker bounds how many pickled batches can sit in a
  worker's pipe, so one fast admitter cannot buffer unbounded memory
  into a slow worker.
* **Crash containment.**  A dead pipe fails the crashed worker's pending
  futures — and, through the manager callback, every session routed to
  that worker — with :class:`WorkerCrashError`; other workers never
  notice.  The pool respawns a fresh worker into the slot (unless
  draining) so new sessions keep flowing.
"""

from __future__ import annotations

import asyncio
import hashlib
import multiprocessing
import queue
import threading
from collections import deque
from multiprocessing.context import SpawnContext
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..common.errors import ServeError, WorkerCrashError
from ..sim.engine import EngineConfig
from .config import ServeConfig
from .obs import ServeMetrics
from .worker import engine_worker_main

__all__ = ["WorkerPool", "worker_for_tenant"]

#: One IPC exchange: the command tuple and the future its reply resolves.
_Exchange = Tuple[Tuple[Any, ...], "asyncio.Future[Any]"]

#: Seconds a draining pool waits for a worker to answer ``stop`` before
#: escalating to terminate/kill.
_STOP_REPLY_TIMEOUT_S = 15.0


def worker_for_tenant(tenant: str, workers: int) -> int:
    """Stable tenant→worker affinity: SHA-256 of the label mod pool size.

    Deterministic across processes and Python invocations (unlike the
    builtin salted ``hash``), so tests, clients, and operators can
    predict placement.
    """
    digest = hashlib.sha256(tenant.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % workers


class _WorkerHandle:
    """Parent-side endpoint of one worker process."""

    def __init__(self, index: int, generation: int, ctx: SpawnContext,
                 engine_config: EngineConfig,
                 loop: asyncio.AbstractEventLoop,
                 on_crash: Callable[["_WorkerHandle"], None],
                 inflight_limit: int, metrics: ServeMetrics) -> None:
        self.index = index
        self.generation = generation
        self._loop = loop
        self._on_crash = on_crash
        self._depth_gauge = metrics.dispatch_depth(index)
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=engine_worker_main, args=(child_conn, index, engine_config),
            name=f"repro-serve-worker-{index}", daemon=True)
        self.process.start()
        child_conn.close()
        self._conn = parent_conn
        self.alive = True
        self._stopping = False
        self._credits = asyncio.Semaphore(inflight_limit)
        self._inflight = 0
        self._lock = threading.Lock()
        self._outbox: "queue.Queue[Optional[_Exchange]]" = queue.Queue()
        self._pending: Deque["asyncio.Future[Any]"] = deque()
        self._writer = threading.Thread(
            target=self._write_loop, daemon=True,
            name=f"repro-serve-w{index}-tx")
        self._reader = threading.Thread(
            target=self._read_loop, daemon=True,
            name=f"repro-serve-w{index}-rx")
        self._writer.start()
        self._reader.start()

    # -- event-loop side ------------------------------------------------

    async def request(self, message: Tuple[Any, ...]) -> Any:
        """One command round trip; raises the reply's error if any.

        Raises:
            WorkerCrashError: the worker is (or dies while) processing.
            ServeError: the worker replied with an error code.
        """
        if not self.alive:
            raise WorkerCrashError(
                f"engine worker {self.index} is down")
        async with self._credits:
            self._inflight += 1
            self._depth_gauge.set(float(self._inflight))
            future: "asyncio.Future[Any]" = self._loop.create_future()
            self._outbox.put((message, future))
            try:
                return await future
            finally:
                self._inflight -= 1
                self._depth_gauge.set(float(self._inflight))

    async def stop(self) -> None:
        """Graceful worker shutdown: ``stop`` round trip, then join.

        The pipe is FIFO and the worker single-threaded, so the ``stop``
        reply arriving means every previously dispatched feed completed —
        the "drain waits for all workers' in-flight feeds" guarantee.
        Escalates to terminate/kill when the worker does not answer.
        """
        if self.alive:
            self._stopping = True
            try:
                await asyncio.wait_for(self.request(("stop",)),
                                       _STOP_REPLY_TIMEOUT_S)
            except (ServeError, asyncio.TimeoutError):
                pass
        with self._lock:
            self.alive = False
        self._outbox.put(None)
        await self._loop.run_in_executor(None, self._join)

    # -- I/O threads ----------------------------------------------------

    def _write_loop(self) -> None:
        while True:
            item = self._outbox.get()
            if item is None:
                self._drain_outbox()
                return
            message, future = item
            with self._lock:
                if not self.alive:
                    self._reject(future)
                    continue
                self._pending.append(future)
            try:
                self._conn.send(message)
            except (BrokenPipeError, OSError, ValueError):
                self._mark_crashed()
                self._drain_outbox()
                return

    def _read_loop(self) -> None:
        while True:
            try:
                reply = self._conn.recv()
            except (EOFError, OSError):
                self._mark_crashed()
                return
            with self._lock:
                future = self._pending.popleft() if self._pending else None
            if future is None:  # pragma: no cover - defensive
                continue
            if reply[0] == "ok":
                self._resolve(future, reply[1])
            else:
                self._resolve_error(
                    future, ServeError(str(reply[2]), code=str(reply[1])))

    def _drain_outbox(self) -> None:
        """Fail whatever the writer never sent (crash/stop path)."""
        while True:
            try:
                item = self._outbox.get_nowait()
            except queue.Empty:
                return
            if item is not None:
                self._reject(item[1])

    def _mark_crashed(self) -> None:
        with self._lock:
            if not self.alive:
                return
            self.alive = False
            pending = list(self._pending)
            self._pending.clear()
            stopping = self._stopping
        self._outbox.put(None)  # stop the writer thread
        for future in pending:
            self._reject(future)
        if not stopping:
            try:
                self._loop.call_soon_threadsafe(self._on_crash, self)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass

    def _reject(self, future: "asyncio.Future[Any]") -> None:
        self._resolve_error(future, WorkerCrashError(
            f"engine worker {self.index} crashed"))

    def _resolve(self, future: "asyncio.Future[Any]", value: Any) -> None:
        def _set() -> None:
            if not future.done():
                future.set_result(value)
        try:
            self._loop.call_soon_threadsafe(_set)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass

    def _resolve_error(self, future: "asyncio.Future[Any]",
                       error: ServeError) -> None:
        def _set() -> None:
            if not future.done():
                future.set_exception(error)
                future.exception()  # some callers learn via the session
        try:
            self._loop.call_soon_threadsafe(_set)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass

    # -- process plumbing ----------------------------------------------

    def _join(self) -> None:
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=5.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join()
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - defensive
            pass


class WorkerPool:
    """N engine worker processes plus routing, credit, and respawn.

    Created on the running event loop (reader threads resolve futures
    through it).  ``crash_callback(index, error)`` runs on the loop when
    a worker dies, *before* the slot is respawned, so the session
    manager can fail exactly the sessions routed there.
    """

    def __init__(self, config: ServeConfig, engine_config: EngineConfig,
                 metrics: ServeMetrics,
                 crash_callback: Callable[[int, WorkerCrashError], None]
                 ) -> None:
        self.config = config
        self.engine_config = engine_config
        self.metrics = metrics
        self._crash_callback = crash_callback
        self._ctx = multiprocessing.get_context("spawn")
        self._loop = asyncio.get_running_loop()
        self.draining = False
        self.handles: List[_WorkerHandle] = [
            self._spawn(index, 0) for index in range(config.workers)]
        metrics.workers_alive.set(float(self.alive_count()))

    def _spawn(self, index: int, generation: int) -> _WorkerHandle:
        return _WorkerHandle(index, generation, self._ctx,
                             self.engine_config, self._loop,
                             self._handle_crash, self.config.worker_inflight,
                             self.metrics)

    # -- routing and dispatch ------------------------------------------

    def worker_for(self, tenant: str) -> int:
        return worker_for_tenant(tenant, self.config.workers)

    async def request(self, index: int, message: Tuple[Any, ...]) -> Any:
        return await self.handles[index].request(message)

    def alive_count(self) -> int:
        return sum(1 for handle in self.handles if handle.alive)

    def pids(self) -> Dict[int, Optional[int]]:
        """Worker index → live process pid (tests kill through this)."""
        return {handle.index: handle.process.pid
                for handle in self.handles if handle.alive}

    # -- crash handling (event-loop side) ------------------------------

    def _handle_crash(self, handle: _WorkerHandle) -> None:
        index = handle.index
        if self.handles[index] is not handle:  # pragma: no cover - stale
            return
        self.metrics.workers_alive.set(float(self.alive_count()))
        error = WorkerCrashError(
            f"engine worker {index} crashed; its in-worker session state "
            f"is lost")
        self._crash_callback(index, error)
        if self.draining:
            return
        self.handles[index] = self._spawn(index, handle.generation + 1)
        self.metrics.worker_respawns.inc()
        self.metrics.workers_alive.set(float(self.alive_count()))

    # -- metrics and shutdown ------------------------------------------

    async def metrics_snapshots(self) -> List[Dict[str, Any]]:
        """Per-worker registry snapshots (skipping unresponsive workers)."""
        snapshots: List[Dict[str, Any]] = []
        for handle in list(self.handles):
            if not handle.alive:
                continue
            try:
                snapshots.append(await asyncio.wait_for(
                    handle.request(("metrics",)), timeout=5.0))
            except (ServeError, asyncio.TimeoutError):
                continue
        return snapshots

    async def stop(self) -> None:
        """Drain-stop every worker; crashes stop respawning first."""
        self.draining = True
        await asyncio.gather(*(handle.stop() for handle in self.handles),
                             return_exceptions=True)
        self.metrics.workers_alive.set(0.0)
