"""Server-side observability (:mod:`repro.obs` registry wiring).

The serving layer keeps its own process-lifetime
:class:`~repro.obs.metrics.MetricsRegistry`, separate from the per-run
registries the engine opens inside each session: server metrics describe
the *service* (admission, queueing, batching, tenancy) and outlive any
single simulation.  The ``metrics`` wire verb snapshots this registry.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

from ..obs.metrics import MetricsRegistry, ObsCounter, ObsGauge

__all__ = ["ServeMetrics"]

#: Bucket bounds for admission latency (seconds converted to ns): spans
#: sub-microsecond enqueues through multi-millisecond stalls under load.
_ADMISSION_BOUNDS_NS = (
    1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9,
)

#: Bucket bounds for micro-batch occupancy (requests per engine feed);
#: powers of two up to the default vec epoch size and beyond.
_OCCUPANCY_BOUNDS = tuple(float(1 << i) for i in range(15))


class ServeMetrics:
    """Instruments of one server instance.

    Gauges track the instantaneous state (active sessions, per-tenant
    queue depth), counters the cumulative work (requests admitted or
    rejected per tenant, batches fed), histograms the distributions the
    ISSUE cares about: admission latency (receive → enqueued) and
    engine-feed batch occupancy (micro-batching effectiveness).
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self._started = time.monotonic()
        self.active_sessions = self.registry.gauge("serve_active_sessions")
        self.sessions_opened = self.registry.counter("serve_sessions_opened")
        self.sessions_finalized = self.registry.counter(
            "serve_sessions_finalized")
        self.admission_latency = self.registry.histogram(
            "serve_admission_latency_ns", _ADMISSION_BOUNDS_NS)
        self.batch_occupancy = self.registry.histogram(
            "serve_batch_occupancy", _OCCUPANCY_BOUNDS)
        #: Engine worker processes currently alive (0 in in-process mode;
        #: dips below ``--workers`` between a crash and its respawn).
        self.workers_alive = self.registry.gauge("serve_workers_alive")
        #: Cumulative worker respawns after crashes.
        self.worker_respawns = self.registry.counter(
            "serve_worker_respawns_total")

    def queue_depth(self, tenant: str) -> ObsGauge:
        """Per-tenant queued-request gauge."""
        return self.registry.gauge("serve_queue_depth", tenant=tenant)

    def requests_total(self, tenant: str) -> ObsCounter:
        """Per-tenant admitted-request counter."""
        return self.registry.counter("serve_requests_total", tenant=tenant)

    def rejected_total(self, tenant: str) -> ObsCounter:
        """Per-tenant backpressure-rejection counter."""
        return self.registry.counter("serve_rejected_total", tenant=tenant)

    def dispatch_depth(self, worker: int) -> ObsGauge:
        """Per-worker dispatched-but-unanswered IPC command gauge."""
        return self.registry.gauge("serve_dispatch_depth",
                                   worker=str(worker))

    def worker_sessions(self, worker: int) -> ObsGauge:
        """Per-worker routed-session gauge (parent-side view)."""
        return self.registry.gauge("serve_worker_sessions",
                                   worker=str(worker))

    def worker_requests(self, worker: int) -> ObsCounter:
        """Per-worker dispatched-request counter (parent-side view).

        Divided by server uptime at snapshot time this yields the
        per-worker request rate gauge in :meth:`merged_snapshot`.
        """
        return self.registry.counter("serve_worker_requests_total",
                                     worker=str(worker))

    def observe_admission(self, started_s: float, tenant: str,
                          accepted: int) -> None:
        """Record one accepted batch: latency + per-tenant volume."""
        self.admission_latency.observe((time.monotonic() - started_s) * 1e9)
        self.requests_total(tenant).inc(accepted)

    def snapshot(self) -> Dict[str, Any]:
        """The ``metrics`` verb's payload: rows plus the flat view."""
        return {"metrics": self.registry.snapshot(),
                "flat": self.registry.as_flat()}

    def merged_snapshot(
            self, worker_snapshots: List[Dict[str, Any]]) -> Dict[str, Any]:
        """The multi-process ``metrics`` payload: server registry plus
        every worker's registry snapshot, merged into one row list / flat
        view (worker instruments carry a ``worker`` label, so merging is
        concatenation — no key collisions).

        Derived per-worker request rates (``serve_worker_req_per_s``) are
        computed here from the dispatch counters and server uptime, so
        the gauge is only as stale as the last snapshot.
        """
        uptime_s = max(time.monotonic() - self._started, 1e-9)
        for instrument in list(self.registry.instruments()):
            if (isinstance(instrument, ObsCounter)
                    and instrument.name == "serve_worker_requests_total"):
                labels = dict(instrument.labels)
                self.registry.gauge(
                    "serve_worker_req_per_s", **labels).set(
                        instrument.value / uptime_s)
        merged = self.snapshot()
        rows: List[Any] = list(merged["metrics"])
        flat: Dict[str, float] = dict(merged["flat"])
        for snapshot in worker_snapshots:
            rows.extend(snapshot.get("rows", []))
            flat.update(snapshot.get("flat", {}))
        return {"metrics": rows, "flat": flat}
