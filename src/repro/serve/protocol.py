"""Wire protocol of the dedup-as-a-service front end.

Newline-delimited JSON over a byte stream: every message is one JSON
object on one line (LF-terminated, UTF-8).  The framing needs nothing
beyond the stdlib, works over asyncio streams and plain sockets alike,
and keeps the protocol greppable on the wire.

Client → server messages carry a ``verb``:

``hello``
    Open a session.  Fields: ``scheme`` (any token
    :func:`repro.registry.resolve_scheme_name` accepts), optional
    ``tenant`` label, ``app``, ``total_hint``, and ``options`` — a flat
    dotted-path mapping applied to the base system configuration via
    :meth:`~repro.common.config.SystemConfig.with_options` (the
    per-tenant configuration surface).  Reply: ``{"ok": true, "session":
    id, "protocol": 1, "credits": n, "batch_hint": m}``.
``batch``
    Feed requests.  ``requests`` is a list of compact positional arrays
    (see :func:`encode_request`).  Reply: an ack with the remaining
    queue ``credits``, or a backpressure rejection ``{"ok": false,
    "error": "backpressure", "retry_after_ms": m}`` — nothing from the
    rejected batch is enqueued; the client waits and resends.
``finalize``
    Drain the session's queue, finalize the engine session, reply with
    ``{"ok": true, "summary": {...}, "state": {...}}`` where ``state``
    is the lossless :func:`repro.sim.export.result_to_state` snapshot
    (the loopback parity gate reconstructs the full result from it).
``metrics``
    Snapshot of the server's obs registry (rows + flat view).
``schemes``
    Registered scheme names, for discovery.
``ping``
    Liveness check; replies ``{"ok": true}``.

Every reply carries ``"ok"``; failures add ``"error"`` (a machine code
from :data:`ERROR_CODES`) and a human ``"detail"``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from ..common.errors import ServeError
from ..common.types import AccessType, MemoryRequest, request_unchecked

__all__ = [
    "ERROR_CODES",
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "decode_message",
    "decode_request",
    "decode_requests",
    "encode_message",
    "encode_request",
    "error_reply",
    "ok_reply",
]

#: Bumped on incompatible wire changes; ``hello`` replies carry it.
PROTOCOL_VERSION = 1

#: Upper bound on one NDJSON line.  The dominant message is a ``batch``
#: of compact request arrays (~150 bytes each hex-encoded); 8 MiB admits
#: tens of thousands of requests per batch while bounding a hostile or
#: corrupt peer's memory demand.
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Machine-readable error codes a reply's ``error`` field may carry.
ERROR_CODES = (
    "backpressure",      # session ingest queue full; retry after delay
    "bad_request",       # malformed message or request array
    "protocol",          # framing violation (overlong/non-JSON line)
    "unknown_scheme",    # hello named an unregistered scheme
    "unknown_session",   # verb referenced a session this server lacks
    "session_limit",     # max concurrent sessions reached
    "shutting_down",     # server is draining; no new sessions
    "failed",            # engine-side failure (e.g. IntegrityError)
    "worker_crash",      # the session's engine worker process died
    "internal",          # unexpected server error
)

_KIND_TO_ACCESS = {"W": AccessType.WRITE, "R": AccessType.READ}
_ACCESS_TO_KIND = {AccessType.WRITE: "W", AccessType.READ: "R"}


def encode_request(request: MemoryRequest) -> List[Any]:
    """Compact positional form of one request.

    ``[kind, address, issue_ns, core, seq, data]`` with ``kind`` one of
    ``"W"``/``"R"`` and ``data`` the 64-byte payload hex-encoded (writes)
    or ``None`` (reads).  Positional arrays rather than objects because a
    trace is millions of these: the keys would dominate the wire.
    """
    return [_ACCESS_TO_KIND[request.access], request.address,
            request.issue_time_ns, request.core, request.seq,
            request.data.hex() if request.data is not None else None]


def decode_request(wire: Sequence[Any]) -> MemoryRequest:
    """Validate and rebuild one request from its wire array.

    Uses the validating :class:`MemoryRequest` constructor — the server
    must not trust the peer's framing (alignment, payload length, read
    vs write invariants all re-checked).

    Raises:
        ServeError: (code ``bad_request``) on any malformed array.
    """
    try:
        kind, address, issue_ns, core, seq, data_hex = wire
        access = _KIND_TO_ACCESS[kind]
        data = bytes.fromhex(data_hex) if data_hex is not None else None
        return MemoryRequest(address=address, access=access, data=data,
                             issue_time_ns=float(issue_ns), core=int(core),
                             seq=int(seq))
    except ServeError:
        raise
    except Exception as exc:
        raise ServeError(f"malformed request array: {exc}",
                         code="bad_request") from exc


def decode_requests(wire: Sequence[Sequence[Any]]) -> List[MemoryRequest]:
    """Decode a batch of wire arrays (see :func:`decode_request`).

    The hot-loop form: the kind table, the hex decoder, the constructor,
    and the output append are hoisted into locals and the whole batch
    shares one try block, so per-request cost is the validating
    constructor and nothing else.  Error behavior matches the per-item
    form — any malformed array rejects the whole batch with
    ``bad_request`` (all-or-nothing, like admission itself).
    """
    out: List[MemoryRequest] = []
    append = out.append
    kind_to_access = _KIND_TO_ACCESS
    from_hex = bytes.fromhex
    make = MemoryRequest
    try:
        for kind, address, issue_ns, core, seq, data_hex in wire:
            append(make(
                address=address, access=kind_to_access[kind],
                data=from_hex(data_hex) if data_hex is not None else None,
                issue_time_ns=float(issue_ns), core=int(core),
                seq=int(seq)))
    except ServeError:
        raise
    except Exception as exc:
        raise ServeError(f"malformed request array: {exc}",
                         code="bad_request") from exc
    return out


def encode_requests(requests: Sequence[MemoryRequest]) -> List[List[Any]]:
    """Encode a batch of requests (client side)."""
    return [encode_request(request) for request in requests]


def trusted_decode_requests(
        wire: Sequence[Sequence[Any]]) -> List[MemoryRequest]:
    """Decode a batch skipping per-object validation.

    For loopback/bench use where the producer is this process's own
    :func:`encode_requests`; uses :func:`request_unchecked`.
    """
    out: List[MemoryRequest] = []
    append = out.append
    for kind, address, issue_ns, core, seq, data_hex in wire:
        append(request_unchecked(
            address, _KIND_TO_ACCESS[kind],
            bytes.fromhex(data_hex) if data_hex is not None else None,
            float(issue_ns), core, seq))
    return out


def encode_message(message: Dict[str, Any]) -> bytes:
    """One NDJSON frame: compact JSON + LF."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one received frame.

    Raises:
        ServeError: (code ``protocol``) when the line is not a JSON
            object.
    """
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ServeError(f"frame is not valid JSON: {exc}",
                         code="protocol") from exc
    if not isinstance(message, dict):
        raise ServeError("frame must be a JSON object",
                         code="protocol")
    return message


def ok_reply(**fields: Any) -> Dict[str, Any]:
    """A success reply with extra fields."""
    reply: Dict[str, Any] = {"ok": True}
    reply.update(fields)
    return reply


def error_reply(code: str, detail: str,
                **fields: Any) -> Dict[str, Any]:
    """A failure reply; ``code`` must come from :data:`ERROR_CODES`."""
    assert code in ERROR_CODES, code
    reply: Dict[str, Any] = {"ok": False, "error": code, "detail": detail}
    reply.update(fields)
    return reply


class WireReader:
    """Incremental NDJSON splitter for blocking (socket-file) readers.

    The asyncio path uses ``StreamReader.readline`` directly; the sync
    client shares this helper to enforce the same :data:`MAX_LINE_BYTES`
    bound.
    """

    def __init__(self, fh: Any) -> None:
        self._fh = fh

    def read_message(self) -> Optional[Dict[str, Any]]:
        """Next message, or ``None`` at EOF.

        Raises:
            ServeError: (code ``protocol``) on an overlong or non-JSON
                line.
        """
        line = self._fh.readline(MAX_LINE_BYTES + 1)
        if not line:
            return None
        if len(line) > MAX_LINE_BYTES:
            raise ServeError(
                f"frame exceeds {MAX_LINE_BYTES} bytes", code="protocol")
        return decode_message(line)
