"""Engine worker process: the spawn entry of the serve worker pool.

One worker process owns one engine's worth of state: the process-global
memo caches (:mod:`repro.perf.memo`), vectorization flags, and
observability scope are all *per process*, so N workers simulate on N
cores with no shared interpreter — the whole point of the pool
(DESIGN.md §14).  The parent routes every session's
``open``/``feed``/``finalize`` stream to one worker (tenant-hash
affinity), so within a worker the engine session API is driven exactly
as the in-process path drives it and results stay bit-exact.

IPC is the parent's :class:`multiprocessing.connection.Connection`
(length-prefixed pickle frames — the stdlib codec, chosen over NDJSON
because batches are already-validated :class:`MemoryRequest` objects).
Commands are positional tuples headed by a verb; every command gets
exactly one reply, in order:

``("open", sid, scheme_name, system_config, app, total_hint)``
    Construct the scheme + engine and open the session.
``("feed", sid, requests)``
    Feed one micro-batch (decoded, validated requests).
``("finalize", sid)``
    Finalize; replies with the ``{"summary", "state"}`` payload.
``("close", sid)``
    Drop a session without a result (client connection lost).
``("metrics",)``
    Snapshot of the worker-local obs registry (merged by the parent's
    ``metrics`` wire verb).
``("stop",)``
    Acknowledge and exit — sent only after the parent drained, so the
    FIFO pipe guarantees all in-flight feeds complete first.

Replies are ``("ok", payload)`` or ``("err", code, detail)`` with
``code`` from the wire protocol's :data:`~repro.serve.protocol.ERROR_CODES`
(engine failures such as :class:`IntegrityError` become ``failed``).
The worker never initiates traffic; an unreadable pipe means the parent
died and the worker exits.
"""

from __future__ import annotations

import signal
import time
from multiprocessing.connection import Connection
from typing import Any, Dict, Optional, Tuple

from ..common.errors import ReproError
from ..obs.metrics import MetricsRegistry
from ..registry import make_scheme
from ..sim.engine import EngineConfig, SimulationEngine
from ..sim.export import result_to_state
from ..sim.session import Session

__all__ = ["EngineWorker", "engine_worker_main"]

#: Reply tuple: ("ok", payload) | ("err", code, detail).
Reply = Tuple[Any, ...]

#: Bucket bounds (seconds) for the per-feed engine time histogram.
_FEED_BOUNDS_S = (1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0)


class EngineWorker:
    """Command handler of one engine worker process.

    Kept separate from :func:`engine_worker_main` so tests can drive the
    command protocol in-process without spawning.
    """

    def __init__(self, worker_id: int,
                 engine_config: Optional[EngineConfig] = None) -> None:
        self.worker_id = worker_id
        self.engine_config = engine_config or EngineConfig()
        self.sessions: Dict[str, Session] = {}
        self.registry = MetricsRegistry()
        label = str(worker_id)
        self._feeds = self.registry.counter(
            "serve_worker_feeds_total", worker=label)
        self._fed_requests = self.registry.counter(
            "serve_worker_fed_requests_total", worker=label)
        self._opened = self.registry.counter(
            "serve_worker_sessions_opened_total", worker=label)
        self._finalized = self.registry.counter(
            "serve_worker_sessions_finalized_total", worker=label)
        self._open_gauge = self.registry.gauge(
            "serve_worker_open_sessions", worker=label)
        self._feed_seconds = self.registry.histogram(
            "serve_worker_feed_seconds", _FEED_BOUNDS_S, worker=label)

    def _unknown(self, sid: object) -> Reply:
        return ("err", "unknown_session",
                f"worker {self.worker_id} has no session {sid!r}")

    def handle(self, message: Tuple[Any, ...]) -> Reply:
        """Process one command tuple; always returns a reply tuple."""
        verb = message[0]
        try:
            if verb == "feed":
                # The hot verb: one micro-batch into one session.
                _, sid, requests = message
                session = self.sessions.get(sid)
                if session is None:
                    return self._unknown(sid)
                started = time.perf_counter()
                session.feed(requests)
                self._feed_seconds.observe(time.perf_counter() - started)
                self._feeds.inc()
                self._fed_requests.inc(float(len(requests)))
                return ("ok", None)
            if verb == "open":
                _, sid, scheme_name, system_config, app, total_hint = message
                scheme = make_scheme(scheme_name, system_config)
                engine = SimulationEngine(scheme, self.engine_config)
                self.sessions[sid] = engine.open_session(
                    app=app, total_hint=total_hint)
                self._opened.inc()
                self._open_gauge.set(float(len(self.sessions)))
                return ("ok", None)
            if verb == "finalize":
                sid = message[1]
                session = self.sessions.pop(sid, None)
                if session is None:
                    return self._unknown(sid)
                result = session.finalize()
                self._finalized.inc()
                self._open_gauge.set(float(len(self.sessions)))
                return ("ok", {"summary": result.summary_row(),
                               "state": result_to_state(result)})
            if verb == "close":
                session = self.sessions.pop(message[1], None)
                if session is not None:
                    session.close()
                self._open_gauge.set(float(len(self.sessions)))
                return ("ok", None)
            if verb == "metrics":
                return ("ok", {"rows": self.registry.snapshot(),
                               "flat": self.registry.as_flat()})
            if verb == "stop":
                return ("ok", None)
            return ("err", "bad_request", f"unknown worker verb {verb!r}")
        except ReproError as exc:
            # Engine-side failures (IntegrityError, SessionError, ...)
            # fail the one session they occurred in, not the worker.
            return ("err", "failed", f"{type(exc).__name__}: {exc}")
        except Exception as exc:  # pragma: no cover - defensive
            return ("err", "internal", f"{type(exc).__name__}: {exc}")


def engine_worker_main(conn: Connection, worker_id: int,
                       engine_config: Optional[EngineConfig]) -> None:
    """Blocking command loop of a worker process (spawn target).

    SIGINT is ignored: a Ctrl-C to the server's process group must drain
    through the parent's signal handler, not kill workers mid-feed.  The
    parent's death (pipe EOF) ends the loop.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    worker = EngineWorker(worker_id, engine_config)
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            reply = worker.handle(message)
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
            if message[0] == "stop":
                break
    finally:
        conn.close()
