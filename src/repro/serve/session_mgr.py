"""Serve-side session lifecycle: tenancy, queues, micro-batching, routing.

One :class:`ServeSession` pairs a network-facing ingest queue with one
engine session.  The connection handler (:mod:`repro.serve.server`)
admits decoded request batches into the queue (or rejects them with
backpressure when they do not fit); a per-session drain task pulls
queued requests in vec-epoch-sized micro-batches and feeds the engine.

Where the engine lives depends on ``ServeConfig.workers``:

* ``workers == 1`` — the in-process fast path, unchanged from the
  single-process server: the engine :class:`~repro.sim.session.Session`
  runs on an executor thread under the manager's *engine lock* (the
  fast-path/vectorized/observability switches each ``feed`` installs are
  process-global, so two sessions must never be inside ``feed``
  concurrently).  Concurrency is interleaving, not parallelism — the
  GIL bounds the engine to one core.
* ``workers > 1`` — the engine session lives inside one of N spawned
  worker processes (:mod:`repro.serve.pool`), selected once at open by
  consistent tenant-hash affinity; the drain task becomes a dispatch
  loop awaiting IPC round trips.  Sessions on distinct workers simulate
  in true parallel, each worker owning its own process-global engine
  state.  A crashed worker fails exactly the sessions routed to it with
  :class:`~repro.common.errors.WorkerCrashError`; everyone else keeps
  streaming (DESIGN.md §14).
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..common.config import SystemConfig
from ..common.errors import (
    ConfigError,
    ReproError,
    ServeError,
    WorkerCrashError,
)
from ..common.types import MemoryRequest
from ..obs.metrics import ObsCounter, ObsGauge
from ..registry import make_scheme, resolve_scheme_name
from ..sim.engine import EngineConfig, SimulationEngine
from ..sim.export import result_to_state
from ..sim.runner import scaled_system_config
from ..sim.session import Session
from .config import ServeConfig
from .obs import ServeMetrics
from .pool import WorkerPool

__all__ = ["ServeSession", "SessionManager"]

#: Executor threads of the in-process path.  Engine work is serialized
#: by the engine lock regardless, so two threads only overlap an engine
#: feed with session open/finalize bookkeeping; the knob that used to
#: size this pool (``ServeConfig.workers``) now counts worker processes.
_INPROC_EXECUTOR_THREADS = 2


class ServeSession:
    """One tenant's in-flight simulation on the server.

    States: ``open`` (accepting batches) → ``finalizing`` (queue
    draining, no new batches) → ``done`` | ``failed``.

    Exactly one of ``engine`` (in-process mode) or ``worker >= 0``
    (pool mode: the worker index its engine session lives on) is set.
    Hot-loop collaborators — the queue limit, the tenant's metric
    instruments — are resolved once here, not per admitted batch.
    """

    def __init__(self, sid: str, tenant: str, manager: "SessionManager", *,
                 engine: Optional[Session] = None,
                 worker: int = -1) -> None:
        self.sid = sid
        self.tenant = tenant
        self.engine = engine
        self.worker = worker
        self.state = "open"
        self._manager = manager
        self._pending: Deque[MemoryRequest] = deque()
        self._wakeup = asyncio.Event()
        self._error: Optional[ServeError] = None
        self._finalize_requested = False
        self._queue_limit = manager.config.queue_limit
        metrics = manager.metrics
        self._queue_gauge = metrics.queue_depth(tenant)
        self._requests_counter = metrics.requests_total(tenant)
        self._rejected_counter = metrics.rejected_total(tenant)
        self._admission_hist = metrics.admission_latency
        self._occupancy_hist = metrics.batch_occupancy
        loop = asyncio.get_running_loop()
        self._result: "asyncio.Future[Dict[str, Any]]" = loop.create_future()
        self._drain_task = loop.create_task(self._drain_loop())

    # -- admission (event-loop side) -----------------------------------

    @property
    def credits(self) -> int:
        """Free slots in the ingest queue."""
        return self._queue_limit - len(self._pending)

    def admit(self, requests: List[MemoryRequest]) -> int:
        """Enqueue a whole batch or reject it; returns remaining credits.

        All-or-nothing: a batch larger than the remaining credits raises
        ``backpressure`` and enqueues nothing, so the client can resend
        the identical batch after the advertised delay.

        Raises:
            ServeError: ``backpressure`` when the batch does not fit;
                the session's own error when it already failed;
                ``bad_request`` when the session is past ``open``.
        """
        if self._error is not None:
            raise self._error
        if self.state != "open":
            raise ServeError(
                f"session {self.sid} is {self.state}, not accepting "
                f"batches", code="bad_request")
        limit = self._queue_limit
        pending = self._pending
        if len(requests) > limit:
            # Would never fit an empty queue either — backpressure would
            # have the client retrying forever.
            raise ServeError(
                f"batch of {len(requests)} exceeds the queue limit "
                f"({limit}); split it", code="bad_request")
        if len(requests) > limit - len(pending):
            self._rejected_counter.inc()
            raise ServeError(
                f"ingest queue full ({len(pending)}/{limit} queued)",
                code="backpressure")
        pending.extend(requests)
        self._queue_gauge.set(float(len(pending)))
        self._wakeup.set()
        return limit - len(pending)

    def note_admitted(self, started_s: float, accepted: int,
                      now_s: float) -> None:
        """Record one accepted batch against this session's hoisted
        instruments: admission latency plus per-tenant volume."""
        self._admission_hist.observe((now_s - started_s) * 1e9)
        self._requests_counter.inc(float(accepted))

    def request_finalize(self) -> "asyncio.Future[Dict[str, Any]]":
        """Begin drain+finalize; returns the future of the reply payload."""
        if self._error is not None:
            raise self._error
        if self.state == "open":
            self.state = "finalizing"
            self._finalize_requested = True
            self._wakeup.set()
        return self._result

    def fail(self, error: ServeError) -> None:
        """Fail the session from outside the drain loop (worker crash).

        Idempotent; the drain task's cancellation runs its ``finally``
        and releases the session from the table.
        """
        if self._error is not None or self.state in ("done", "failed"):
            return
        self.state = "failed"
        self._error = error
        if not self._result.done():
            self._result.set_exception(error)
            # The client may never come back to finalize; mark the
            # exception retrieved so the loop does not log it as lost.
            self._result.exception()
        self._drain_task.cancel()

    async def abort(self) -> None:
        """Drop the session (connection lost before finalize)."""
        if self.state in ("open", "finalizing"):
            self.state = "failed"
        self._drain_task.cancel()
        try:
            await self._drain_task
        except (asyncio.CancelledError, Exception):
            pass
        await self._manager.discard_session(self)
        if not self._result.done():
            self._result.cancel()

    # -- drain (event-loop task) ---------------------------------------

    async def _drain_loop(self) -> None:
        manager = self._manager
        batch_hint = manager.batch_hint
        pending = self._pending
        try:
            while True:
                while not pending and not self._finalize_requested:
                    self._wakeup.clear()
                    await self._wakeup.wait()
                if pending:
                    # Micro-batch: everything queued, capped at one vec
                    # epoch, so the engine session's epoch former stays
                    # busy without one tenant monopolizing a worker.
                    take = min(len(pending), batch_hint)
                    batch = [pending.popleft() for _ in range(take)]
                    self._queue_gauge.set(float(len(pending)))
                    self._occupancy_hist.observe(float(take))
                    await manager.feed_session(self, batch)
                else:
                    payload = await manager.finalize_session(self)
                    self.state = "done"
                    manager.metrics.sessions_finalized.inc()
                    if not self._result.done():
                        self._result.set_result(payload)
                    return
        except asyncio.CancelledError:
            raise
        except ServeError as exc:
            # Typed serve failures keep their wire code — most notably
            # WorkerCrashError ("worker_crash") from a dead worker.
            self._record_failure(exc)
        except ReproError as exc:
            self._record_failure(ServeError(
                f"session {self.sid} failed: {exc}", code="failed"))
        except Exception as exc:  # pragma: no cover - defensive
            self._record_failure(ServeError(
                f"session {self.sid} internal error: {exc}",
                code="internal"))
        finally:
            self._queue_gauge.set(0.0)
            manager.release(self)

    def _record_failure(self, error: ServeError) -> None:
        self.state = "failed"
        if self._error is None:
            self._error = error
        if not self._result.done():
            self._result.set_exception(self._error)
            # The client may learn of the failure from a batch reply and
            # never finalize; mark retrieved so the loop stays quiet.
            self._result.exception()


class SessionManager:
    """Owns the session table plus the engine back end (lock or pool)."""

    def __init__(self, config: ServeConfig,
                 engine_config: Optional[EngineConfig] = None,
                 base_config: Optional[SystemConfig] = None) -> None:
        self.config = config
        self.engine_config = engine_config or EngineConfig()
        #: Base system configuration each tenant's options are applied to
        #: (the CLI grid's scaled config, so loopback rows match ``run``).
        self.base_config = base_config or scaled_system_config()
        self.metrics = ServeMetrics()
        self.executor = ThreadPoolExecutor(
            max_workers=_INPROC_EXECUTOR_THREADS,
            thread_name_prefix="repro-serve")
        #: Serializes all in-process engine work — see the module doc.
        self.engine_lock = threading.Lock()
        self.batch_hint = self.engine_config.vec_epoch_size
        self.sessions: Dict[str, ServeSession] = {}
        self.draining = False
        self._ids = itertools.count(1)
        #: Set whenever the session table empties (drain coordination).
        self.idle = asyncio.Event()
        self.idle.set()
        #: Error tombstones of recently failed sessions, so a client
        #: still streaming learns *why* its session vanished (e.g. the
        #: typed ``worker_crash``) instead of ``unknown_session``.
        #: Bounded FIFO — entries only matter for the brief window
        #: between failure and the client noticing.
        self._failed: Dict[str, ServeError] = {}
        self._failed_order: Deque[str] = deque()
        #: The multi-process back end; ``None`` until :meth:`start` in
        #: ``workers > 1`` mode, always ``None`` in in-process mode.
        self.pool: Optional[WorkerPool] = None
        self._worker_counts: List[int] = []
        self._worker_session_gauges: List[ObsGauge] = []
        self._worker_req_counters: List[ObsCounter] = []

    async def start(self) -> None:
        """Bring up the engine back end (must run on the event loop).

        In-process mode is a no-op; multi-process mode spawns the worker
        pool here because its reader threads resolve futures through the
        running loop.
        """
        if self.config.workers <= 1 or self.pool is not None:
            return
        self.pool = WorkerPool(self.config, self.engine_config,
                               self.metrics, self._on_worker_crash)
        self._worker_counts = [0] * self.config.workers
        self._worker_session_gauges = [
            self.metrics.worker_sessions(index)
            for index in range(self.config.workers)]
        self._worker_req_counters = [
            self.metrics.worker_requests(index)
            for index in range(self.config.workers)]

    # -- in-process engine work (executor threads) ----------------------

    def open_locked(self, scheme_name: str, system_config: SystemConfig,
                    app: str, total_hint: Optional[int]) -> Session:
        with self.engine_lock:
            scheme = make_scheme(scheme_name, system_config)
            engine = SimulationEngine(scheme, self.engine_config)
            return engine.open_session(app=app, total_hint=total_hint)

    def feed_locked(self, session: Session,
                    batch: List[MemoryRequest]) -> None:
        with self.engine_lock:
            session.feed(batch)

    def finalize_locked(self, session: Session) -> Dict[str, Any]:
        with self.engine_lock:
            result = session.finalize()
        return {"summary": result.summary_row(),
                "state": result_to_state(result)}

    # -- engine dispatch (event-loop side; both modes) ------------------

    async def feed_session(self, session: ServeSession,
                           batch: List[MemoryRequest]) -> None:
        """Feed one micro-batch into the session's engine."""
        if session.worker >= 0:
            assert self.pool is not None
            self._worker_req_counters[session.worker].inc(float(len(batch)))
            await self.pool.request(session.worker,
                                    ("feed", session.sid, batch))
        else:
            assert session.engine is not None
            await asyncio.get_running_loop().run_in_executor(
                self.executor, self.feed_locked, session.engine, batch)

    async def finalize_session(self, session: ServeSession
                               ) -> Dict[str, Any]:
        """Finalize the session's engine; returns the reply payload."""
        if session.worker >= 0:
            assert self.pool is not None
            payload = await self.pool.request(
                session.worker, ("finalize", session.sid))
            assert isinstance(payload, dict)
            return payload
        assert session.engine is not None
        result: Dict[str, Any] = await asyncio.get_running_loop(
        ).run_in_executor(self.executor, self.finalize_locked,
                          session.engine)
        return result

    async def discard_session(self, session: ServeSession) -> None:
        """Drop the engine side of an aborted session (best effort)."""
        if session.worker >= 0:
            if self.pool is None:
                return
            try:
                await self.pool.request(session.worker,
                                        ("close", session.sid))
            except ServeError:
                pass
        elif session.engine is not None:
            session.engine.close()

    def _on_worker_crash(self, index: int, error: WorkerCrashError) -> None:
        """Pool crash callback: fail exactly the sessions routed there."""
        for session in list(self.sessions.values()):
            if session.worker == index:
                session.fail(error)

    # -- session table (event-loop side) -------------------------------

    async def open(self, message: Dict[str, Any]) -> Tuple[ServeSession, int]:
        """Open a session from a ``hello``; returns it plus its credits.

        Raises:
            ServeError: ``shutting_down`` during drain, ``session_limit``
                at capacity, ``unknown_scheme`` / ``bad_request`` on a
                bad scheme token or tenant options, ``worker_crash``
                when the affinity worker died and is still respawning.
        """
        if self.draining:
            raise ServeError("server is draining; no new sessions",
                             code="shutting_down")
        if len(self.sessions) >= self.config.max_sessions:
            raise ServeError(
                f"session limit ({self.config.max_sessions}) reached",
                code="session_limit")
        try:
            scheme_name = resolve_scheme_name(str(message.get("scheme", "")))
        except ValueError as exc:
            raise ServeError(str(exc), code="unknown_scheme") from exc
        options = message.get("options") or {}
        if not isinstance(options, dict):
            raise ServeError("options must be an object",
                             code="bad_request")
        try:
            system_config = self.base_config.with_options(options)
        except ConfigError as exc:
            raise ServeError(f"bad tenant options: {exc}",
                             code="bad_request") from exc
        tenant = str(message.get("tenant", "default"))
        app = str(message.get("app", "served"))
        total_hint = message.get("total_hint")
        if total_hint is not None:
            total_hint = int(total_hint)

        sid = f"s{next(self._ids)}"
        if self.pool is not None:
            worker = self.pool.worker_for(tenant)
            await self.pool.request(
                worker, ("open", sid, scheme_name, system_config, app,
                         total_hint))
            serve_session = ServeSession(sid, tenant, self, worker=worker)
            self._worker_counts[worker] += 1
            self._worker_session_gauges[worker].set(
                float(self._worker_counts[worker]))
        else:
            engine = await asyncio.get_running_loop().run_in_executor(
                self.executor, self.open_locked, scheme_name, system_config,
                app, total_hint)
            serve_session = ServeSession(sid, tenant, self, engine=engine)
        self.sessions[sid] = serve_session
        self.idle.clear()
        self.metrics.sessions_opened.inc()
        self.metrics.active_sessions.set(float(len(self.sessions)))
        return serve_session, serve_session.credits

    def get(self, sid: Any) -> ServeSession:
        session = self.sessions.get(sid) if isinstance(sid, str) else None
        if session is None:
            failed = self._failed.get(sid) if isinstance(sid, str) else None
            if failed is not None:
                raise failed
            raise ServeError(f"unknown session {sid!r}",
                             code="unknown_session")
        return session

    def release(self, session: ServeSession) -> None:
        """Drop a finished session from the table (drain-task callback)."""
        if session._error is not None:
            self._failed[session.sid] = session._error
            self._failed_order.append(session.sid)
            while len(self._failed_order) > 128:
                self._failed.pop(self._failed_order.popleft(), None)
        if self.sessions.pop(session.sid, None) is not None:
            self.metrics.active_sessions.set(float(len(self.sessions)))
            if session.worker >= 0 and self._worker_counts:
                self._worker_counts[session.worker] -= 1
                self._worker_session_gauges[session.worker].set(
                    float(self._worker_counts[session.worker]))
        if not self.sessions:
            self.idle.set()

    # -- observability and shutdown ------------------------------------

    async def metrics_snapshot(self) -> Dict[str, Any]:
        """The ``metrics`` verb's payload; merges worker registries in
        multi-process mode."""
        if self.pool is None:
            return self.metrics.snapshot()
        return self.metrics.merged_snapshot(
            await self.pool.metrics_snapshots())

    async def drain(self, grace_s: float) -> bool:
        """Stop admitting sessions; wait for the table to empty.

        Returns True when every in-flight session finished within the
        grace period, False when stragglers had to be aborted.
        """
        self.draining = True
        if not self.sessions:
            return True
        try:
            await asyncio.wait_for(self.idle.wait(), timeout=grace_s)
            return True
        except asyncio.TimeoutError:
            for session in list(self.sessions.values()):
                await session.abort()
            return False

    async def shutdown(self) -> None:
        """Tear down the engine back end after drain.

        Pool mode sends every worker a ``stop`` and joins it — the FIFO
        pipes guarantee all previously dispatched feeds completed first.
        """
        if self.pool is not None:
            await self.pool.stop()
        self.executor.shutdown(wait=True)
