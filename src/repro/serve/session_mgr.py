"""Serve-side session lifecycle: tenancy, queues, micro-batching.

One :class:`ServeSession` pairs a network-facing ingest queue with one
engine :class:`~repro.sim.session.Session`.  The connection handler
(:mod:`repro.serve.server`) admits decoded request batches into the
queue (or rejects them with backpressure when they do not fit); a
per-session drain task pulls queued requests in vec-epoch-sized
micro-batches and feeds the engine session on a worker thread.

Engine work is serialized across sessions by the server's *engine lock*:
the fast-path/vectorized/observability switches the engine session
installs around each ``feed`` are process-global
(:mod:`repro.sim.session`), so two sessions must never be inside
``feed`` concurrently.  The lock also covers session open and finalize
(open resets the process-global memo caches).  Concurrency between
sessions is therefore *interleaving*, not parallelism — which matches
the engine's CPU profile (pure-Python, GIL-bound) while letting every
tenant make progress.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..common.config import SystemConfig
from ..common.errors import ConfigError, ReproError, ServeError
from ..common.types import MemoryRequest
from ..registry import make_scheme, resolve_scheme_name
from ..sim.engine import EngineConfig, SimulationEngine
from ..sim.export import result_to_state
from ..sim.runner import scaled_system_config
from ..sim.session import Session
from .config import ServeConfig
from .obs import ServeMetrics

__all__ = ["ServeSession", "SessionManager"]


class ServeSession:
    """One tenant's in-flight simulation on the server.

    States: ``open`` (accepting batches) → ``finalizing`` (queue
    draining, no new batches) → ``done`` | ``failed``.
    """

    def __init__(self, sid: str, tenant: str, session: Session,
                 manager: "SessionManager") -> None:
        self.sid = sid
        self.tenant = tenant
        self.session = session
        self.state = "open"
        self._manager = manager
        self._pending: Deque[MemoryRequest] = deque()
        self._wakeup = asyncio.Event()
        self._error: Optional[ServeError] = None
        self._finalize_requested = False
        loop = asyncio.get_running_loop()
        self._result: "asyncio.Future[Dict[str, Any]]" = loop.create_future()
        self._queue_gauge = manager.metrics.queue_depth(tenant)
        self._drain_task = loop.create_task(self._drain_loop())

    # -- admission (event-loop side) -----------------------------------

    @property
    def credits(self) -> int:
        """Free slots in the ingest queue."""
        return self._manager.config.queue_limit - len(self._pending)

    def admit(self, requests: List[MemoryRequest]) -> int:
        """Enqueue a whole batch or reject it; returns remaining credits.

        All-or-nothing: a batch larger than the remaining credits raises
        ``backpressure`` and enqueues nothing, so the client can resend
        the identical batch after the advertised delay.

        Raises:
            ServeError: ``backpressure`` when the batch does not fit;
                the session's own error when it already failed;
                ``bad_request`` when the session is past ``open``.
        """
        if self._error is not None:
            raise self._error
        if self.state != "open":
            raise ServeError(
                f"session {self.sid} is {self.state}, not accepting "
                f"batches", code="bad_request")
        limit = self._manager.config.queue_limit
        if len(requests) > limit:
            # Would never fit an empty queue either — backpressure would
            # have the client retrying forever.
            raise ServeError(
                f"batch of {len(requests)} exceeds the queue limit "
                f"({limit}); split it", code="bad_request")
        if len(requests) > self.credits:
            raise ServeError(
                f"ingest queue full ({len(self._pending)}/{limit} queued)",
                code="backpressure")
        self._pending.extend(requests)
        self._queue_gauge.set(float(len(self._pending)))
        self._wakeup.set()
        return self.credits

    def request_finalize(self) -> "asyncio.Future[Dict[str, Any]]":
        """Begin drain+finalize; returns the future of the reply payload."""
        if self._error is not None:
            raise self._error
        if self.state == "open":
            self.state = "finalizing"
            self._finalize_requested = True
            self._wakeup.set()
        return self._result

    async def abort(self) -> None:
        """Drop the session (connection lost before finalize)."""
        if self.state in ("open", "finalizing"):
            self.state = "failed"
        self._drain_task.cancel()
        try:
            await self._drain_task
        except (asyncio.CancelledError, Exception):
            pass
        self.session.close()
        if not self._result.done():
            self._result.cancel()

    # -- drain (event-loop task; engine work on executor threads) ------

    async def _drain_loop(self) -> None:
        manager = self._manager
        batch_hint = manager.batch_hint
        loop = asyncio.get_running_loop()
        try:
            while True:
                while not self._pending and not self._finalize_requested:
                    self._wakeup.clear()
                    await self._wakeup.wait()
                if self._pending:
                    # Micro-batch: everything queued, capped at one vec
                    # epoch, so the engine session's epoch former stays
                    # busy without one tenant monopolizing a worker.
                    take = min(len(self._pending), batch_hint)
                    batch = [self._pending.popleft() for _ in range(take)]
                    self._queue_gauge.set(float(len(self._pending)))
                    manager.metrics.batch_occupancy.observe(float(take))
                    await loop.run_in_executor(
                        manager.executor, manager.feed_locked,
                        self.session, batch)
                else:
                    payload = await loop.run_in_executor(
                        manager.executor, manager.finalize_locked,
                        self.session)
                    self.state = "done"
                    manager.metrics.sessions_finalized.inc()
                    if not self._result.done():
                        self._result.set_result(payload)
                    return
        except asyncio.CancelledError:
            raise
        except ReproError as exc:
            self.state = "failed"
            self._error = ServeError(
                f"session {self.sid} failed: {exc}", code="failed")
            if not self._result.done():
                self._result.set_exception(self._error)
        except Exception as exc:  # pragma: no cover - defensive
            self.state = "failed"
            self._error = ServeError(
                f"session {self.sid} internal error: {exc}", code="internal")
            if not self._result.done():
                self._result.set_exception(self._error)
        finally:
            self._queue_gauge.set(0.0)
            manager.release(self)


class SessionManager:
    """Owns the session table, the worker pool, and the engine lock."""

    def __init__(self, config: ServeConfig,
                 engine_config: Optional[EngineConfig] = None,
                 base_config: Optional[SystemConfig] = None) -> None:
        self.config = config
        self.engine_config = engine_config or EngineConfig()
        #: Base system configuration each tenant's options are applied to
        #: (the CLI grid's scaled config, so loopback rows match ``run``).
        self.base_config = base_config or scaled_system_config()
        self.metrics = ServeMetrics()
        self.executor = ThreadPoolExecutor(
            max_workers=config.workers, thread_name_prefix="repro-serve")
        #: Serializes all engine work — see the module docstring.
        self.engine_lock = threading.Lock()
        self.batch_hint = self.engine_config.vec_epoch_size
        self.sessions: Dict[str, ServeSession] = {}
        self.draining = False
        self._ids = itertools.count(1)
        #: Set whenever the session table empties (drain coordination).
        self.idle = asyncio.Event()
        self.idle.set()

    # -- engine work (executor threads) --------------------------------

    def open_locked(self, scheme_name: str, system_config: SystemConfig,
                    app: str, total_hint: Optional[int]) -> Session:
        with self.engine_lock:
            scheme = make_scheme(scheme_name, system_config)
            engine = SimulationEngine(scheme, self.engine_config)
            return engine.open_session(app=app, total_hint=total_hint)

    def feed_locked(self, session: Session,
                    batch: List[MemoryRequest]) -> None:
        with self.engine_lock:
            session.feed(batch)

    def finalize_locked(self, session: Session) -> Dict[str, Any]:
        with self.engine_lock:
            result = session.finalize()
        return {"summary": result.summary_row(),
                "state": result_to_state(result)}

    # -- session table (event-loop side) -------------------------------

    async def open(self, message: Dict[str, Any]) -> Tuple[ServeSession, int]:
        """Open a session from a ``hello``; returns it plus its credits.

        Raises:
            ServeError: ``shutting_down`` during drain, ``session_limit``
                at capacity, ``unknown_scheme`` / ``bad_request`` on a
                bad scheme token or tenant options.
        """
        if self.draining:
            raise ServeError("server is draining; no new sessions",
                             code="shutting_down")
        if len(self.sessions) >= self.config.max_sessions:
            raise ServeError(
                f"session limit ({self.config.max_sessions}) reached",
                code="session_limit")
        try:
            scheme_name = resolve_scheme_name(str(message.get("scheme", "")))
        except ValueError as exc:
            raise ServeError(str(exc), code="unknown_scheme") from exc
        options = message.get("options") or {}
        if not isinstance(options, dict):
            raise ServeError("options must be an object",
                             code="bad_request")
        try:
            system_config = self.base_config.with_options(options)
        except ConfigError as exc:
            raise ServeError(f"bad tenant options: {exc}",
                             code="bad_request") from exc
        tenant = str(message.get("tenant", "default"))
        app = str(message.get("app", "served"))
        total_hint = message.get("total_hint")
        if total_hint is not None:
            total_hint = int(total_hint)

        loop = asyncio.get_running_loop()
        session = await loop.run_in_executor(
            self.executor, self.open_locked, scheme_name, system_config,
            app, total_hint)
        sid = f"s{next(self._ids)}"
        serve_session = ServeSession(sid, tenant, session, self)
        self.sessions[sid] = serve_session
        self.idle.clear()
        self.metrics.sessions_opened.inc()
        self.metrics.active_sessions.set(float(len(self.sessions)))
        return serve_session, serve_session.credits

    def get(self, sid: Any) -> ServeSession:
        session = self.sessions.get(sid) if isinstance(sid, str) else None
        if session is None:
            raise ServeError(f"unknown session {sid!r}",
                             code="unknown_session")
        return session

    def release(self, session: ServeSession) -> None:
        """Drop a finished session from the table (drain-task callback)."""
        if self.sessions.pop(session.sid, None) is not None:
            self.metrics.active_sessions.set(float(len(self.sessions)))
        if not self.sessions:
            self.idle.set()

    async def drain(self, grace_s: float) -> bool:
        """Stop admitting sessions; wait for the table to empty.

        Returns True when every in-flight session finished within the
        grace period, False when stragglers had to be aborted.
        """
        self.draining = True
        if not self.sessions:
            return True
        try:
            await asyncio.wait_for(self.idle.wait(), timeout=grace_s)
            return True
        except asyncio.TimeoutError:
            for session in list(self.sessions.values()):
                await session.abort()
            return False

    def shutdown(self) -> None:
        self.executor.shutdown(wait=True)
