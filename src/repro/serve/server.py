"""The asyncio NDJSON server of the dedup-as-a-service front end.

:class:`DedupServer` accepts connections, speaks the
:mod:`repro.serve.protocol` verbs, and multiplexes every client's
request stream onto the shared engine workers through
:class:`~repro.serve.session_mgr.SessionManager`.  Stdlib only.

Graceful drain: SIGTERM/SIGINT (or :meth:`DedupServer.begin_drain`)
stops admitting *new sessions* immediately while existing sessions keep
streaming and finalizing; once the session table empties (or the grace
period lapses), the listener and remaining connections close and
:func:`run_server` returns 0 (clean drain) or 1 (stragglers aborted).

:class:`BackgroundServer` runs the whole thing on a daemon thread with
its own event loop — the in-process harness the tests and the serve
benchmark drive their clients against.
"""

from __future__ import annotations

import asyncio
import signal
import threading
import time
from typing import Any, Dict, Optional, Set, Union

from ..common.config import SystemConfig
from ..common.errors import ServeError
from ..registry import registered_scheme_names
from ..sim.engine import EngineConfig
from .config import ServeConfig
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    decode_message,
    decode_requests,
    encode_message,
    error_reply,
    ok_reply,
)
from .session_mgr import ServeSession, SessionManager

__all__ = ["BackgroundServer", "DedupServer", "run_server"]

#: Pre-rendered scaffold of the hot-verb success reply: every admitted
#: ``batch`` answers with exactly these fields, so the reply bytes are
#: formatted directly instead of building and JSON-encoding a dict per
#: request (part of the serve_overhead_ratio diet; see BENCH.md).
_BATCH_OK_TEMPLATE = b'{"ok":true,"accepted":%d,"credits":%d}\n'

#: A dispatch result: either a reply dict to encode or pre-encoded
#: NDJSON bytes from a fast path.
Reply = Union[Dict[str, Any], bytes]


class DedupServer:
    """One serving instance: listener + session manager + drain logic."""

    def __init__(self, config: Optional[ServeConfig] = None,
                 engine_config: Optional[EngineConfig] = None,
                 base_config: Optional[SystemConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.manager = SessionManager(self.config, engine_config,
                                      base_config)
        self.metrics = self.manager.metrics
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_tasks: Set["asyncio.Task[None]"] = set()
        self._stopped: Optional[asyncio.Event] = None
        self._drain_started = False
        self._drained_clean = True

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bring up the engine back end, bind, and accept connections."""
        self._stopped = asyncio.Event()
        await self.manager.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=MAX_LINE_BYTES)

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` ephemeral binds)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def begin_drain(self) -> None:
        """Stop admitting sessions, wait for in-flight ones, shut down."""
        if self._drain_started:
            return
        self._drain_started = True
        self._drained_clean = await self.manager.drain(
            self.config.drain_grace_s)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Sessions are done; connections that linger (client not yet
        # closed) get a short window to read their final replies.
        if self._conn_tasks:
            await asyncio.wait(self._conn_tasks, timeout=1.0)
        for task in self._conn_tasks:
            task.cancel()
        await self.manager.shutdown()
        assert self._stopped is not None
        self._stopped.set()

    async def wait_stopped(self) -> bool:
        """Block until drain completes; True when it was clean."""
        assert self._stopped is not None, "server not started"
        await self._stopped.wait()
        return self._drained_clean

    async def serve_until_signal(self) -> bool:
        """Run until SIGTERM/SIGINT, then drain; True on a clean drain."""
        loop = asyncio.get_running_loop()

        def _on_signal() -> None:
            loop.create_task(self.begin_drain())

        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, _on_signal)
        try:
            return await self.wait_stopped()
        finally:
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.remove_signal_handler(sig)

    # -- connection handling -------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        # Sessions opened over this connection, aborted if it drops
        # before they finalize.
        owned: Dict[str, ServeSession] = {}
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(encode_message(error_reply(
                        "protocol", "frame too long or unterminated")))
                    await writer.drain()
                    break
                if not line:
                    break
                try:
                    message = decode_message(line)
                    reply = await self._dispatch(message, owned)
                except ServeError as exc:
                    reply = self._error_to_reply(exc)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # pragma: no cover - defensive
                    reply = error_reply("internal", str(exc))
                writer.write(reply if isinstance(reply, bytes)
                             else encode_message(reply))
                await writer.drain()
        except (asyncio.CancelledError, ConnectionResetError):
            pass
        finally:
            self._conn_tasks.discard(task)
            for session in owned.values():
                if session.state in ("open", "finalizing"):
                    await session.abort()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _error_to_reply(self, exc: ServeError) -> Dict[str, Any]:
        if exc.code == "backpressure":
            return error_reply("backpressure", str(exc),
                               retry_after_ms=self.config.retry_after_ms)
        return error_reply(exc.code, str(exc))

    async def _dispatch(self, message: Dict[str, Any],
                        owned: Dict[str, ServeSession]) -> Reply:
        verb = message.get("verb")
        if verb == "batch":
            # The hottest verb first: admission is timed receive→enqueued.
            # Per-tenant instruments are hoisted onto the session at open
            # (rejections are counted inside ``admit``) and the success
            # reply is formatted straight into bytes.
            started = time.monotonic()
            session = self.manager.get(message.get("session"))
            wire = message.get("requests")
            if not isinstance(wire, list):
                raise ServeError("batch requires a requests list",
                                 code="bad_request")
            requests = decode_requests(wire)
            credits = session.admit(requests)
            session.note_admitted(started, len(requests), time.monotonic())
            return _BATCH_OK_TEMPLATE % (len(requests), credits)
        if verb == "hello":
            session, credits = await self.manager.open(message)
            owned[session.sid] = session
            return ok_reply(session=session.sid,
                            protocol=PROTOCOL_VERSION,
                            credits=credits,
                            batch_hint=self.manager.batch_hint)
        if verb == "finalize":
            session = self.manager.get(message.get("session"))
            payload = await session.request_finalize()
            owned.pop(session.sid, None)
            return ok_reply(**payload)
        if verb == "metrics":
            return ok_reply(**await self.manager.metrics_snapshot())
        if verb == "schemes":
            return ok_reply(schemes=list(registered_scheme_names()))
        if verb == "ping":
            return ok_reply(draining=self._drain_started)
        raise ServeError(f"unknown verb {verb!r}", code="bad_request")


def run_server(config: Optional[ServeConfig] = None,
               engine_config: Optional[EngineConfig] = None,
               base_config: Optional[SystemConfig] = None, *,
               announce=None) -> int:
    """Blocking entry point (the ``repro serve`` CLI): serve until a
    signal, drain, and return the process exit code (0 = clean drain).

    ``announce`` is called once with the started server (the CLI prints
    the bound address from it — tests parse that line for the port).
    """

    async def _main() -> bool:
        server = DedupServer(config, engine_config, base_config)
        await server.start()
        if announce is not None:
            announce(server)
        return await server.serve_until_signal()

    return 0 if asyncio.run(_main()) else 1


class BackgroundServer:
    """An in-process server on a daemon thread (tests and benchmarks).

    ::

        with BackgroundServer() as server:
            client = ServeClient("127.0.0.1", server.port)
            ...

    ``stop()`` (or leaving the ``with`` block) triggers the same drain
    path a SIGTERM would and joins the thread.
    """

    def __init__(self, config: Optional[ServeConfig] = None,
                 engine_config: Optional[EngineConfig] = None,
                 base_config: Optional[SystemConfig] = None) -> None:
        self._config = config or ServeConfig()
        self._engine_config = engine_config
        self._base_config = base_config
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.server: Optional[DedupServer] = None
        self.port: int = 0
        self.drained_clean: Optional[bool] = None
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-bg")

    def _run(self) -> None:
        async def _main() -> None:
            server = DedupServer(self._config, self._engine_config,
                                 self._base_config)
            try:
                await server.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                raise
            self.server = server
            self.port = server.port
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            self.drained_clean = await server.wait_stopped()

        try:
            asyncio.run(_main())
        except BaseException:
            if not self._ready.is_set():  # pragma: no cover - defensive
                self._ready.set()

    def start(self) -> "BackgroundServer":
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            raise self._startup_error
        if self.server is None:
            raise ServeError("background server failed to start")
        return self

    def stop(self, timeout: float = 60.0) -> None:
        if self._loop is not None and self._thread.is_alive():
            assert self.server is not None
            asyncio.run_coroutine_threadsafe(
                self.server.begin_drain(), self._loop)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
