"""Dedup-as-a-service: the asyncio ingestion front end (DESIGN.md §11).

Wraps the simulator in a long-running service: many clients stream
cache-line write/read traces over newline-delimited JSON into
concurrent sessions, each with its own tenant-resolved scheme and
system configuration, multiplexed onto shared engine workers with
bounded ingest queues and explicit backpressure.  Stdlib only; the
simulation core never imports this package.

With ``--workers N`` (N > 1) the engine back end becomes a pool of N
spawned worker *processes*, sessions routed by consistent tenant-hash
affinity — true multi-core parallelism past the GIL, bit-exact vs the
in-process path, with per-worker crash containment (DESIGN.md §14).

Layers (one module each):

* :mod:`~repro.serve.protocol` — the NDJSON wire protocol.
* :mod:`~repro.serve.session_mgr` — session lifecycle, tenancy,
  micro-batching onto the engine's incremental session API.
* :mod:`~repro.serve.pool` — the multi-process worker pool: affinity,
  pickle IPC, inflight credit, crash detection + respawn.
* :mod:`~repro.serve.worker` — the engine worker process entry.
* :mod:`~repro.serve.server` — the asyncio server, drain-on-signal,
  and the in-process :class:`BackgroundServer` harness.
* :mod:`~repro.serve.client` — the sync/async client SDK.
* :mod:`~repro.serve.obs` — service metrics on the repro.obs registry.
"""

from .client import AsyncServeClient, ServeClient
from .config import ServeConfig, resolve_workers
from .pool import worker_for_tenant
from .protocol import PROTOCOL_VERSION
from .server import BackgroundServer, DedupServer, run_server

__all__ = [
    "AsyncServeClient",
    "BackgroundServer",
    "DedupServer",
    "PROTOCOL_VERSION",
    "ServeClient",
    "ServeConfig",
    "resolve_workers",
    "run_server",
    "worker_for_tenant",
]
