"""Dedup-as-a-service: the asyncio ingestion front end (DESIGN.md §11).

Wraps the simulator in a long-running service: many clients stream
cache-line write/read traces over newline-delimited JSON into
concurrent sessions, each with its own tenant-resolved scheme and
system configuration, multiplexed onto shared engine workers with
bounded ingest queues and explicit backpressure.  Stdlib only; the
simulation core never imports this package.

Layers (one module each):

* :mod:`~repro.serve.protocol` — the NDJSON wire protocol.
* :mod:`~repro.serve.session_mgr` — session lifecycle, tenancy,
  micro-batching onto the engine's incremental session API.
* :mod:`~repro.serve.server` — the asyncio server, drain-on-signal,
  and the in-process :class:`BackgroundServer` harness.
* :mod:`~repro.serve.client` — the sync/async client SDK.
* :mod:`~repro.serve.obs` — service metrics on the repro.obs registry.
"""

from .client import AsyncServeClient, ServeClient
from .config import ServeConfig
from .protocol import PROTOCOL_VERSION
from .server import BackgroundServer, DedupServer, run_server

__all__ = [
    "AsyncServeClient",
    "BackgroundServer",
    "DedupServer",
    "PROTOCOL_VERSION",
    "ServeClient",
    "ServeConfig",
    "run_server",
]
