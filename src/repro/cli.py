"""Command-line interface mirroring the paper artifact's workflow.

The original artifact runs ``./nvmain.fast -ConfigFile=... -InputFile=<trace>
-cycles`` and then selects a scheme (0: Baseline, 1: Tra_sha1, 2: DeWrite,
3: ESD), emitting "statistics of state information for reads, writes,
energy, and latency".  This CLI reproduces that workflow over the Python
simulator:

    python -m repro.cli run --scheme ESD --app gcc --requests 20000
    python -m repro.cli run --scheme 3 --trace my.esdtrace
    python -m repro.cli run --scheme 3 --trace my.esdtrace \
        --checkpoint my.ckpt --checkpoint-every 100000
    python -m repro.cli run --scheme 3 --trace my.esdtrace --resume my.ckpt
    python -m repro.cli compare --app lbm --requests 15000
    python -m repro.cli gen-trace --app gcc --requests 5000 --out gcc.esdtrace
    python -m repro.cli figures --quick
    python -m repro.cli sweep --apps gcc,lbm --schemes ESD,Baseline \
        --jobs 8 --store .sweep_cache
    python -m repro.cli trace --scheme ESD --app gcc --out gcc.trace.jsonl
    python -m repro.cli report --scheme ESD --app gcc --format csv

Scheme selection accepts both the paper's numeric codes and names.
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import List, Optional

from itertools import islice

from .analysis.reporting import format_table
from .common.errors import CheckpointError, ConfigError, TraceFormatError
from .common.units import kib
from .dedup import make_scheme
from .registry import resolve_scheme_name, scheme_names
from .sim.engine import EngineConfig, SimulationEngine
from .sim.runner import run_app, scaled_system_config
from .workloads.adversarial import (
    PHASE_SHIFT_NAME,
    adversarial_stream,
    adversarial_stream_names,
    stream_instructions_per_access,
)
from .workloads.generator import TraceGenerator
from .workloads.profiles import (
    ADVERSARIAL_PROFILES,
    app_names,
    get_profile,
)
from .workloads.trace import (
    capture_trace,
    read_trace,
    read_trace_list,
    trace_record_count,
)


def resolve_scheme(token: str) -> str:
    """Accept the artifact's numeric codes ('0'..'3') or scheme names."""
    try:
        return resolve_scheme_name(token)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _app_choices() -> List[str]:
    """The roster's 20 apps plus the adversarial stream profiles."""
    return app_names() + adversarial_stream_names()


def _system_config(args) -> "SystemConfig":
    from dataclasses import replace as _replace
    config = scaled_system_config()
    if getattr(args, "efit_kb", None):
        config = config.with_metadata_cache(efit_bytes=kib(args.efit_kb))
    if getattr(args, "amt_kb", None):
        config = config.with_metadata_cache(amt_bytes=kib(args.amt_kb))
    if getattr(args, "no_fastpath", False):
        config = _replace(config, use_fastpath=False)
    if getattr(args, "no_vectorized", False):
        config = _replace(config, use_vectorized=False)
    return config


def _load_or_generate(args) -> List:
    if args.trace:
        return read_trace_list(args.trace)
    if args.app in adversarial_stream_names():
        return list(adversarial_stream(args.app, args.requests,
                                       seed=args.seed))
    return TraceGenerator(args.app, seed=args.seed).generate_list(
        args.requests)


def _instructions_per_access(args) -> int:
    """IPC-model density for the selected app (200 for replayed traces)."""
    if getattr(args, "trace", None):
        return 200
    if args.app in adversarial_stream_names():
        return stream_instructions_per_access(args.app)
    return get_profile(args.app).instructions_per_access


def _open_stream(args):
    """Open the run's request stream without materializing it.

    Returns ``(iterator, total_hint)``.  Trace replays stream chunk by
    chunk through :func:`read_trace`; generated workloads (roster or
    adversarial) stream straight from their generators.
    """
    if args.trace:
        try:
            total = trace_record_count(args.trace)
        except (OSError, TraceFormatError) as exc:
            raise SystemExit(f"cannot read trace {args.trace}: {exc}")
        return read_trace(args.trace), total
    if args.app in adversarial_stream_names():
        return (adversarial_stream(args.app, args.requests, seed=args.seed),
                args.requests)
    return (TraceGenerator(args.app, seed=args.seed).generate(args.requests),
            args.requests)


def _fmt_percentile(value: float) -> str:
    """Render a percentile; NaN (empty recorder) prints as ``n/a``."""
    return "n/a" if math.isnan(value) else f"{value:.1f}"


#: ``repro run --stop-after`` exit code: the run was deliberately
#: interrupted after writing a resumable checkpoint (distinct from 0
#: "completed" and 1/2 "failed").
EXIT_CHECKPOINT_STOP = 3


def _open_or_resume_session(args, scheme_name: str):
    """Build the run's session and stream, honouring ``--resume``.

    Returns ``(session, stream, consumed)`` where ``consumed`` records
    of the source stream have already been skipped.
    """
    stream, total = _open_stream(args)
    if not args.resume:
        scheme = make_scheme(scheme_name, _system_config(args))
        engine = SimulationEngine(scheme, EngineConfig())
        session = engine.open_session(
            app=args.app, total_hint=total,
            instructions_per_access=_instructions_per_access(args))
        return session, stream, 0

    from .sim.checkpoint import load_checkpoint
    try:
        restored = load_checkpoint(args.resume)
    except CheckpointError as exc:
        raise SystemExit(f"cannot resume from {args.resume}: {exc}")
    meta = restored.meta
    if meta.get("app") != args.app:
        raise SystemExit(
            f"checkpoint {args.resume} was taken on app "
            f"{meta.get('app')!r}; rerun with --app {meta.get('app')}")
    if meta.get("scheme") != scheme_name:
        raise SystemExit(
            f"checkpoint {args.resume} was taken with scheme "
            f"{meta.get('scheme')!r}, not {scheme_name!r}")
    consumed = restored.consumed
    skipped = sum(1 for _ in islice(stream, consumed))
    if skipped < consumed:
        raise SystemExit(
            f"stream ends after {skipped} records but checkpoint "
            f"{args.resume} had consumed {consumed}; pass the same "
            f"--trace/--app/--requests/--seed as the original run")
    return restored.session, stream, consumed


def cmd_run(args) -> int:
    """Run one scheme over one trace; print the artifact's statistics.

    Long runs can stream from a trace file in bounded memory, write
    periodic checkpoints (``--checkpoint PATH --checkpoint-every N``),
    deliberately stop early (``--stop-after M``, exit code 3), and later
    resume bit-exactly (``--resume PATH``).
    """
    scheme_name = resolve_scheme(args.scheme)
    every = args.checkpoint_every
    if every is not None and every <= 0:
        raise SystemExit("--checkpoint-every must be positive")
    if args.stop_after is not None and args.stop_after <= 0:
        raise SystemExit("--stop-after must be positive")
    if (every is not None or args.stop_after is not None) \
            and not args.checkpoint:
        raise SystemExit("--checkpoint-every/--stop-after need "
                         "--checkpoint PATH")

    session, stream, consumed = _open_or_resume_session(args, scheme_name)
    fed = consumed
    stopped = False
    while True:
        budget = every
        if args.stop_after is not None:
            remaining = args.stop_after - fed
            if remaining <= 0:
                stopped = True
                break
            budget = remaining if budget is None else min(budget, remaining)
        chunk = stream if budget is None else islice(stream, budget)
        count = session.feed(chunk)
        fed += count
        if args.checkpoint:
            session.checkpoint(args.checkpoint)
        if budget is None or count < budget:
            break  # stream exhausted

    if stopped:
        print(f"stopped after {fed} requests; checkpoint written to "
              f"{args.checkpoint} (continue with --resume "
              f"{args.checkpoint})")
        return EXIT_CHECKPOINT_STOP

    result = session.finalize()
    if args.export_state:
        from .sim.export import result_state_bytes
        with open(args.export_state, "wb") as fh:
            fh.write(result_state_bytes(result))

    rows = [
        ["scheme", scheme_name],
        ["requests", fed],
        ["writes (recorded)", result.writes],
        ["reads (recorded)", result.reads],
        ["write reduction", f"{result.write_reduction:.1%}"],
        ["PCM data writes", result.pcm_data_writes],
        ["PCM metadata writes", result.pcm_metadata_writes],
        ["mean write latency (ns)", f"{result.mean_write_latency_ns:.1f}"],
        ["p99 write latency (ns)", _fmt_percentile(
            result.write_latency.percentile(99))],
        ["mean read latency (ns)", f"{result.mean_read_latency_ns:.1f}"],
        ["total energy (mJ)", f"{result.total_energy_nj / 1e6:.4f}"],
        ["IPC", f"{result.ipc:.3f}"],
    ]
    for key, value in sorted(result.extras.items()):
        rows.append([key, f"{value:.4f}"])
    print(format_table(["statistic", "value"], rows,
                       title=f"{args.app} under {scheme_name}"))
    return 0


def cmd_compare(args) -> int:
    """Run all four schemes on one application (paired trace)."""
    if args.app == PHASE_SHIFT_NAME:
        raise SystemExit(f"compare does not support the {PHASE_SHIFT_NAME} "
                         f"mix; use 'repro run --app {PHASE_SHIFT_NAME}'")
    evaluation = scheme_names()
    results = run_app(args.app, evaluation, requests=args.requests,
                      system=_system_config(args), seed=args.seed)
    base = results["Baseline"]
    rows = []
    for name in evaluation:
        r = results[name]
        rows.append([
            name,
            f"{r.write_reduction:.1%}",
            f"{base.mean_write_latency_ns / r.mean_write_latency_ns:.2f}x",
            f"{base.mean_read_latency_ns / r.mean_read_latency_ns:.2f}x",
            f"{r.total_energy_nj / base.total_energy_nj:.2f}",
            f"{r.ipc / base.ipc:.2f}x",
        ])
    print(format_table(
        ["scheme", "write_red", "write_speedup", "read_speedup",
         "energy_vs_base", "ipc_vs_base"],
        rows, title=f"Scheme comparison on {args.app} "
                    f"({args.requests} requests)"))
    return 0


def cmd_gen_trace(args) -> int:
    """Generate and persist a trace in the artifact's regulation format.

    Streams from the generator straight into the chunked v2 container
    (``--format v1`` keeps the legacy flat layout) without materializing
    the trace, so arbitrarily long captures run in bounded memory.
    """
    if args.app in adversarial_stream_names():
        trace = adversarial_stream(args.app, args.requests, seed=args.seed)
    else:
        trace = TraceGenerator(args.app, seed=args.seed).generate(
            args.requests)
    version = 1 if args.format == "v1" else 2
    try:
        count = capture_trace(trace, args.out, version=version,
                              compress=args.compress)
    except TraceFormatError as exc:
        raise SystemExit(f"gen-trace: {exc}")
    detail = args.format + (", zlib" if args.compress else "")
    print(f"wrote {count} records for {args.app} to {args.out} ({detail})")
    return 0


def cmd_list_apps(_args) -> int:
    rows = []
    for app in app_names():
        p = get_profile(app)
        rows.append([app, p.suite, f"{p.duplicate_rate:.1%}",
                     f"{p.read_fraction:.0%}", p.working_set_lines])
    print(format_table(
        ["application", "suite", "dup_rate", "read_share", "ws_lines"],
        rows, title="Available applications (12 SPEC CPU 2017 + 8 PARSEC)"))
    adv_rows = []
    for p in ADVERSARIAL_PROFILES:
        adv_rows.append([p.name, p.suite, f"{p.duplicate_rate:.1%}",
                         f"{p.read_fraction:.0%}", p.working_set_lines])
    adv_rows.append([PHASE_SHIFT_NAME, "adversarial", "phased",
                     "phased", "phased"])
    print()
    print(format_table(
        ["stream", "suite", "dup_rate", "read_share", "ws_lines"],
        adv_rows, title="Adversarial stress streams (repro run --app ...)"))
    return 0


def cmd_figures(args) -> int:
    """Regenerate the paper's figures (a quick subset by default)."""
    from .analysis import experiments as ex
    requests = 6_000 if args.quick else 20_000
    apps = ["gcc", "deepsjeng", "lbm", "leela"] if args.quick else None
    print(ex.table1_configuration().render(), "\n")
    print(ex.fig1_duplicate_rate(apps=apps, requests=requests).render(), "\n")
    print(ex.fig3_content_locality(apps=apps, requests=requests).render(),
          "\n")
    grid = ex.run_evaluation_grid(
        apps or list(ex.REPRESENTATIVE_APPS), requests=requests)
    print(ex.fig11_write_reduction(grid).render(), "\n")
    print(ex.fig12_write_speedup(grid).render(), "\n")
    print(ex.fig13_read_speedup(grid).render(), "\n")
    print(ex.fig14_ipc(grid).render(), "\n")
    print(ex.fig16_energy(grid).render(), "\n")
    print(ex.fig17_latency_profile(grid).render(), "\n")
    print(ex.fig19_metadata_overhead(grid=grid,
                                     app=(apps or ["gcc"])[0]).render())
    return 0


def _parse_sweep_apps(token: str) -> List[str]:
    if token == "all":
        return list(app_names())
    apps = [t.strip() for t in token.split(",") if t.strip()]
    unknown = [a for a in apps if a not in app_names()]
    if unknown:
        raise SystemExit(f"unknown application(s) {unknown}; "
                         f"known: {', '.join(app_names())}")
    if not apps:
        raise SystemExit("--apps must name at least one application")
    return apps


def _parse_sweep_schemes(token: str) -> List[str]:
    if token == "all":
        return list(scheme_names())
    schemes = [resolve_scheme(t.strip())
               for t in token.split(",") if t.strip()]
    if not schemes:
        raise SystemExit("--schemes must name at least one scheme")
    # Preserve order, drop duplicates (e.g. "3,ESD").
    return list(dict.fromkeys(schemes))


def _resolve_execution_backend(args):
    """Validate ``--backend`` and build the configured backend.

    Unknown names exit listing the registered backends (same style as the
    unknown-scheme errors), before any simulation has run.
    """
    from .sweep import execution_backend_names, make_execution_backend

    if args.backend not in execution_backend_names():
        raise SystemExit(
            f"unknown execution backend {args.backend!r}; registered "
            f"backends: {', '.join(execution_backend_names())}")
    if args.backend == "queue":
        return make_execution_backend("queue", lease_s=args.lease)
    return args.backend


def _resolve_storage_name(storage):
    """Validate ``--storage`` (``None`` means infer from the store spec)."""
    from .sweep import storage_backend_names

    if storage is not None and storage not in storage_backend_names():
        raise SystemExit(
            f"unknown storage backend {storage!r}; registered backends: "
            f"{', '.join(storage_backend_names())}")
    return storage


def cmd_sweep(args) -> int:
    """Orchestrated parallel grid run with a persistent result store."""
    from .sim.export import write_json
    from .sim.metrics import SUMMARY_METRICS
    from .sim.runner import ExperimentConfig, grid_metric
    from .common.errors import SweepError
    from .sweep import run_sweep

    # Validate the metric before any simulation runs: a typo'd metric name
    # must not cost a full grid sweep.
    if args.metric not in SUMMARY_METRICS:
        raise SystemExit(f"unknown metric {args.metric!r}; known metrics: "
                         f"{', '.join(SUMMARY_METRICS)}")
    if args.jobs is not None and args.jobs <= 0:
        raise SystemExit("--jobs must be positive")
    if args.timeout <= 0:
        raise SystemExit("--timeout must be positive")
    if args.retries < 0:
        raise SystemExit("--retries must be non-negative")
    if args.lease <= 0:
        raise SystemExit("--lease must be positive")
    # Backend names are validated up front (before any simulation) and the
    # error lists what IS registered, mirroring the unknown-scheme errors.
    backend = _resolve_execution_backend(args)
    storage = _resolve_storage_name(args.storage)
    if args.backend == "queue" and args.store is None:
        raise SystemExit("--backend queue needs --store (workers coordinate "
                         "through the shared result store)")
    apps = _parse_sweep_apps(args.apps)
    schemes = _parse_sweep_schemes(args.schemes)
    config = ExperimentConfig(apps=apps, schemes=schemes,
                              requests_per_app=args.requests,
                              system=_system_config(args), seed=args.seed)
    try:
        grid = run_sweep(config, jobs=args.jobs, store=args.store,
                         job_timeout_s=args.timeout, retries=args.retries,
                         progress=not args.quiet, backend=backend,
                         storage=storage)
    except SweepError as exc:
        raise SystemExit(f"sweep failed: {exc}")

    pivot = grid_metric(grid, args.metric)
    rows = [[app] + [pivot[app][scheme] for scheme in schemes]
            for app in apps]
    print(format_table(
        ["application"] + list(schemes), rows,
        title=f"{args.metric} over {len(apps)} apps x "
              f"{len(schemes)} schemes ({args.requests} requests)",
        float_format="{:.4f}"))
    if args.export:
        write_json(grid, args.export)
        print(f"wrote grid JSON to {args.export}")
    return 0


def cmd_worker(args) -> int:
    """Serve a shared result store's work queue until it drains.

    Any number of workers — across processes and hosts sharing the store
    — can serve one sweep; the lease protocol guarantees each job is
    claimed by exactly one live worker at a time, and jobs of workers
    that die are reclaimed after their lease expires.
    """
    from .sweep import worker_loop

    if args.lease <= 0:
        raise SystemExit("--lease must be positive")
    if args.poll <= 0:
        raise SystemExit("--poll must be positive")
    if args.retries < 0:
        raise SystemExit("--retries must be non-negative")
    if args.max_jobs is not None and args.max_jobs <= 0:
        raise SystemExit("--max-jobs must be positive")
    _resolve_storage_name(args.storage)
    log = None if args.quiet else (
        lambda line: print(line, file=sys.stderr, flush=True))
    try:
        completed = worker_loop(
            args.store, storage=args.storage, worker_id=args.worker_id,
            lease_s=args.lease, poll_s=args.poll, retries=args.retries,
            max_jobs=args.max_jobs, wait=args.wait, log=log)
    except KeyboardInterrupt:
        print("worker interrupted", file=sys.stderr)
        return 130
    print(f"worker done: {completed} job(s) completed")
    return 0


def _run_observed(args) -> "SimulationResult":
    """Run one scheme x app with the observability layer enabled."""
    scheme_name = resolve_scheme(args.scheme)
    trace = _load_or_generate(args)
    config = _system_config(args).with_observability(
        enabled=True, trace_capacity=args.capacity,
        sample_every=args.sample_every)
    scheme = make_scheme(scheme_name, config)
    engine = SimulationEngine(scheme, EngineConfig())
    return engine.run(
        iter(trace), app=args.app, total_hint=len(trace),
        instructions_per_access=_instructions_per_access(args))


def cmd_trace(args) -> int:
    """Run one scheme with tracing on; export the event ring as JSONL."""
    from .obs.export import write_trace_jsonl
    from .obs.tracing import TraceEvent

    result = _run_observed(args)
    report = result.obs
    assert report is not None  # observability was enabled above
    events = [TraceEvent.from_dict(e) for e in report["trace"]]
    if args.out:
        count = write_trace_jsonl(events, args.out)
        stats = report["trace_stats"]
        print(f"wrote {count} events to {args.out} "
              f"(recorded {stats['recorded']}, dropped {stats['dropped']}, "
              f"capacity {stats['capacity']})")
    else:
        write_trace_jsonl(events, sys.stdout)
    return 0


def cmd_report(args) -> int:
    """Run one scheme with metrics on; export the registry snapshot."""
    import json as _json

    from .obs.export import metrics_to_csv

    result = _run_observed(args)
    report = result.obs
    assert report is not None  # observability was enabled above
    if args.format == "csv":
        payload = metrics_to_csv(report["metrics"])
    else:
        payload = _json.dumps(
            {"obs_schema_version": report["obs_schema_version"],
             "app": result.app, "scheme": result.scheme,
             "metrics": report["metrics"],
             "trace_stats": report["trace_stats"]},
            indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(payload)
        print(f"wrote {len(report['metrics'])} instruments to {args.out}")
    else:
        sys.stdout.write(payload)
    return 0


def cmd_serve(args) -> int:
    """Run the dedup-as-a-service front end until SIGTERM/SIGINT."""
    from .serve import ServeConfig, run_server
    from .serve.config import resolve_workers

    try:
        workers = resolve_workers(args.workers)
    except ConfigError as exc:
        raise SystemExit(f"repro serve: {exc}") from exc
    serve_config = ServeConfig(
        host=args.host, port=args.port, workers=workers,
        max_sessions=args.max_sessions, queue_limit=args.queue_limit,
        retry_after_ms=args.retry_after_ms,
        drain_grace_s=args.drain_grace)

    def _announce(server) -> None:
        # Machine-parsed by tests/CI to discover an ephemeral port —
        # keep the format stable.
        print(f"serving on {args.host}:{server.port}", flush=True)

    code = run_server(serve_config, EngineConfig(),
                      _system_config(args), announce=_announce)
    print("drained clean" if code == 0 else "drain aborted stragglers",
          flush=True)
    return code


def cmd_validate(args) -> int:
    """Run the reproduction self-check; exit non-zero on failed claims."""
    from .analysis.validation import render_validation, validate
    results = validate(requests=args.requests)
    print(render_validation(results))
    return 0 if all(r.passed for r in results) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--app", default="gcc", choices=_app_choices(),
                       help="application profile or adversarial stream "
                            "(default: gcc)")
        p.add_argument("--requests", type=int, default=20_000,
                       help="trace length (default: 20000)")
        p.add_argument("--seed", type=int, default=2023)
        p.add_argument("--efit-kb", type=int, default=None,
                       help="EFIT / fingerprint cache size in KB")
        p.add_argument("--amt-kb", type=int, default=None,
                       help="AMT / mapping cache size in KB")
        p.add_argument("--no-fastpath", action="store_true",
                       help="disable the memoized kernel fast path "
                            "(repro.perf); results are bit-identical, "
                            "only slower")
        p.add_argument("--no-vectorized", action="store_true",
                       help="disable the epoch-batched vectorized engine "
                            "(repro.vec); results are bit-identical, "
                            "only slower")

    run_p = sub.add_parser("run", help="run one scheme over one trace")
    add_common(run_p)
    run_p.add_argument("--scheme", default="3",
                       help="0|1|2|3 or Baseline|Dedup_SHA1|DeWrite|ESD")
    run_p.add_argument("--trace", default=None,
                       help="replay a serialized trace instead of generating")
    run_p.add_argument("--checkpoint", default=None, metavar="PATH",
                       help="write resumable checkpoints to this path")
    run_p.add_argument("--checkpoint-every", type=int, default=None,
                       metavar="N",
                       help="checkpoint after every N requests (needs "
                            "--checkpoint)")
    run_p.add_argument("--stop-after", type=int, default=None, metavar="M",
                       help="stop after M requests with a final checkpoint "
                            "and exit code 3 (needs --checkpoint)")
    run_p.add_argument("--resume", default=None, metavar="PATH",
                       help="resume bit-exactly from a checkpoint written "
                            "by an identical earlier run")
    run_p.add_argument("--export-state", default=None, metavar="PATH",
                       help="also write the result's canonical full-state "
                            "JSON (the bit-exactness currency)")
    run_p.set_defaults(func=cmd_run)

    cmp_p = sub.add_parser("compare", help="all four schemes, one app")
    add_common(cmp_p)
    cmp_p.set_defaults(func=cmd_compare)

    gen_p = sub.add_parser("gen-trace", help="write a trace file")
    add_common(gen_p)
    gen_p.add_argument("--out", required=True, help="output path")
    gen_p.add_argument("--format", default="v2", choices=("v1", "v2"),
                       help="container format: chunked v2 (default) or "
                            "the legacy flat v1")
    gen_p.add_argument("--compress", action="store_true",
                       help="zlib-compress v2 chunk payloads")
    gen_p.set_defaults(func=cmd_gen_trace)

    list_p = sub.add_parser("list-apps", help="list application profiles")
    list_p.set_defaults(func=cmd_list_apps)

    fig_p = sub.add_parser("figures", help="regenerate the paper's figures")
    fig_p.add_argument("--quick", action="store_true",
                       help="4 apps / short traces")
    fig_p.set_defaults(func=cmd_figures)

    sweep_p = sub.add_parser(
        "sweep", help="parallel grid run with a resumable result store")
    sweep_p.add_argument("--apps", default="all",
                         help="comma-separated applications, or 'all'")
    sweep_p.add_argument("--schemes", default="all",
                         help="comma-separated schemes (names or 0-3 codes), "
                              "or 'all'")
    sweep_p.add_argument("--requests", type=int, default=20_000,
                         help="trace length per application (default: 20000)")
    sweep_p.add_argument("--seed", type=int, default=2023)
    sweep_p.add_argument("--efit-kb", type=int, default=None,
                         help="EFIT / fingerprint cache size in KB")
    sweep_p.add_argument("--amt-kb", type=int, default=None,
                         help="AMT / mapping cache size in KB")
    sweep_p.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default: cpu count)")
    sweep_p.add_argument("--store", default=None,
                         help="result store: a directory, a .sqlite/.db "
                              "path, or sqlite://<path>; re-runs resume "
                              "from it (cache hit = no simulation)")
    sweep_p.add_argument("--backend", default="pool",
                         help="execution backend: pool (local process "
                              "pool) or queue (lease-based work queue "
                              "shared with 'repro worker' processes)")
    sweep_p.add_argument("--storage", default=None,
                         help="storage backend: dir or sqlite (default: "
                              "inferred from --store)")
    sweep_p.add_argument("--lease", type=float, default=15.0,
                         help="queue backend: lease TTL in seconds before "
                              "a dead worker's job is reclaimed")
    sweep_p.add_argument("--timeout", type=float, default=600.0,
                         help="per-job wall-clock budget in seconds")
    sweep_p.add_argument("--retries", type=int, default=2,
                         help="extra attempts per job after a worker crash")
    sweep_p.add_argument("--metric", default="write_latency_ns",
                         help="summary metric for the printed pivot table")
    sweep_p.add_argument("--export", default=None,
                         help="also write the grid as JSON to this path")
    sweep_p.add_argument("--quiet", action="store_true",
                         help="suppress live progress lines")
    sweep_p.set_defaults(func=cmd_sweep)

    worker_p = sub.add_parser(
        "worker", help="serve a shared result store's sweep work queue")
    worker_p.add_argument("--store", required=True,
                          help="shared result store: a directory, a "
                               ".sqlite/.db path, or sqlite://<path>")
    worker_p.add_argument("--storage", default=None,
                          help="storage backend: dir or sqlite (default: "
                               "inferred from --store)")
    worker_p.add_argument("--worker-id", default=None,
                          help="lease-ownership identity (default: "
                               "host-pid-random)")
    worker_p.add_argument("--lease", type=float, default=15.0,
                          help="lease TTL in seconds (renewed at TTL/3)")
    worker_p.add_argument("--poll", type=float, default=0.25,
                          help="queue scan backoff in seconds")
    worker_p.add_argument("--retries", type=int, default=2,
                          help="extra attempts per job before its failure "
                               "is recorded")
    worker_p.add_argument("--max-jobs", type=int, default=None,
                          help="stop after completing this many jobs")
    worker_p.add_argument("--wait", action="store_true",
                          help="keep polling after the queue drains "
                               "(serve sweeps that arrive later)")
    worker_p.add_argument("--quiet", action="store_true",
                          help="suppress per-job progress lines")
    worker_p.set_defaults(func=cmd_worker)

    def add_obs_common(p):
        add_common(p)
        p.add_argument("--scheme", default="3",
                       help="0|1|2|3 or Baseline|Dedup_SHA1|DeWrite|ESD")
        p.add_argument("--trace", default=None,
                       help="replay a serialized trace instead of generating")
        p.add_argument("--capacity", type=int, default=4096,
                       help="trace ring capacity (default: 4096)")
        p.add_argument("--sample-every", type=int, default=1,
                       help="record every Nth request (default: 1)")
        p.add_argument("--out", default=None,
                       help="output path (default: stdout)")

    trace_p = sub.add_parser(
        "trace", help="run with tracing on; export events as JSONL")
    add_obs_common(trace_p)
    trace_p.set_defaults(func=cmd_trace)

    report_p = sub.add_parser(
        "report", help="run with metrics on; export the registry snapshot")
    add_obs_common(report_p)
    report_p.add_argument("--format", default="json",
                          choices=("json", "csv"),
                          help="report format (default: json)")
    report_p.set_defaults(func=cmd_report)

    serve_p = sub.add_parser(
        "serve", help="run the dedup-as-a-service ingestion front end")
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=0,
                         help="bind port; 0 picks an ephemeral port and "
                              "prints it (default: 0)")
    serve_p.add_argument("--workers", type=int, default=None,
                         help="engine worker processes; 1 = in-process "
                              "engine, N>1 = N spawned workers with "
                              "tenant-hash session affinity (default: "
                              "$REPRO_SERVE_WORKERS or 1)")
    serve_p.add_argument("--max-sessions", type=int, default=8,
                         help="concurrent session cap (default: 8)")
    serve_p.add_argument("--queue-limit", type=int, default=8192,
                         help="per-session ingest queue bound in requests "
                              "(default: 8192)")
    serve_p.add_argument("--retry-after-ms", type=int, default=25,
                         help="suggested client backoff on backpressure "
                              "(default: 25)")
    serve_p.add_argument("--drain-grace", type=float, default=30.0,
                         help="seconds to wait for in-flight sessions on "
                              "SIGTERM before aborting them (default: 30)")
    serve_p.add_argument("--no-fastpath", action="store_true",
                         help="disable the memoized kernel fast path")
    serve_p.add_argument("--no-vectorized", action="store_true",
                         help="disable the epoch-batched vectorized engine")
    serve_p.set_defaults(func=cmd_serve)

    val_p = sub.add_parser("validate",
                           help="self-check the paper's headline claims")
    val_p.add_argument("--requests", type=int, default=8_000)
    val_p.set_defaults(func=cmd_validate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
