"""EFIT: the ECC-based Fingerprint Index Table.

The EFIT is ESD's only fingerprint structure, and it lives *entirely* in
the memory-controller cache — nothing is ever looked up in NVMM, which is
the selective-deduplication bet: spend a bounded on-chip budget on the
fingerprints with high reference counts and simply miss the long tail.

Each entry is ``<ECC, Addr_base, Addr_offsets, referH>`` (Figure 7):

* ``ECC`` — the 64-bit per-word ECC of the line (8 bytes),
* ``Addr_base``/``Addr_offsets`` — the packed 40-bit physical line number
  (4 + 1 bytes),
* ``referH`` — a 1-byte saturating remap count; when it would exceed 255
  the incoming line is treated as new (Section III-D).

Entries are managed by the LRCU policy with periodic decay
(:mod:`repro.core.lrcu`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..common.config import ESDConfig, MetadataCacheConfig
from ..common.types import PhysicalAddress
from ..obs import runtime as _obs

#: Bytes per EFIT entry: 8 (ECC) + 4 (Addr_base) + 1 (Addr_offsets) + 1 (referH).
EFIT_ENTRY_SIZE = 14


@dataclass(frozen=True)
class EFITEntry:
    """One EFIT row, exposing the paper's packed field layout."""

    ecc: int
    physical: PhysicalAddress
    refer_h: int

    @property
    def frame(self) -> int:
        return self.physical.line_number


class EFIT:
    """Bounded on-chip index from line ECC to physical frame.

    Args:
        cache_config: supplies the byte budget and probe latency.
        esd_config: LRCU/decay/referH parameters.
    """

    def __init__(self, cache_config: Optional[MetadataCacheConfig] = None,
                 esd_config: Optional[ESDConfig] = None) -> None:
        from ..common.config import MetadataCacheConfig as _MCC, ESDConfig as _EC
        cache_config = cache_config or _MCC()
        esd_config = esd_config or _EC()
        self.capacity = max(1, cache_config.efit_bytes // EFIT_ENTRY_SIZE)
        self.probe_latency_ns = cache_config.probe_latency_ns
        self.refer_h_max = esd_config.refer_h_max
        from .lrcu import LRCUCache
        self._cache: LRCUCache = LRCUCache(
            capacity=self.capacity,
            max_count=esd_config.refer_h_max,
            decay_period=esd_config.decay_period,
            decay_amount=esd_config.decay_amount,
            decay_on=esd_config.decay_on,
            use_lrcu=esd_config.use_lrcu)
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._cache)

    def lookup(self, ecc: int) -> Tuple[Optional[EFITEntry], float]:
        """Probe the table; returns (entry or None, probe latency).

        This is the *whole* fingerprint lookup in ESD — a miss means the
        line is treated as non-duplicate immediately, with no NVMM access.
        """
        frame = self._cache.get(ecc)
        obs = _obs.RUN
        if frame is None:
            self.misses += 1
            if obs is not None:
                obs.record(-1.0, "efit", "miss", misses=self.misses)
            return None, self.probe_latency_ns
        self.hits += 1
        if obs is not None:
            obs.record(-1.0, "efit", "hit", frame=frame,
                       refer_h=self._cache.count(ecc))
        entry = EFITEntry(ecc=ecc,
                          physical=PhysicalAddress.from_line_number(frame),
                          refer_h=self._cache.count(ecc))
        return entry, self.probe_latency_ns

    def record_duplicate(self, ecc: int) -> int:
        """Bump ``referH`` after a confirmed duplicate; returns new count."""
        return self._cache.touch(ecc)

    def refer_h_saturated(self, ecc: int) -> bool:
        """True when the entry's remap budget (1-byte referH) is exhausted."""
        return self._cache.count(ecc) >= self.refer_h_max

    def insert(self, ecc: int, frame: int) -> Optional[int]:
        """Index a freshly written line; returns any evicted frame."""
        PhysicalAddress.from_line_number(frame)  # range check (40-bit)
        evicted = self._cache.put(ecc, frame, count=1)
        return evicted[1] if evicted is not None else None

    def replace_frame(self, ecc: int, frame: int) -> None:
        """Point an existing entry at a new frame, resetting referH."""
        self._cache.put(ecc, frame, count=1)

    def remove(self, ecc: int) -> None:
        """Invalidate an entry (its frame was recycled)."""
        self._cache.remove(ecc)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def evictions(self) -> int:
        return self._cache.evictions

    @property
    def decay_passes(self) -> int:
        """LRCU decay ("regular refresh") passes run so far."""
        return self._cache.decay_passes

    def onchip_bytes(self) -> int:
        """Current on-chip footprint (entries x 14 bytes)."""
        return len(self._cache) * EFIT_ENTRY_SIZE
