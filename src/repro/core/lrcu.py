"""Least-Reference-Count-Used (LRCU) replacement policy.

ESD's fingerprint cache (the EFIT) keeps the fingerprints *worth keeping*:
those with high reference counts, per the content-locality observation that
a tiny fraction of unique lines absorbs most writes.  LRCU evicts the entry
with the lowest reference count, breaking ties by recency (least recently
used first), so reference-count-1 entries — which full-dedup schemes pay to
index even though they are never matched again — are the first to go.

The structure is the classic O(1) LFU design: one recency-ordered bucket
per reference count plus a running minimum.  A periodic *decay* pass
subtracts a fixed value from every count so stale former-hot entries drift
back toward eviction ("ESD performs a regular refresh of all cache items").

The decay epoch is driven by *operations* (lookups, count bumps, and
insertions) by default — the paper specifies a regular refresh, and a
read/touch-heavy phase must not pin stale high-count fingerprints forever.
``decay_on="insert"`` keeps the historical insertion-only trigger for
parity with earlier results.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Generic, Hashable, Iterator, Optional, Tuple, TypeVar

from ..obs import runtime as _obs

#: Valid decay-epoch drivers for :class:`LRCUCache`.
DECAY_MODES = ("ops", "insert")

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


@dataclass
class _Node(Generic[V]):
    value: V
    count: int


class LRCUCache(Generic[K, V]):
    """Bounded mapping with least-reference-count-used eviction.

    Args:
        capacity: maximum number of entries.
        max_count: reference counts saturate here (ESD's 1-byte ``referH``).
        decay_period: one decay pass runs per this many epoch events
            (0 disables decay).
        decay_amount: subtracted from every count during a decay pass
            (counts floor at 1).
        decay_on: what advances the decay epoch — ``"ops"`` (default)
            counts every lookup, count bump, and insertion, matching the
            paper's *periodic* refresh; ``"insert"`` counts insertions
            only, the historical behaviour kept reachable for parity.
        use_lrcu: when False the cache degrades to plain LRU — the
            "without LRCU" comparison series of the paper's Figure 18(a).
    """

    def __init__(self, capacity: int, *, max_count: int = 255,
                 decay_period: int = 4096, decay_amount: int = 1,
                 decay_on: str = "ops", use_lrcu: bool = True) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if max_count < 1:
            raise ValueError("max_count must be at least 1")
        if decay_period < 0 or decay_amount < 0:
            raise ValueError("decay parameters must be non-negative")
        if decay_on not in DECAY_MODES:
            raise ValueError(f"decay_on must be one of {DECAY_MODES}, "
                             f"got {decay_on!r}")
        self.capacity = capacity
        self.max_count = max_count
        self.decay_period = decay_period
        self.decay_amount = decay_amount
        self.decay_on = decay_on
        self.use_lrcu = use_lrcu
        self._nodes: Dict[K, _Node[V]] = {}
        # count -> recency-ordered keys (first = least recently used).
        self._buckets: Dict[int, "OrderedDict[K, None]"] = {}
        self._min_count = 1
        self._ops_since_decay = 0
        self.evictions = 0
        self.decay_passes = 0
        self._touch_counter = 0
        self._touch_ordinals: Dict[K, int] = {}

    # ------------------------------------------------------------------
    # Bucket plumbing
    # ------------------------------------------------------------------

    def _bucket(self, count: int) -> "OrderedDict[K, None]":
        bucket = self._buckets.get(count)
        if bucket is None:
            bucket = OrderedDict()
            self._buckets[count] = bucket
        return bucket

    def _remove_from_bucket(self, key: K, count: int) -> None:
        bucket = self._buckets.get(count)
        if bucket is not None:
            bucket.pop(key, None)
            if not bucket:
                del self._buckets[count]

    def _victim_key(self) -> K:
        """Choose the eviction victim under the active policy."""
        if not self.use_lrcu:
            # Plain LRU: the globally least-recently-touched key.  Recency
            # within buckets is maintained, so scan buckets for the oldest
            # touch ordinal.
            oldest_key: Optional[K] = None
            oldest_ordinal = None
            for bucket in self._buckets.values():
                key = next(iter(bucket))
                ordinal = self._touch_ordinals[key]
                if oldest_ordinal is None or ordinal < oldest_ordinal:
                    oldest_ordinal = ordinal
                    oldest_key = key
            assert oldest_key is not None
            return oldest_key
        while self._min_count not in self._buckets:
            self._min_count += 1
            if self._min_count > self.max_count:
                # All buckets empty would mean the cache is empty.
                raise AssertionError("victim requested from empty cache")
        return next(iter(self._buckets[self._min_count]))

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, key: K) -> bool:
        return key in self._nodes

    def get(self, key: K) -> Optional[V]:
        """Return the value without altering the reference count.

        Recency is refreshed (ties inside a count bucket break by LRU).
        In ``decay_on="ops"`` mode every lookup — hit or miss — advances
        the decay epoch.
        """
        node = self._nodes.get(key)
        if node is None:
            if self.decay_on == "ops":
                self._tick_epoch()
            return None
        bucket = self._buckets[node.count]
        bucket.move_to_end(key)
        self._touch(key)
        value = node.value
        if self.decay_on == "ops":
            self._tick_epoch()
        return value

    def count(self, key: K) -> int:
        """The entry's current reference count (0 when absent)."""
        node = self._nodes.get(key)
        return node.count if node else 0

    def touch(self, key: K) -> int:
        """Increment a present key's reference count (saturating).

        Returns the new count.  Raises KeyError when absent.
        """
        node = self._nodes.get(key)
        if node is None:
            raise KeyError(key)
        if node.count < self.max_count:
            self._remove_from_bucket(key, node.count)
            node.count += 1
            self._bucket(node.count)[key] = None
        else:
            self._buckets[node.count].move_to_end(key)
        self._touch(key)
        count = node.count
        if self.decay_on == "ops":
            self._tick_epoch()
        return count

    def put(self, key: K, value: V, *, count: int = 1) -> Optional[Tuple[K, V]]:
        """Insert (or replace) an entry; returns the evicted (key, value).

        New entries start at ``count`` (default 1 — a just-written line has
        one reference).  Insertion may trigger a decay pass.
        """
        if count < 1 or count > self.max_count:
            raise ValueError(f"count must be 1..{self.max_count}")
        existing = self._nodes.get(key)
        if existing is not None:
            self._remove_from_bucket(key, existing.count)
            existing.value = value
            existing.count = count
            self._bucket(count)[key] = None
            self._min_count = min(self._min_count, count)
            self._touch(key)
            if self.decay_on == "ops":
                self._tick_epoch()
            return None

        evicted: Optional[Tuple[K, V]] = None
        if len(self._nodes) >= self.capacity:
            victim = self._victim_key()
            victim_node = self._nodes.pop(victim)
            self._remove_from_bucket(victim, victim_node.count)
            self._touch_ordinals.pop(victim, None)
            self.evictions += 1
            evicted = (victim, victim_node.value)
            obs = _obs.RUN
            if obs is not None:
                obs.record(-1.0, "lrcu", "evict",
                           victim_count=victim_node.count,
                           evictions=self.evictions)

        self._nodes[key] = _Node(value=value, count=count)
        self._bucket(count)[key] = None
        self._min_count = min(self._min_count, count)
        self._touch(key)

        self._tick_epoch()
        return evicted

    def remove(self, key: K) -> Optional[V]:
        """Drop an entry (e.g. its physical frame was recycled)."""
        node = self._nodes.pop(key, None)
        if node is None:
            return None
        self._remove_from_bucket(key, node.count)
        self._touch_ordinals.pop(key, None)
        return node.value

    def items(self) -> Iterator[Tuple[K, V, int]]:
        """Iterate (key, value, count) snapshots."""
        for key, node in self._nodes.items():
            yield key, node.value, node.count

    # ------------------------------------------------------------------
    # Decay ("regular refresh")
    # ------------------------------------------------------------------

    def _tick_epoch(self) -> None:
        """Advance the decay epoch by one event; run a pass when due."""
        if not self.decay_period:
            return
        self._ops_since_decay += 1
        if self._ops_since_decay >= self.decay_period:
            self._decay()

    def _decay(self) -> None:
        self._ops_since_decay = 0
        if not self.decay_amount:
            return
        self.decay_passes += 1
        new_buckets: Dict[int, "OrderedDict[K, None]"] = {}
        for count in sorted(self._buckets):
            decayed = max(1, count - self.decay_amount)
            target = new_buckets.setdefault(decayed, OrderedDict())
            for key in self._buckets[count]:
                self._nodes[key].count = decayed
                target[key] = None
        self._buckets = new_buckets
        self._min_count = min(new_buckets) if new_buckets else 1
        obs = _obs.RUN
        if obs is not None:
            obs.emit(-1.0, obs.request_id, "lrcu", "decay_pass",
                     {"pass": self.decay_passes,
                      "entries": len(self._nodes),
                      "decay_amount": self.decay_amount})

    # ------------------------------------------------------------------
    # Recency bookkeeping (global ordinals, used by the plain-LRU mode)
    # ------------------------------------------------------------------

    def _touch(self, key: K) -> None:
        self._touch_counter += 1
        self._touch_ordinals[key] = self._touch_counter
