"""ESD-Δ: partial-match deduplication on per-word ECC signatures.

An *extension* beyond the paper (in the spirit of the BCD related work it
cites): ESD's fingerprint is the concatenation of eight per-word ECC
bytes, so it carries sub-line structure for free.  When a full-line match
fails, lines that share most of their words with an indexed line can
still be stored as a **delta** — base frame + only the differing words —
because PCM is byte-addressable and write energy scales with bits
written.

Pipeline (a superset of ESD's):

1. full 64-bit ECC probe of the EFIT — identical path to ESD; a full hit
   dedups exactly as ESD does;
2. on a full miss, probe a second on-chip index keyed by each entry's
   *word-ECC multiset signature*; a candidate sharing at least
   ``min_matching_words`` per-word ECC bytes is fetched and compared
   word-by-word;
3. if at least that many words truly match, write only the differing
   words (charged proportional energy, full write latency) and record a
   delta mapping; otherwise fall back to a unique full-line write.

Reads of delta-mapped lines read the base frame plus the delta region
(one extra PCM read) and reconstruct.

The extension preserves ESD's safety argument: every partial match is
confirmed by comparing actual bytes before anything is shared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..common.config import SystemConfig
from ..common.timeline import StageTimeline
from ..common.types import (
    CACHE_LINE_SIZE,
    MemoryRequest,
    WORDS_PER_LINE,
    WritePathStage,
)
from ..crypto.costs import CryptoCosts, DEFAULT_COSTS
from ..dedup.base import ReadResult, WriteResult
from ..ecc.codec import line_ecc
from ..registry import register_scheme
from .esd import ESDScheme


def word_ecc_bytes(ecc: int) -> Tuple[int, ...]:
    """The eight per-word ECC bytes of a line ECC."""
    return tuple((ecc >> (8 * i)) & 0xFF for i in range(WORDS_PER_LINE))


def matching_words(ecc_a: int, ecc_b: int) -> int:
    """How many word positions have equal per-word ECC bytes."""
    a, b = word_ecc_bytes(ecc_a), word_ecc_bytes(ecc_b)
    return sum(1 for x, y in zip(a, b) if x == y)


@dataclass
class DeltaRecord:
    """A logical line stored as base + differing words."""

    base_frame: int
    #: word index -> 8 replacement bytes.
    words: Dict[int, bytes]

    def reconstruct(self, base_plaintext: bytes) -> bytes:
        buf = bytearray(base_plaintext)
        for index, data in self.words.items():
            buf[index * 8:(index + 1) * 8] = data
        return bytes(buf)

    @property
    def delta_bytes(self) -> int:
        """Stored payload bytes (words) plus 1 index byte per word."""
        return len(self.words) * 9


@register_scheme("ESD-Delta")
class ESDDeltaScheme(ESDScheme):
    """ESD extended with word-granular delta deduplication."""

    def __init__(self, config: Optional[SystemConfig] = None,
                 costs: CryptoCosts = DEFAULT_COSTS, *,
                 min_matching_words: int = 6) -> None:
        super().__init__(config, costs)
        if not 1 <= min_matching_words <= WORDS_PER_LINE - 1:
            raise ValueError("min_matching_words must be 1..7")
        self.min_matching_words = min_matching_words
        #: Secondary similarity index: word-ECC byte -> recent frames whose
        #: line contains that word ECC (bounded per bucket).
        self._word_index: Dict[Tuple[int, int], List[int]] = {}
        self._word_index_depth = 4
        #: logical line -> delta record (overrides the AMT mapping).
        self._deltas: Dict[int, DeltaRecord] = {}
        #: base frame -> logical lines holding deltas against it.
        self._delta_users: Dict[int, List[int]] = {}
        self.delta_writes = 0
        self.delta_bytes_written = 0

    # ------------------------------------------------------------------
    # Similarity index maintenance
    # ------------------------------------------------------------------

    def _index_words(self, ecc: int, frame: int) -> None:
        for position, byte in enumerate(word_ecc_bytes(ecc)):
            bucket = self._word_index.setdefault((position, byte), [])
            if frame in bucket:
                continue
            bucket.append(frame)
            if len(bucket) > self._word_index_depth:
                bucket.pop(0)

    def _candidate_frames(self, ecc: int) -> List[int]:
        """Frames sharing word-ECC bytes, ranked by signature overlap."""
        votes: Dict[int, int] = {}
        for position, byte in enumerate(word_ecc_bytes(ecc)):
            for frame in self._word_index.get((position, byte), ()):
                votes[frame] = votes.get(frame, 0) + 1
        ranked = [frame for frame, count in votes.items()
                  if count >= self.min_matching_words
                  and self.allocator.is_allocated(frame)]
        ranked.sort(key=lambda f: -votes[f])
        return ranked[:2]

    # ------------------------------------------------------------------
    # Delta bookkeeping
    # ------------------------------------------------------------------

    def _drop_delta(self, logical_line: int) -> None:
        record = self._deltas.pop(logical_line, None)
        if record is None:
            return
        users = self._delta_users.get(record.base_frame)
        if users is not None:
            try:
                users.remove(logical_line)
            except ValueError:
                pass
            if not users:
                del self._delta_users[record.base_frame]
        remaining = self.refcounts.release(record.base_frame)
        if remaining == 0:
            ecc = self._frame_ecc.pop(record.base_frame, None)
            if ecc is not None:
                self.efit.remove(ecc)

    def _release_previous(self, logical_line: int) -> None:
        if logical_line in self._deltas:
            self._drop_delta(logical_line)
            return
        super()._release_previous(logical_line)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def handle_write(self, request: MemoryRequest) -> WriteResult:
        assert request.data is not None
        ecc = line_ecc(request.data)
        entry, _probe = self.efit.lookup(ecc)
        if entry is not None:
            # Full-line path: delegate to ESD (it will re-probe; refund the
            # double-counted statistics by probing once here only for the
            # delta decision).
            self.efit.hits -= 1
            result = super().handle_write(request)
            if result.wrote_line:
                frame = self.amt.current_frame(request.line_index)
                if frame is not None:
                    self._index_words(ecc, frame)
            return result

        self.counters.incr("writes")
        timeline = self._timeline(request)
        timeline.serial(WritePathStage.METADATA, self.efit.probe_latency_ns)

        # Partial-match attempt.
        for candidate in self._candidate_frames(ecc):
            stored = self._read_and_decrypt(candidate, timeline)
            timeline.serial(WritePathStage.READ_FOR_COMPARISON,
                            self._charge_compare())
            diff = {i: request.data[i * 8:(i + 1) * 8]
                    for i in range(WORDS_PER_LINE)
                    if stored[i * 8:(i + 1) * 8]
                    != request.data[i * 8:(i + 1) * 8]}
            if len(diff) <= WORDS_PER_LINE - self.min_matching_words:
                return self._commit_delta(request, candidate, diff, timeline)

        # No similar base: unique full-line write (ESD's path), and index
        # the new line's word signature for future partial matches.
        result = self._write_unique(request, ecc, timeline,
                                    index_in_efit=True)
        frame = self.amt.current_frame(request.line_index)
        if frame is not None:
            self._index_words(ecc, frame)
        return result

    def _commit_delta(self, request: MemoryRequest, base_frame: int,
                      diff: Dict[int, bytes],
                      timeline: StageTimeline) -> WriteResult:
        """Store the line as base + differing words."""
        assert request.data is not None
        self.counters.incr("delta_hits")
        # A delta hit eliminates the full-line write, so it counts toward
        # the scheme's overall dedup effectiveness.
        self.counters.incr("dedup_hits")
        self.delta_writes += 1
        record = DeltaRecord(base_frame=base_frame, words=dict(diff))
        self.delta_bytes_written += record.delta_bytes

        # Acquire the base before releasing any previous mapping (the
        # self-rewrite hazard, as in ESD's full path).
        self.refcounts.acquire(base_frame)
        self._release_previous(request.line_index)
        self._deltas[request.line_index] = record
        self._delta_users.setdefault(base_frame, []).append(
            request.line_index)

        # The delta write: full PCM write latency (one array access), but
        # energy scales with the fraction of the line actually written.
        # Deltas live in a dedicated region keyed by the logical line.
        fraction = min(1.0, max(1, record.delta_bytes) / CACHE_LINE_SIZE)
        result = self.controller.write_partial(
            request.line_index ^ 0x5DE17A, fraction, timeline.now)
        timeline.advance_to(WritePathStage.WRITE_UNIQUE,
                            result.completion_ns)
        return self._finalize_write(request, timeline,
                                    deduplicated=True, wrote_line=False)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def handle_read(self, request: MemoryRequest) -> ReadResult:
        record = self._deltas.get(request.line_index)
        if record is None:
            return super().handle_read(request)
        self.counters.incr("reads")
        timeline = self._timeline(request)
        # Base read + delta-region read.
        base_plain = self._read_and_decrypt(
            record.base_frame, timeline,
            read_stage=WritePathStage.READ_FILL,
            decrypt_stage=WritePathStage.DECRYPTION)
        delta_access = self.controller.metadata_read(
            request.line_index ^ 0x5DE17A, timeline.now)
        timeline.advance_to(WritePathStage.READ_FILL,
                            delta_access.completion_ns)
        data = record.reconstruct(base_plain)
        return self._finalize_read(request, timeline, data)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def metadata_footprint(self):
        from ..dedup.base import MetadataFootprint
        base = super().metadata_footprint()
        delta_bytes = sum(r.delta_bytes + 5 for r in self._deltas.values())
        return MetadataFootprint(onchip_bytes=base.onchip_bytes,
                                 nvmm_bytes=base.nvmm_bytes + delta_bytes)

    @property
    def delta_mapped_lines(self) -> int:
        return len(self._deltas)
