"""ESD: ECC-assisted and Selective Deduplication (the paper's contribution).

The write pipeline (Figure 9):

1. **Obtain the ECC** travelling with the evicted line — zero marginal
   latency and energy (the controller computes it for error protection
   regardless).
2. **Probe the EFIT** (on-chip only).  A miss definitively ends the dedup
   attempt: the line is treated as non-duplicate and written — no hash was
   computed, no NVMM lookup was made.  The new line's ECC is inserted into
   the EFIT under the LRCU policy.
3. **On a hit, confirm by content**: ECC equality only implies similarity,
   so ESD reads the candidate frame from NVMM, decrypts, and byte-compares
   (exploiting PCM's cheap reads relative to writes).  Equal content with
   ``referH`` headroom eliminates the write (remap in the AMT, bump
   ``referH``); unequal content (an ECC collision) or a saturated
   ``referH`` falls back to the unique-write path.

Every dropped write is a PCM write (150 ns, 6.75 nJ) traded for at most a
PCM read (75 ns, 1.49 nJ) plus an on-chip compare — the asymmetric
read/write economics the design leans on.

The on-chip EFIT probe is charged to the METADATA stage: it is metadata
machinery, not a fingerprint computation or an NVMM fingerprint lookup —
ESD's breakdown deliberately never contains a FINGERPRINT_* stage.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..common.config import SystemConfig
from ..common.timeline import StageTimeline
from ..common.types import (
    CACHE_LINE_SIZE,
    MemoryRequest,
    WritePathStage,
)
from ..crypto.costs import CryptoCosts, DEFAULT_COSTS
from ..dedup.base import DedupScheme, MetadataFootprint, ReadResult, WriteResult
from ..dedup.mapping import FrameRefcounts
from ..ecc.codec import line_ecc
from ..obs import runtime as _obs
from ..registry import register_scheme
from .amt import AddressMappingTable
from .efit import EFIT, EFIT_ENTRY_SIZE


@register_scheme("ESD", evaluation=True, code="3")
class ESDScheme(DedupScheme):
    """ECC-assisted selective deduplication for encrypted NVMM."""

    def __init__(self, config: Optional[SystemConfig] = None,
                 costs: CryptoCosts = DEFAULT_COSTS) -> None:
        super().__init__(config, costs)
        self.efit = EFIT(self.config.metadata_cache, self.config.esd)
        self.amt = AddressMappingTable(self.config.metadata_cache,
                                       self.controller)
        self.refcounts = FrameRefcounts(self.allocator)
        #: frame -> ECC, to invalidate EFIT entries of recycled frames.
        self._frame_ecc: Dict[int, int] = {}

    def vec_prime_engines(self) -> tuple:
        # ESD's fingerprint is the line ECC itself (handle_write calls
        # line_ecc directly, no engine attribute); hand the epoch front
        # end the ECC adapter so its bit-parallel batch kernel primes the
        # line_ecc memo cache.
        from ..ecc.codec import ECCFingerprintEngine
        return (ECCFingerprintEngine(),)

    # ------------------------------------------------------------------
    # Write-path helpers
    # ------------------------------------------------------------------

    def _release_previous(self, logical_line: int) -> None:
        old_frame = self.amt.current_frame(logical_line)
        if old_frame is None:
            return
        remaining = self.refcounts.release(old_frame)
        if remaining == 0:
            ecc = self._frame_ecc.pop(old_frame, None)
            if ecc is not None:
                self.efit.remove(ecc)

    def _write_unique(self, request: MemoryRequest, ecc: int,
                      timeline: StageTimeline,
                      *, index_in_efit: bool) -> WriteResult:
        """Encrypt + write a non-duplicate line, then update metadata."""
        assert request.data is not None
        self._release_previous(request.line_index)
        frame = self.allocator.allocate()
        self._encrypt_and_write(frame, request.data, timeline)
        self.refcounts.acquire(frame)
        if index_in_efit:
            evicted_frame = self.efit.insert(ecc, frame)
            if evicted_frame is not None:
                self._frame_ecc.pop(evicted_frame, None)
            self._frame_ecc[frame] = ecc
        t = self.amt.update(request.line_index, frame, timeline.now)
        timeline.advance_to(WritePathStage.METADATA, t)
        return self._finalize_write(request, timeline,
                                    deduplicated=False, wrote_line=True)

    # ------------------------------------------------------------------
    # Request handlers
    # ------------------------------------------------------------------

    def handle_write(self, request: MemoryRequest) -> WriteResult:
        assert request.data is not None
        self.counters.incr("writes")
        timeline = self._timeline(request)

        # 1. ECC fingerprint: already computed by the controller — free.
        ecc = line_ecc(request.data)

        # 2. On-chip EFIT probe; the only fingerprint lookup ESD ever does.
        entry, probe_ns = self.efit.lookup(ecc)
        timeline.serial(WritePathStage.METADATA, probe_ns)

        if entry is None:
            # Miss: definitively treated as non-duplicate; index it.
            return self._write_unique(request, ecc, timeline,
                                      index_in_efit=True)

        # 3. Similar line found: confirm with a byte-by-byte comparison.
        stored = self._read_and_decrypt(entry.frame, timeline)
        timeline.serial(WritePathStage.READ_FOR_COMPARISON,
                        self._charge_compare())

        if stored != request.data:
            # ECC collision: same fingerprint, different content.  The
            # entry keeps its frame; the incoming line is written fresh
            # (and is not indexed — its ECC slot is taken).
            self.counters.incr("ecc_collisions")
            obs = _obs.RUN
            if obs is not None:
                obs.emit(timeline.now, obs.request_id, "esd",
                         "ecc_collision", {"frame": entry.frame})
            return self._write_unique(request, ecc, timeline,
                                      index_in_efit=False)

        if self.efit.refer_h_saturated(ecc):
            # referH is a 1-byte field; once it saturates ESD treats the
            # line as new and re-points the EFIT entry at the fresh frame
            # (Section III-D).
            self.counters.incr("referh_overflows")
            obs = _obs.RUN
            if obs is not None:
                obs.emit(timeline.now, obs.request_id, "esd",
                         "referh_overflow", {"frame": entry.frame})
            self._frame_ecc.pop(entry.frame, None)
            result = self._write_unique(request, ecc, timeline,
                                        index_in_efit=False)
            new_frame = self.amt.current_frame(request.line_index)
            assert new_frame is not None
            self.efit.replace_frame(ecc, new_frame)
            self._frame_ecc[new_frame] = ecc
            return result

        # 4. Confirmed duplicate: eliminate the write.  Acquire before
        # releasing the old mapping — when the line rewrites the content it
        # already references, releasing first would free the frame (and its
        # EFIT entry) mid-commit.
        self.counters.incr("dedup_hits")
        obs = _obs.RUN
        if obs is not None:
            obs.record(timeline.now, "esd", "dedup_hit", frame=entry.frame)
        self.refcounts.acquire(entry.frame)
        self._release_previous(request.line_index)
        self.efit.record_duplicate(ecc)
        t2 = self.amt.update(request.line_index, entry.frame, timeline.now)
        timeline.advance_to(WritePathStage.METADATA, t2)
        return self._finalize_write(request, timeline,
                                    deduplicated=True, wrote_line=False)

    def handle_read(self, request: MemoryRequest) -> ReadResult:
        self.counters.incr("reads")
        timeline = self._timeline(request)
        frame, t, _hit = self.amt.lookup(request.line_index, timeline.now)
        timeline.advance_to(WritePathStage.METADATA, t)
        if frame is None:
            return self._finalize_read(request, timeline,
                                       bytes(CACHE_LINE_SIZE))
        plaintext = self._read_and_decrypt(
            frame, timeline,
            read_stage=WritePathStage.READ_FILL,
            decrypt_stage=WritePathStage.DECRYPTION)
        return self._finalize_read(request, timeline, plaintext)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def metadata_footprint(self) -> MetadataFootprint:
        """EFIT is on-chip only; the AMT home is ESD's sole NVMM metadata."""
        return MetadataFootprint(
            onchip_bytes=self.efit.onchip_bytes() + self.amt.onchip_bytes(),
            nvmm_bytes=self.amt.nvmm_bytes())

    @property
    def efit_hit_rate(self) -> float:
        return self.efit.hit_rate

    @property
    def amt_hit_rate(self) -> float:
        return self.amt.hit_rate
