"""AMT: the Address Mapping Table with packed 40-bit physical addresses.

The AMT records the many-to-one mapping from logical (CPU-visible) line
addresses to deduplicated physical frames as
``<initAddr, Addr_base, Addr_offsets>`` rows (Figure 7).  Its *home* is in
NVMM; hot entries are buffered in the memory-controller cache
(Section III-B).  Those placement economics come from the generic
:class:`~repro.dedup.mapping.MappingTable`; this subclass adds ESD's packed
representation:

* The home copy is an array indexed by ``initAddr``, so an NVMM-resident
  entry stores only the 5 packed bytes (``Addr_base`` 4 B + ``Addr_offsets``
  1 B) — the 40-bit physical line number, addressing up to 64 TiB.
* Cached entries additionally carry their 8-byte ``initAddr`` tag.
"""

from __future__ import annotations

from typing import Optional

from ..common.config import MetadataCacheConfig
from ..common.types import PhysicalAddress
from ..dedup.mapping import MappingTable
from ..nvmm.controller import MemoryController

#: Bytes per cached AMT entry: 8 (initAddr tag) + 4 + 1 (packed physical).
AMT_CACHE_ENTRY_SIZE = 13

#: Bytes per NVMM-resident AMT entry: the packed physical address only
#: (the home table is indexed by ``initAddr``).
AMT_HOME_ENTRY_SIZE = PhysicalAddress.PACKED_SIZE


class AddressMappingTable(MappingTable):
    """ESD's AMT: cached hot entries over an NVMM-resident home array."""

    def __init__(self, cache_config: Optional[MetadataCacheConfig],
                 controller: MemoryController) -> None:
        cache_config = cache_config or MetadataCacheConfig()
        super().__init__(cache_bytes=cache_config.amt_bytes,
                         entry_size=AMT_CACHE_ENTRY_SIZE,
                         controller=controller,
                         probe_latency_ns=cache_config.probe_latency_ns)

    def update(self, logical_line: int, frame: int, at_time_ns: float) -> float:
        """Map ``initAddr`` onto a frame, validating the 40-bit packing."""
        # Raises if the frame exceeds the Addr_base/Addr_offsets range.
        PhysicalAddress.from_line_number(frame)
        return super().update(logical_line, frame, at_time_ns)

    def physical_address(self, logical_line: int) -> Optional[PhysicalAddress]:
        """The packed physical address a logical line maps to (functional)."""
        frame = self.current_frame(logical_line)
        if frame is None:
            return None
        return PhysicalAddress.from_line_number(frame)

    def nvmm_bytes(self) -> int:
        """NVMM footprint: 5 packed bytes per mapped logical line."""
        return self.entry_count * AMT_HOME_ENTRY_SIZE
