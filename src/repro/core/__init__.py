"""ESD core: EFIT, LRCU policy, AMT, and the ESD scheme itself."""

from .amt import AMT_CACHE_ENTRY_SIZE, AMT_HOME_ENTRY_SIZE, AddressMappingTable
from .efit import EFIT, EFIT_ENTRY_SIZE, EFITEntry
from .esd import ESDScheme
from .lrcu import LRCUCache

__all__ = [
    "AMT_CACHE_ENTRY_SIZE",
    "AMT_HOME_ENTRY_SIZE",
    "AddressMappingTable",
    "EFIT",
    "EFIT_ENTRY_SIZE",
    "EFITEntry",
    "ESDScheme",
    "LRCUCache",
]
