"""Vectorized epoch-batched execution for the simulation engine.

``repro.vec`` is the second tier of the host-CPU performance stack.  The
first tier (:mod:`repro.perf`) memoizes the pure kernels; this tier batches
them: the engine drains the request stream in fixed-size *epochs* (chunked
``itertools.islice``, never materializing the full trace), lifts each
epoch's unique write contents into numpy arrays, and runs bit-parallel
batched kernels — Hamming(72,64) line ECC as uint64 matrix ops
(:mod:`repro.vec.kernels`), batched fingerprint digests — whose results
prime the memo caches before the per-line resolution walks the epoch.

Parity contract
---------------

Identical to the fast path's: simulated results are **bit-exact** with the
switch on or off, for every registered scheme.  The per-line resolution is
deliberately kept scalar — bank busy intervals, EFIT/LRCU recency, counter
state, and the closed-loop issue window are sequential feedback loops, and
float accumulation order must not change — so batching accelerates the
pure, order-free work (ECC, digests, serialization) and leaves the
order-sensitive arithmetic byte-for-byte as in ``_loop_fast``.  Lines the
batch front end cannot serve (memo disabled, or schemes with no batchable
kernels) fall back to scalar handling and are counted, never guessed.

Control surface (mirrors :mod:`repro.perf`)
-------------------------------------------

* ``REPRO_VECTORIZED`` environment variable: process-wide default (on
  unless set to ``0/false/off/no``).
* ``SystemConfig.use_vectorized``: per-run override (``None`` defers to
  the environment default); applied by ``SimulationEngine.run``.
* :func:`set_vectorized` / :func:`vectorized` for direct and scoped
  control in tests and benchmarks.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from . import flags
from .flags import ENV_VAR, default_enabled

__all__ = [
    "ENV_VAR",
    "begin_run",
    "default_enabled",
    "end_run",
    "set_vectorized",
    "vectorized",
    "vectorized_enabled",
]


def vectorized_enabled() -> bool:
    """Whether the epoch-batched engine is currently active."""
    return flags.ENABLED


def set_vectorized(enabled: bool) -> bool:
    """Set the process-global switch; returns the previous value."""
    previous = flags.ENABLED
    flags.ENABLED = bool(enabled)
    return previous


@contextmanager
def vectorized(enabled: bool) -> Iterator[None]:
    """Scoped enable/disable, restoring the prior state on exit."""
    previous = set_vectorized(enabled)
    try:
        yield
    finally:
        flags.ENABLED = previous


def begin_run(override: Optional[bool] = None) -> Tuple[bool, bool]:
    """Start a simulation run's vectorization scope.

    Resolves the run's switch (``override`` wins; ``None`` defers to the
    environment default) and installs it.  Unlike :func:`repro.perf.begin_run`
    there is no per-run state to reset — epoch statistics live on the
    engine's :class:`~repro.vec.epoch.VecStats`, created fresh each run.

    Returns:
        ``(previous, active)`` — the prior global switch (hand it back to
        :func:`end_run`) and the switch in effect for this run.
    """
    active = default_enabled() if override is None else bool(override)
    previous = set_vectorized(active)
    return previous, active


def end_run(previous: bool) -> None:
    """End a run's scope: restore the prior global switch."""
    flags.ENABLED = previous
