"""Epoch draining and batched precompute for the vectorized engine.

An *epoch* is a fixed-size chunk of the request stream (default 1024
lines), drained with :func:`iter_epochs` — chunked ``itertools.islice``,
so a 10^7-request trace is never materialized whole.  Per epoch the
:class:`EpochPrecomputer` lifts the unique write contents out of the
request objects and batch-computes the pure content-keyed kernels the
scheme will need — bit-parallel line ECC for ESD-family schemes, hash
digests for the full-dedup schemes — priming the :mod:`repro.perf` memo
caches so the scalar per-line resolution that follows hits every one.

Ordering guarantee: precompute only touches *pure* kernels (content in,
value out) and the memo caches that front them.  Request order, bank
state, metadata recency, and every float accumulation are handled by the
per-line resolution exactly as in the non-vectorized loops, which is what
keeps summary rows bit-identical with the switch on or off.

Scalar fallback: when the memo fast path is disabled (no caches to
prime) or a scheme exposes no content-keyed engines (Baseline has no
fingerprints; DaE digests ciphertext), the epoch's writes are counted in
``scalar_fallback_lines`` and resolved entirely by the scalar kernels —
counted, never guessed.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Dict, Iterable, Iterator, List

from ..common.types import MemoryRequest
from ..perf import memo as _memo

__all__ = ["DEFAULT_EPOCH_SIZE", "EpochPrecomputer", "VecStats",
           "iter_epochs"]

#: Default epoch size (requests per batch) used by ``EngineConfig``.
DEFAULT_EPOCH_SIZE = 1024


def iter_epochs(requests: Iterable[MemoryRequest],
                size: int) -> Iterator[List[MemoryRequest]]:
    """Drain a request iterable into successive epochs of ``size``.

    Streaming: holds at most one epoch at a time, so memory is bounded by
    the epoch size regardless of trace length.  The final epoch may be
    shorter; order within and across epochs is the stream's order.
    """
    if size <= 0:
        raise ValueError("epoch size must be positive")
    iterator = iter(requests)
    while True:
        epoch = list(islice(iterator, size))
        if not epoch:
            return
        yield epoch


@dataclass
class VecStats:
    """Per-run accounting of the epoch-batched front end.

    Exported through ``SimulationResult.extras`` (``vec_*`` keys) and the
    observability registry, so ``repro report`` shows how much of a run
    actually vectorized.
    """

    epochs: int = 0
    requests: int = 0
    writes: int = 0
    #: Unique write contents seen per epoch, summed over epochs.
    unique_write_contents: int = 0
    #: Line ECCs computed by the bit-parallel numpy kernel.
    batched_ecc_lines: int = 0
    #: Hash digests computed by the batched priming pass.
    batched_fp_lines: int = 0
    #: Writes resolved with their content kernels primed by a batch.
    covered_writes: int = 0
    #: Writes resolved entirely by scalar kernels (memo off, or the
    #: scheme exposes no content-keyed engines to prime).
    scalar_fallback_lines: int = 0
    min_epoch_size: int = 0
    max_epoch_size: int = 0

    @property
    def kernel_occupancy(self) -> float:
        """Fraction of writes whose content kernels ran batched."""
        if self.writes == 0:
            return 0.0
        return self.covered_writes / self.writes

    def observe_epoch(self, size: int) -> None:
        self.epochs += 1
        self.requests += size
        if self.min_epoch_size == 0 or size < self.min_epoch_size:
            self.min_epoch_size = size
        if size > self.max_epoch_size:
            self.max_epoch_size = size

    def snapshot(self, prefix: str = "vec_") -> Dict[str, float]:
        """Flat ``{prefix<counter>: value}`` view for result extras."""
        return {
            f"{prefix}epochs": float(self.epochs),
            f"{prefix}requests": float(self.requests),
            f"{prefix}writes": float(self.writes),
            f"{prefix}unique_write_contents": float(self.unique_write_contents),
            f"{prefix}batched_ecc_lines": float(self.batched_ecc_lines),
            f"{prefix}batched_fp_lines": float(self.batched_fp_lines),
            f"{prefix}covered_writes": float(self.covered_writes),
            f"{prefix}scalar_fallback_lines": float(self.scalar_fallback_lines),
            f"{prefix}min_epoch_size": float(self.min_epoch_size),
            f"{prefix}max_epoch_size": float(self.max_epoch_size),
            f"{prefix}kernel_occupancy": self.kernel_occupancy,
        }


class EpochPrecomputer:
    """Batched kernel front end for one simulation run.

    Binds to the scheme's content-keyed engines once
    (``DedupScheme.vec_prime_engines``), then serves each epoch: dedupe
    the epoch's write contents, hand the unique ones to every engine's
    ``prime_batch``, and account what was batched versus left to scalar
    fallback.
    """

    __slots__ = ("_engines", "_stats")

    def __init__(self, scheme: object, stats: VecStats) -> None:
        self._stats = stats
        hints = getattr(scheme, "vec_prime_engines", None)
        self._engines = tuple(hints()) if hints is not None else ()

    def precompute(self, epoch: List[MemoryRequest]) -> None:
        """Run the batched kernels for one epoch (before its resolution)."""
        stats = self._stats
        stats.observe_epoch(len(epoch))
        contents = [r.data for r in epoch if r.data is not None]
        writes = len(contents)
        if not writes:
            return
        stats.writes += writes
        if not _memo.ENABLED or not self._engines:
            stats.scalar_fallback_lines += writes
            return
        unique = list(dict.fromkeys(contents))
        stats.unique_write_contents += len(unique)
        for engine in self._engines:
            primed = engine.prime_batch(unique)
            if getattr(engine, "name", "") == "ecc":
                stats.batched_ecc_lines += primed
            else:
                stats.batched_fp_lines += primed
        stats.covered_writes += writes
