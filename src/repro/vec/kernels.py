"""Bit-parallel numpy kernels over epochs of cache lines.

The scalar fast path (:mod:`repro.ecc.hamming`) encodes one word at a time
through eight 256-entry byte tables.  These kernels transpose those same
tables into numpy lookup matrices so one fancy-indexed gather plus an XOR
reduction encodes an *entire epoch* of lines:

* ``_WORD_LUT``  — shape ``(8, 256)`` uint8: ``_WORD_LUT[j][b]`` is byte
  *j*'s contribution to a word's ECC byte (exactly
  ``hamming._ENCODE_TABLES[j][b]``).
* ``_LINE_LUT``  — shape ``(64, 256)`` uint64: byte *k* of a 64-byte line
  belongs to word ``k // 8`` at byte offset ``k % 8``, and that word's ECC
  byte lands at bits ``8 * (k // 8)`` of the 64-bit line ECC, so
  ``_LINE_LUT[k][b] = _ENCODE_TABLES[k % 8][b] << (8 * (k // 8))``.

Because the code is GF(2)-linear, the XOR-reduction over the 64 gathered
contributions is *exactly* the scalar result — integer ops, no float
rounding, bit-identical by construction (asserted in
``tests/test_vec_kernels.py`` against the mask-and-popcount reference).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..common.types import CACHE_LINE_SIZE
from ..ecc import hamming

__all__ = [
    "encode_words_batch",
    "line_ecc_batch",
    "line_ecc_matrix",
    "lines_to_matrix",
    "syndrome_batch",
]

_WORD_LUT = np.array(hamming._ENCODE_TABLES, dtype=np.uint8)

_LINE_LUT = np.zeros((CACHE_LINE_SIZE, 256), dtype=np.uint64)
for _k in range(CACHE_LINE_SIZE):
    _LINE_LUT[_k] = (
        np.array(hamming._ENCODE_TABLES[_k % 8], dtype=np.uint64)
        << np.uint64(8 * (_k // 8)))

_BYTE_PARITY = np.frombuffer(hamming._BYTE_PARITY, dtype=np.uint8)

_LINE_COLS = np.arange(CACHE_LINE_SIZE)
_WORD_COLS = np.arange(8)

_CHECK_MASK = np.uint8(hamming._CHECK_BITS_MASK)


def lines_to_matrix(lines: Sequence[bytes]) -> np.ndarray:
    """Stack 64-byte lines into an ``(N, 64)`` uint8 matrix."""
    joined = b"".join(lines)
    if len(joined) != len(lines) * CACHE_LINE_SIZE:
        raise ValueError("every line must be exactly 64 bytes")
    return np.frombuffer(joined, dtype=np.uint8).reshape(
        len(lines), CACHE_LINE_SIZE)


def line_ecc_matrix(matrix: np.ndarray) -> np.ndarray:
    """Per-line 64-bit ECC fingerprints of an ``(N, 64)`` uint8 matrix.

    One gather (``_LINE_LUT[k, matrix[:, k]]`` for all *k* at once via
    broadcast fancy indexing) and one XOR reduction along the byte axis.
    """
    if matrix.ndim != 2 or matrix.shape[1] != CACHE_LINE_SIZE:
        raise ValueError("expected an (N, 64) matrix of line bytes")
    contributions = _LINE_LUT[_LINE_COLS, matrix]
    return np.bitwise_xor.reduce(contributions, axis=1)


def line_ecc_batch(lines: Sequence[bytes]) -> List[int]:
    """Line ECC fingerprints for a batch of 64-byte lines, as Python ints.

    Bit-identical to mapping :func:`repro.ecc.codec.line_ecc_uncached` over
    ``lines`` — the values are interchangeable with the scalar kernel's and
    safe to prime its memo cache with.
    """
    if not lines:
        return []
    return line_ecc_matrix(lines_to_matrix(lines)).tolist()


def encode_words_batch(words: np.ndarray) -> np.ndarray:
    """8-bit SEC-DED ECC bytes of an array of uint64 words.

    Equivalent to mapping :func:`repro.ecc.hamming.encode_word`, via the
    same per-byte tables: view each little-endian word as 8 bytes, gather
    per-byte contributions, XOR-reduce.
    """
    words = np.ascontiguousarray(words, dtype="<u8")
    byte_view = words.view(np.uint8).reshape(-1, 8)
    return np.bitwise_xor.reduce(_WORD_LUT[_WORD_COLS, byte_view], axis=1)


def syndrome_batch(words: np.ndarray,
                   eccs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Batched SEC-DED syndromes for received ``(word, ecc)`` pairs.

    Returns ``(position_syndrome, parity_syndrome)`` uint8 arrays matching
    :func:`repro.ecc.hamming.syndrome` elementwise — the same table-driven
    identity, with the byte-parity lookups done as array gathers.
    """
    eccs = np.asarray(eccs, dtype=np.uint8)
    encoded = encode_words_batch(words)
    recomputed_checks = encoded & _CHECK_MASK
    stored_checks = eccs & _CHECK_MASK
    stored_overall = eccs >> np.uint8(7)
    position = recomputed_checks ^ stored_checks
    word_parity = (encoded >> np.uint8(7)) ^ _BYTE_PARITY[recomputed_checks]
    parity = word_parity ^ _BYTE_PARITY[stored_checks] ^ stored_overall
    return position, parity
