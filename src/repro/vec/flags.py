"""Process-global switch for the vectorized epoch-batched engine.

Mirrors :mod:`repro.perf.memo`'s pattern: one module-global ``ENABLED``
flag, initialised from the ``REPRO_VECTORIZED`` environment variable and
overridable per run through ``SystemConfig.use_vectorized`` (applied by
``SimulationEngine.run`` via :func:`repro.vec.begin_run`).

The flag gates *host-CPU execution strategy only*: with it on, the engine
drains requests in fixed-size epochs and runs batched numpy kernels over
each epoch before the per-line resolution, and the trace reader uses the
batched numpy parser.  Simulated results are bit-identical either way — the
same parity contract the kernel fast path carries, enforced by
``benchmarks/perf_smoke.py`` and ``tests/test_vec_parity.py``.
"""

from __future__ import annotations

import os

__all__ = ["ENV_VAR", "ENABLED", "default_enabled"]

#: Environment variable controlling the process-default switch.  Any of
#: ``0/false/off/no`` (case-insensitive) disables the vectorized engine.
ENV_VAR = "REPRO_VECTORIZED"

_FALSY = {"0", "false", "off", "no"}


def default_enabled() -> bool:
    """The process default for the vectorized engine, from :data:`ENV_VAR`."""
    raw = os.environ.get(ENV_VAR)
    if raw is None:
        return True
    return raw.strip().lower() not in _FALSY


#: Process-global switch consulted by the engine's loop selection and the
#: trace serializer.  Mutated only through :func:`repro.vec.set_vectorized`
#: / the engine's run lifecycle.
ENABLED: bool = default_enabled()
