"""ESD: ECC-assisted and Selective Deduplication for Encrypted NVMM.

A from-scratch Python reproduction of the HPCA 2023 paper by Du, Wu, Wu,
Mao, and Wang.  The package contains:

* :mod:`repro.core` — the paper's contribution: the ESD scheme with its
  EFIT (ECC-fingerprint cache, LRCU-managed) and AMT (packed address map).
* :mod:`repro.dedup` — the comparison schemes (Baseline, Dedup_SHA1,
  DeWrite) sharing one interface.
* Substrates built from scratch: :mod:`repro.ecc` (SEC-DED Hamming(72,64)),
  :mod:`repro.crypto` (counter-mode encryption, fingerprint engines),
  :mod:`repro.nvmm` (PCM device/banks/controller/energy),
  :mod:`repro.cache` (3-level hierarchy + IPC model),
  :mod:`repro.workloads` (20 calibrated application profiles + generator).
* :mod:`repro.sim` — the trace-driven engine and experiment runner.
* :mod:`repro.sweep` — parallel sweep orchestration: process-pool
  scheduler, content-addressed result store, resumable checkpoints.
* :mod:`repro.perf` — content-addressed kernel fast path: bounded LRU
  memoization of the pure ECC/crypto kernels (``REPRO_FASTPATH`` /
  ``SystemConfig.use_fastpath``), bit-identical to the slow path.
* :mod:`repro.analysis` — one reproduction function per paper figure.

Quickstart::

    from repro import make_scheme, TraceGenerator, SimulationEngine

    scheme = make_scheme("ESD")
    trace = TraceGenerator("gcc").generate_list(20_000)
    result = SimulationEngine(scheme).run(iter(trace), app="gcc",
                                          total_hint=len(trace))
    print(result.mean_write_latency_ns, result.write_reduction)
"""

from .common import (
    CACHE_LINE_SIZE,
    AccessType,
    MemoryRequest,
    SystemConfig,
    default_config,
    small_test_config,
)
from .core import EFIT, AddressMappingTable, ESDScheme, LRCUCache
from .dedup import (
    SCHEME_NAMES,
    BaselineScheme,
    DedupScheme,
    DedupSHA1Scheme,
    DeWriteScheme,
    make_scheme,
)
from .ecc import decode_line, encode_word, line_ecc
from .perf import (
    cache_stats,
    fastpath,
    fastpath_enabled,
    reset_caches,
    set_fastpath,
)
from .sim import (
    EngineConfig,
    ExperimentConfig,
    FullSystem,
    SimulationEngine,
    SimulationResult,
    run_app,
    run_grid,
    scaled_system_config,
)
from .sweep import run_sweep
from .workloads import TraceGenerator, app_names, get_profile

__version__ = "1.0.0"

__all__ = [
    "AccessType",
    "AddressMappingTable",
    "BaselineScheme",
    "CACHE_LINE_SIZE",
    "DedupScheme",
    "DedupSHA1Scheme",
    "DeWriteScheme",
    "EFIT",
    "ESDScheme",
    "EngineConfig",
    "ExperimentConfig",
    "FullSystem",
    "LRCUCache",
    "MemoryRequest",
    "SCHEME_NAMES",
    "SimulationEngine",
    "SimulationResult",
    "SystemConfig",
    "TraceGenerator",
    "__version__",
    "app_names",
    "cache_stats",
    "decode_line",
    "default_config",
    "encode_word",
    "fastpath",
    "fastpath_enabled",
    "get_profile",
    "line_ecc",
    "make_scheme",
    "reset_caches",
    "set_fastpath",
    "run_app",
    "run_grid",
    "run_sweep",
    "scaled_system_config",
    "small_test_config",
]
