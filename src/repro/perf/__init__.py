"""Content-addressed fast path for the simulator's hot kernels.

``repro.perf`` makes million-request sweeps tractable on one machine by
memoizing the pure-Python kernels that dominate host CPU time (ECC encode /
decode, counter-mode pads, hash fingerprints) in bounded, content-addressed
LRU caches — see :mod:`repro.perf.memo` for the machinery and the soundness
rules.

Control surface
---------------

* ``REPRO_FASTPATH`` environment variable: process-wide default (on unless
  set to ``0/false/off/no``).
* ``SystemConfig.use_fastpath``: per-run override (``None`` defers to the
  environment default); applied by ``SimulationEngine.run``.
* :func:`set_fastpath` / :func:`fastpath` for direct and scoped control in
  tests and benchmarks.

Run lifecycle
-------------

``SimulationEngine.run`` brackets every simulation with
:func:`begin_run` / :func:`end_run`: caches are reset at run start (so each
grid cell starts cold and its hit/miss statistics depend only on the cell,
never on worker scheduling — the property that keeps parallel sweeps
byte-identical to serial runs) and a statistics snapshot is exported through
``SimulationResult.extras`` at run end.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

from . import memo
from .memo import MemoCache, default_enabled, get_cache

__all__ = [
    "MemoCache",
    "begin_run",
    "cache_stats",
    "default_enabled",
    "end_run",
    "fastpath",
    "fastpath_enabled",
    "get_cache",
    "reset_caches",
    "set_fastpath",
]


def fastpath_enabled() -> bool:
    """Whether the memoized fast path is currently active."""
    return memo.ENABLED


def set_fastpath(enabled: bool) -> bool:
    """Set the process-global switch; returns the previous value."""
    previous = memo.ENABLED
    memo.ENABLED = bool(enabled)
    return previous


@contextmanager
def fastpath(enabled: bool) -> Iterator[None]:
    """Scoped enable/disable, restoring the prior state on exit."""
    previous = set_fastpath(enabled)
    try:
        yield
    finally:
        memo.ENABLED = previous


def reset_caches() -> None:
    """Drop every kernel cache's entries and counters."""
    memo.reset_all()


def cache_stats(prefix: str = "memo_", *,
                only_touched: bool = True) -> Dict[str, float]:
    """Flat snapshot of all kernel-cache counters (see ``stats_snapshot``)."""
    return memo.stats_snapshot(prefix, only_touched=only_touched)


def begin_run(override: Optional[bool] = None) -> Tuple[bool, bool]:
    """Start a simulation run's fast-path scope.

    Resolves the run's switch (``override`` wins; ``None`` defers to the
    environment default), installs it, and resets every cache so the run
    starts cold.

    Returns:
        ``(previous, active)`` — the prior global switch (hand it back to
        :func:`end_run`) and the switch in effect for this run.
    """
    active = default_enabled() if override is None else bool(override)
    previous = set_fastpath(active)
    memo.reset_all()
    return previous, active


def end_run(previous: bool) -> Dict[str, float]:
    """End a run's scope: snapshot cache statistics, restore the switch."""
    stats = memo.stats_snapshot()
    memo.ENABLED = previous
    return stats
