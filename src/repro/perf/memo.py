"""Bounded content-addressed memo caches for the simulator's hot kernels.

The pure-Python kernels on the simulated write path — per-word Hamming
encoding (:func:`repro.ecc.codec.line_ecc`), clean-line decode, SHA-based
one-time pads, and hash fingerprints — cost microseconds of *host* CPU per
call.  They are all pure functions of their arguments, and the workload skew
ESD itself exploits (a small set of line contents accounts for most kernel
invocations) makes a small content-keyed cache extremely effective: the
``BENCH_perf_smoke.json`` micro-benchmarks show 3.5-14x per kernel.

This module provides the shared machinery:

* :class:`MemoCache` — a capped LRU mapping with hit/miss/eviction counters.
* A process-global registry of named caches (:func:`get_cache`), so the
  simulation engine can reset and snapshot every kernel cache uniformly.
* The process-global :data:`ENABLED` switch, initialised from the
  ``REPRO_FASTPATH`` environment variable (default on) and overridable per
  run through ``SystemConfig.use_fastpath``.

Soundness rules (enforced by the call sites, tested in
``tests/test_perf_parity.py``):

* Only *pure* functions are memoized, and the cache key covers **every**
  argument the result depends on.  In particular ``decode_line`` is keyed on
  ``(data, ecc)`` — not on ``data`` alone — so a fault-injected line (same
  stored ECC, corrupted data, or vice versa) can never hit a stale
  clean-decode result.
* Cached values are immutable (``int``, ``bytes``, frozen dataclasses), so
  sharing one object between callers is safe.
* Exceptions are never cached; a failing call re-executes every time.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Any, Dict, Hashable, List, Optional

__all__ = [
    "ENABLED",
    "MemoCache",
    "default_enabled",
    "get_cache",
    "registered_caches",
    "reset_all",
    "state_export",
    "state_import",
    "stats_snapshot",
]

#: Environment variable controlling the process-default switch.  Any of
#: ``0/false/off/no`` (case-insensitive) disables the fast path.
ENV_VAR = "REPRO_FASTPATH"

_FALSY = {"0", "false", "off", "no"}


def default_enabled() -> bool:
    """The process default for the fast path, from :data:`ENV_VAR`."""
    raw = os.environ.get(ENV_VAR)
    if raw is None:
        return True
    return raw.strip().lower() not in _FALSY


#: Process-global switch consulted by every memoized kernel.  Mutated only
#: through :func:`repro.perf.set_fastpath` / the engine's run lifecycle.
ENABLED: bool = default_enabled()


class MemoCache:
    """A size-capped LRU mapping with observability counters.

    Not thread-safe; the simulator parallelises across *processes* (each
    worker owns its own module state), so no locking is needed on the hot
    path.
    """

    __slots__ = ("name", "capacity", "hits", "misses", "evictions", "_data")

    def __init__(self, name: str, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look ``key`` up, counting a hit or a miss.

        A hit refreshes the key's recency.  ``default`` (``None`` at every
        kernel call site — no kernel caches ``None`` as a value) is returned
        on a miss.
        """
        data = self._data
        value = data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        data.move_to_end(key)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``key``, evicting the least-recently-used entry at cap."""
        data = self._data
        if key in data:
            data.move_to_end(key)
            data[key] = value
            return
        if len(data) >= self.capacity:
            data.popitem(last=False)
            self.evictions += 1
        data[key] = value

    def reset(self) -> None:
        """Drop all entries and zero the counters."""
        self._data.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def touched(self) -> bool:
        """True when the cache saw any traffic since its last reset."""
        return bool(self.hits or self.misses)

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._data),
        }

    def __reduce__(self):
        """Pickle as a *registry reference*, never by value.

        Objects that lazily bind a cache (e.g. the fingerprinters'
        ``self._cache``) get pickled inside session checkpoints; a
        by-value copy would detach them from the process-global registry
        on restore, silently forking counters and contents.  Resolving
        through :func:`get_cache` re-binds to the live registry instance
        — whose entries/counters the checkpoint restores separately via
        :func:`state_import`.
        """
        return (get_cache, (self.name, self.capacity))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MemoCache({self.name!r}, capacity={self.capacity}, "
                f"size={len(self._data)}, hits={self.hits}, "
                f"misses={self.misses}, evictions={self.evictions})")


_MISSING = object()

_REGISTRY: Dict[str, MemoCache] = {}


def get_cache(name: str, capacity: int) -> MemoCache:
    """Create (or return) the process-global cache registered under ``name``.

    The first caller fixes the capacity; later callers share the instance.
    """
    cache = _REGISTRY.get(name)
    if cache is None:
        cache = MemoCache(name, capacity)
        _REGISTRY[name] = cache
    return cache


def registered_caches() -> List[MemoCache]:
    """All registered caches (stable registration order)."""
    return list(_REGISTRY.values())


def reset_all() -> None:
    """Reset every registered cache (entries and counters)."""
    for cache in _REGISTRY.values():
        cache.reset()


def state_export() -> Dict[str, Dict[str, Any]]:
    """Snapshot every registered cache's entries and counters.

    Used by mid-run checkpoints: the memoized kernels are pure, but cache
    *hit/miss counters* feed exported run metrics, so a bit-exact resume
    must restore the caches exactly as they stood.  Entry order (LRU
    recency) is preserved — an ``OrderedDict`` copy keeps it.
    """
    return {
        name: {
            "capacity": cache.capacity,
            "hits": cache.hits,
            "misses": cache.misses,
            "evictions": cache.evictions,
            "entries": OrderedDict(cache._data),
        }
        for name, cache in _REGISTRY.items()
    }


def state_import(state: Dict[str, Dict[str, Any]]) -> None:
    """Restore a :func:`state_export` snapshot into the live registry.

    Caches not present in the snapshot are reset, so the registry as a
    whole matches the exporting process.  Entries are written **in place**
    (``_data`` is cleared and refilled, never reassigned): call sites may
    hold direct aliases to a cache's mapping — e.g.
    ``repro.crypto.counter_mode`` binds ``_PAD_CACHE._data`` at import
    time — and reassignment would silently detach them.
    """
    for name, cache in _REGISTRY.items():
        if name not in state:
            cache.reset()
    for name, snap in state.items():
        cache = get_cache(name, snap["capacity"])
        cache.hits = snap["hits"]
        cache.misses = snap["misses"]
        cache.evictions = snap["evictions"]
        cache._data.clear()
        cache._data.update(snap["entries"])


def stats_snapshot(prefix: str = "memo_", *,
                   only_touched: bool = True) -> Dict[str, float]:
    """Flat ``{prefix<name>_<counter>: value}`` snapshot of every cache.

    ``only_touched`` skips caches with no traffic, keeping exported extras
    compact and — because the engine resets caches at the start of each run
    — deterministic for a given (trace, scheme, config) cell regardless of
    worker scheduling.
    """
    out: Dict[str, float] = {}
    for name in sorted(_REGISTRY):
        cache = _REGISTRY[name]
        if only_touched and not cache.touched:
            continue
        for counter, value in cache.stats().items():
            out[f"{prefix}{name}_{counter}"] = float(value)
    return out
