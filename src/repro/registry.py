"""Single source of truth for scheme names, codes, and construction.

Historically ``repro.dedup.__init__`` hard-coded ``SCHEME_NAMES`` plus an
``if/elif`` factory, and every consumer (``sim.runner``, ``cli``,
``sweep.job``, ``analysis.experiments``) imported that chain — while the
schemes themselves lived split across ``repro.dedup`` and ``repro.core``.
This module collapses the split brain: scheme classes self-describe with
the :func:`register_scheme` decorator, and everything else asks the
registry.

Registration is *lazy*: the registry only knows a scheme once its module
has been imported, so :func:`_ensure_loaded` imports the scheme modules in
a fixed order.  That order is load-bearing — it defines the canonical
presentation order of ``scheme_names()`` (the paper's four evaluated
schemes) and ``registered_scheme_names()`` (those four plus the extended
comparison points), which feed tables, sweeps, and CLI help.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .dedup.base import DedupScheme

#: Modules that register schemes, imported lazily in presentation order.
_SCHEME_MODULES: Tuple[str, ...] = (
    "repro.dedup.baseline",
    "repro.dedup.dedup_sha1",
    "repro.dedup.dewrite",
    "repro.core.esd",
    "repro.dedup.dae_pde",
    "repro.dedup.nvdedup",
    "repro.core.esd_delta",
)


@dataclass(frozen=True)
class SchemeInfo:
    """One registered scheme: its class plus presentation metadata."""

    name: str
    cls: "Type[DedupScheme]"
    #: True for the paper's four evaluated schemes (Figures 15-18).
    evaluation: bool
    #: Optional single-character CLI shorthand ("0".."3").
    code: Optional[str]


_REGISTRY: Dict[str, SchemeInfo] = {}
_loaded = False


def register_scheme(name: str, *, evaluation: bool = False,
                    code: Optional[str] = None
                    ) -> "Callable[[Type[DedupScheme]], Type[DedupScheme]]":
    """Class decorator registering a :class:`DedupScheme` under ``name``.

    Sets ``cls.name`` so results tables and the class agree on the
    identifier.  ``evaluation=True`` marks the scheme as part of the
    paper's default evaluation grid; ``code`` adds a CLI shorthand.
    """

    def _decorate(cls: "Type[DedupScheme]") -> "Type[DedupScheme]":
        existing = _REGISTRY.get(name)
        if existing is not None and existing.cls is not cls:
            raise ValueError(
                f"scheme name {name!r} already registered by "
                f"{existing.cls.__module__}.{existing.cls.__qualname__}")
        cls.name = name
        _REGISTRY[name] = SchemeInfo(name=name, cls=cls,
                                     evaluation=evaluation, code=code)
        return cls

    return _decorate


def _ensure_loaded() -> None:
    global _loaded
    if _loaded:
        return
    for module in _SCHEME_MODULES:
        importlib.import_module(module)
    _loaded = True


def scheme_names() -> Tuple[str, ...]:
    """The paper's evaluated schemes, in presentation order."""
    _ensure_loaded()
    return tuple(info.name for info in _REGISTRY.values() if info.evaluation)


def registered_scheme_names() -> Tuple[str, ...]:
    """Every registered scheme, evaluated four first."""
    _ensure_loaded()
    names: List[str] = [info.name for info in _REGISTRY.values()
                        if info.evaluation]
    names.extend(info.name for info in _REGISTRY.values()
                 if not info.evaluation)
    return tuple(names)


def scheme_codes() -> Dict[str, str]:
    """CLI shorthand -> scheme name (e.g. ``"3" -> "ESD"``)."""
    _ensure_loaded()
    return {info.code: info.name for info in _REGISTRY.values()
            if info.code is not None}


def scheme_info(name: str) -> SchemeInfo:
    """Registry entry for ``name``; raises ValueError when unknown."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; registered schemes: "
            f"{', '.join(registered_scheme_names())}") from None


def resolve_scheme_name(token: str) -> str:
    """Resolve a CLI token (code, exact, or case-insensitive name).

    Raises ValueError listing the registered names when nothing matches.
    """
    _ensure_loaded()
    by_code = scheme_codes()
    if token in by_code:
        return by_code[token]
    if token in _REGISTRY:
        return token
    lowered = token.lower()
    for name in _REGISTRY:
        if name.lower() == lowered:
            return name
    raise ValueError(
        f"unknown scheme {token!r}; registered schemes: "
        f"{', '.join(registered_scheme_names())}")


def make_scheme(name: str, config=None) -> "DedupScheme":
    """Instantiate a registered scheme by name."""
    return scheme_info(name).cls(config)
