"""Mid-run simulation checkpoints: interrupt-and-resume, bit-exact.

A week-long endurance study must survive host restarts.  The session API
(:mod:`repro.sim.session`) already carries *all* run state on objects —
the scheme graph (controller, banks, stores, timelines), the recorders,
the core-timing model, the integrity shadow, the vectorized epoch buffer
— so a checkpoint is a pickle of the session graph plus the one piece of
process-global state the run depends on: the memo-cache registry
(:mod:`repro.perf.memo`), whose hit/miss counters feed exported extras.

Why this is bit-exact (the property the CI ``trace-resume`` job gates):

* Every accumulator that orders float arithmetic lives on the session
  (``_stall_cycles``, the recorders' running state) and pickle restores
  floats, deques, ``OrderedDict`` order, and ``np.random.Generator``
  state exactly.
* The vectorized loop's epoch buffer (``_pending``) is pickled too, so
  epoch boundaries after resume fall exactly where an uninterrupted
  ``iter_epochs`` would have put them.
* Memo caches are snapshotted with entry order and counters and restored
  **in place** (:func:`repro.perf.memo.state_import`), so cache-stat
  extras and priming counts match an uninterrupted run.

File format: a fixed header — magic ``b"ESDCKPT1"``, u16 version, u16
reserved, u32 CRC-32 of the payload, u64 payload length — followed by
the pickled payload.  Writes go through
:func:`repro.common.atomic.fsync_atomic_write`, so a checkpoint file
can never be seen torn; the CRC catches bit rot and truncation on read.

Checkpoints are pickles: load them only from sources you trust, same as
any pickle.  They are also process-private state — restore on the same
interpreter/library versions that wrote them (the header version and the
pickled payload's own version field gate incompatible layouts).
"""

from __future__ import annotations

import pickle
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, BinaryIO, Dict, TYPE_CHECKING, Union

from ..common.atomic import fsync_atomic_write
from ..common.errors import CheckpointError
from ..perf import memo as _memo

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .session import Session

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "RestoredCheckpoint",
    "checkpoint_bytes",
    "checkpoint_stats",
    "load_checkpoint",
    "reset_checkpoint_stats",
    "write_checkpoint",
]

CHECKPOINT_MAGIC = b"ESDCKPT1"
CHECKPOINT_VERSION = 1

_HEADER = struct.Struct("<8sHHIQ")

#: Process-global checkpoint-IO counters (mirrors the trace-IO counters in
#: :mod:`repro.workloads.trace`; checkpoints are written outside any run's
#: obs scope).
_IO_COUNTERS: Dict[str, int] = {
    "checkpoints_written": 0,
    "checkpoints_loaded": 0,
    "bytes_written": 0,
    "bytes_loaded": 0,
}


def checkpoint_stats() -> Dict[str, int]:
    """Snapshot of the process-global checkpoint-IO counters."""
    return dict(_IO_COUNTERS)


def reset_checkpoint_stats() -> None:
    """Zero the checkpoint-IO counters (testing/benchmark helper)."""
    for key in _IO_COUNTERS:
        _IO_COUNTERS[key] = 0


@dataclass(frozen=True)
class RestoredCheckpoint:
    """A loaded checkpoint: the live session plus resume bookkeeping."""

    #: The restored, open session — feed it the rest of the stream.
    session: "Session"
    #: Source-stream records the session has already consumed (processed
    #: plus the buffered vectorized epoch tail): skip exactly this many
    #: records before feeding.
    consumed: int
    #: Identifying metadata captured at checkpoint time (app, scheme,
    #: switch states, counts) for resume-time validation.
    meta: Dict[str, Any]


def checkpoint_bytes(session: "Session") -> bytes:
    """Serialize an open session (plus memo-cache state) to bytes.

    Raises:
        SessionError: when the session is not open (a finalized or failed
            run has nothing meaningful to resume).
    """
    session._require_open("checkpoint")
    meta: Dict[str, Any] = {
        "app": session.app,
        "scheme": session.scheme.name,
        "processed": session.processed,
        "pending": session.pending,
        "consumed": session.processed + session.pending,
        "fastpath": session._fast_on,
        "vectorized": session._vec_on,
    }
    payload = pickle.dumps(
        {
            "version": CHECKPOINT_VERSION,
            "meta": meta,
            "memo": _memo.state_export(),
            "session": session,
        },
        protocol=pickle.HIGHEST_PROTOCOL)
    header = _HEADER.pack(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, 0,
                          zlib.crc32(payload), len(payload))
    return header + payload


def write_checkpoint(session: "Session",
                     path: Union[str, Path]) -> int:
    """Atomically write a session checkpoint; returns bytes written.

    The file appears under ``path`` only after the full payload is
    fsynced (temp-file + rename discipline), so an interrupted write
    leaves the previous checkpoint — or nothing — never a torn file.
    """
    data = checkpoint_bytes(session)
    fsync_atomic_write(Path(path), data)
    _IO_COUNTERS["checkpoints_written"] += 1
    _IO_COUNTERS["bytes_written"] += len(data)
    return len(data)


def _read_source(source: Union[str, Path, bytes, BinaryIO]) -> bytes:
    if isinstance(source, bytes):
        return source
    if isinstance(source, (str, Path)):
        return Path(source).read_bytes()
    return source.read()


def load_checkpoint(
        source: Union[str, Path, bytes, BinaryIO]) -> RestoredCheckpoint:
    """Load a checkpoint and reinstall its process-global state.

    Validates magic, version, payload length, and CRC before unpickling;
    then restores the memo-cache registry in place and returns the live
    session with its resume offset.

    Raises:
        CheckpointError: on a corrupt, truncated, or incompatible file.
    """
    data = _read_source(source)
    if len(data) < _HEADER.size:
        raise CheckpointError(
            f"truncated checkpoint: {len(data)} bytes is shorter than the "
            f"{_HEADER.size}-byte header")
    magic, version, _, crc, length = _HEADER.unpack_from(data)
    if magic != CHECKPOINT_MAGIC:
        raise CheckpointError(f"bad checkpoint magic {magic!r}")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(f"unsupported checkpoint version {version}")
    payload = data[_HEADER.size:]
    if len(payload) != length:
        raise CheckpointError(
            f"truncated checkpoint payload: header declares {length} bytes, "
            f"found {len(payload)}")
    if zlib.crc32(payload) != crc:
        raise CheckpointError("checkpoint CRC mismatch (corrupt payload)")
    try:
        state = pickle.loads(payload)
    except Exception as exc:
        raise CheckpointError(f"unreadable checkpoint payload: {exc}") from exc
    if not isinstance(state, dict) \
            or state.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError("malformed checkpoint payload")
    session: "Session" = state["session"]
    if session.state != "open":
        raise CheckpointError(
            f"checkpoint holds a {session.state} session; only open "
            f"sessions can resume")
    _memo.state_import(state["memo"])
    meta = state["meta"]
    _IO_COUNTERS["checkpoints_loaded"] += 1
    _IO_COUNTERS["bytes_loaded"] += len(data)
    return RestoredCheckpoint(session=session, consumed=meta["consumed"],
                              meta=meta)
