"""Result containers produced by a simulation run.

A :class:`SimulationResult` carries everything any figure of the paper
needs: latency distributions (means, percentiles, CDFs), energy breakdowns,
write-traffic reductions, IPC, metadata footprints, and scheme-internal
rates (EFIT/AMT hit rates, predictor accuracy, Figure 5 filter splits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..common.stats import LatencyRecorder
from ..common.types import LatencyBreakdown, WritePathStage
from ..dedup.base import DedupScheme, MetadataFootprint


#: Metric names served by :meth:`SimulationResult.summary_row`, in row
#: order.  The single source of truth for metric-name validation (the sweep
#: CLI and :func:`repro.sim.runner.grid_metric` both check against this
#: before running anything expensive).
SUMMARY_METRICS: Tuple[str, ...] = (
    "write_latency_ns",
    "read_latency_ns",
    "write_p99_ns",
    "write_reduction",
    "energy_nj",
    "ipc",
    "pcm_data_writes",
)


@dataclass
class SimulationResult:
    """Measured outcome of driving one scheme with one application trace."""

    app: str
    scheme: str
    write_latency: LatencyRecorder
    read_latency: LatencyRecorder
    #: Writes presented to the scheme (post-warm-up).
    writes: int = 0
    #: Reads presented to the scheme (post-warm-up).
    reads: int = 0
    #: Writes the scheme eliminated via deduplication (post-warm-up).
    dedup_eliminated: int = 0
    #: PCM data-line writes actually performed (whole run).
    pcm_data_writes: int = 0
    #: PCM metadata writes (whole run).
    pcm_metadata_writes: int = 0
    pcm_data_reads: int = 0
    pcm_metadata_reads: int = 0
    #: Energy by category name, nJ (whole run).
    energy_nj: Dict[str, float] = field(default_factory=dict)
    #: Write-path latency profile (stage -> accumulated ns).
    breakdown: Optional[LatencyBreakdown] = None
    #: Read-path latency profile (stage -> accumulated ns).
    read_breakdown: Optional[LatencyBreakdown] = None
    #: IPC from the core timing model.
    ipc: float = 0.0
    metadata: Optional[MetadataFootprint] = None
    #: Scheme-specific rates, e.g. {"efit_hit_rate": ..., "amt_hit_rate": ...}.
    extras: Dict[str, float] = field(default_factory=dict)
    #: Observability report (``repro.obs.export.build_report``) when the
    #: run had ``SystemConfig.observability.enabled``; ``None`` otherwise.
    #: Held in memory only — deliberately excluded from the persisted
    #: result state (see ``repro.sim.export``), which keeps STATE_VERSION
    #: stable; the sweep store persists it separately.
    obs: Optional[Dict] = None

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------

    @property
    def mean_write_latency_ns(self) -> float:
        return self.write_latency.mean_ns

    @property
    def mean_read_latency_ns(self) -> float:
        return self.read_latency.mean_ns

    @property
    def total_energy_nj(self) -> float:
        return sum(self.energy_nj.values())

    @property
    def write_reduction(self) -> float:
        """Fraction of presented writes eliminated by deduplication."""
        if self.writes == 0:
            return 0.0
        return self.dedup_eliminated / self.writes

    def breakdown_fractions(self) -> Dict[WritePathStage, float]:
        """Figure 17's per-stage shares of total write-path latency."""
        if self.breakdown is None:
            return {}
        return self.breakdown.as_fractions()

    def write_cdf(self, points: int = 100) -> Tuple[List[float], List[float]]:
        """Figure 15's write-latency CDF series."""
        return self.write_latency.cdf(points)

    def summary_row(self) -> Dict[str, float]:
        """Flat dict for tabular reporting (keys = :data:`SUMMARY_METRICS`)."""
        return {
            "write_latency_ns": self.mean_write_latency_ns,
            "read_latency_ns": self.mean_read_latency_ns,
            "write_p99_ns": self.write_latency.percentile(99),
            "write_reduction": self.write_reduction,
            "energy_nj": self.total_energy_nj,
            "ipc": self.ipc,
            "pcm_data_writes": float(self.pcm_data_writes),
        }


def speedup(baseline: SimulationResult, other: SimulationResult,
            metric: str = "write") -> float:
    """Latency ratio baseline/other (>1 means ``other`` is faster).

    Matches the paper's definition: "write speedup is denoted as the write
    latency of the Baseline scheme divided by the other schemes".
    """
    if metric == "write":
        ref, val = baseline.mean_write_latency_ns, other.mean_write_latency_ns
    elif metric == "read":
        ref, val = baseline.mean_read_latency_ns, other.mean_read_latency_ns
    else:
        raise ValueError(f"unknown metric {metric!r}")
    if val == 0:
        raise ValueError("cannot compute speedup against zero latency")
    return ref / val


def collect_extras(scheme: DedupScheme) -> Dict[str, float]:
    """Harvest scheme-specific observability into a flat mapping."""
    extras: Dict[str, float] = {}
    efit = getattr(scheme, "efit", None)
    if efit is not None:
        extras["efit_hit_rate"] = efit.hit_rate
        extras["efit_evictions"] = float(efit.evictions)
    amt = getattr(scheme, "amt", None)
    if amt is not None:
        extras["amt_hit_rate"] = amt.hit_rate
    mapping = getattr(scheme, "mapping", None)
    if mapping is not None:
        extras["mapping_hit_rate"] = mapping.hit_rate
    store = getattr(scheme, "store", None)
    if store is not None:
        cache_hits, nvmm_hits = store.duplicate_filter_split()
        extras["fp_cache_filtered"] = float(cache_hits)
        extras["fp_nvmm_filtered"] = float(nvmm_hits)
        extras["fp_nvmm_lookups"] = float(store.nvmm_lookup_ops)
    predictor = getattr(scheme, "predictor", None)
    if predictor is not None:
        extras["prediction_accuracy"] = predictor.stats.accuracy
    for counter in ("ecc_collisions", "crc_collisions", "referh_overflows",
                    "wasted_encryptions"):
        value = scheme.counters.get(counter)
        if value:
            extras[counter] = float(value)
    return extras
