"""Incremental simulation sessions: the engine's streaming API.

:meth:`~repro.sim.engine.SimulationEngine.run` consumes a whole request
stream in one call.  The serving layer (:mod:`repro.serve`) instead needs
to *feed* a long-running simulation in chunks as they arrive from a
client, interleaved with other tenants' sessions on the same process.
:class:`Session` is that API::

    session = engine.open_session(app="gcc", total_hint=20_000)
    for chunk in chunks:          # any chunk sizes, any number of calls
        session.feed(chunk)
    result = session.finalize()   # same SimulationResult run() returns

Parity contract
---------------

``run()`` is reimplemented on top of ``open_session``/``feed``/
``finalize``, and a session fed in arbitrary chunk sizes produces a
``SimulationResult`` **bit-identical** to a one-shot ``run()`` of the
concatenated stream (``tests/test_serve_session_parity.py``).  The three
request-loop bodies — reference, kernel-fast, and epoch-vectorized — are
the engine's former ``_loop_*`` implementations carved into resumable
chunk processors; the load-bearing details are:

* **Float accumulation order.**  The fast/vectorized loops accumulate
  core stall cycles in a local and flush once at the end; a session keeps
  that running float across ``feed`` calls and flushes it to the core in
  ``finalize``, so the sequence of float additions is exactly the
  one-shot loop's (chunked partial sums would reassociate and drift).
* **Recorder batching.**  ``LatencyRecorder.add_many`` performs the same
  per-sample arithmetic as repeated ``add`` with state round-tripping
  through the instance, so flushing per feed chunk (fast) or per epoch
  (vectorized) is bit-identical to one end-of-run flush.
* **Epoch formation.**  The vectorized loop drains the stream in
  fixed-size epochs; a session buffers pending requests and only
  processes *full* epochs during ``feed``, releasing the short tail
  epoch in ``finalize`` — the exact chunking ``iter_epochs`` produces
  regardless of how the stream was split across ``feed`` calls.

Scope handling
--------------

The fast-path/vectorized switches and the observability scope are
process-global (:mod:`repro.perf.memo`, :mod:`repro.vec.flags`,
:mod:`repro.obs.runtime`).  A session resolves its switches once at open
(config override wins, ``None`` defers to the environment default, memo
caches are reset — exactly ``run()``'s begin), then *activates* them
around each ``feed``/``finalize`` call and restores the previous globals
after, so many sessions can interleave on one process.  Memo caches are
shared between interleaved sessions — sound, because the caches are
content-addressed and pure, but the cache-statistics extras (``memo_*``
and the ``vec_batched_*`` priming counts, which skip already-cached
contents) are only deterministic for sessions that run without
interleaving; the parity gates compare full results on that basis.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from itertools import islice
from typing import Deque, Dict, Iterable, List, Optional, TYPE_CHECKING

from ..cache.cpu import CoreTimingModel
from ..common.errors import IntegrityError, SessionError
from ..common.stats import LatencyRecorder
from ..common.types import AccessType, MemoryRequest
from ..obs import runtime as _obs_runtime
from ..obs.export import build_report
from ..obs.harvest import harvest_run
from ..obs.runtime import RunObservation
from ..perf import memo as _memo
from ..vec import flags as _vec_flags
from ..vec.epoch import EpochPrecomputer, VecStats
from .metrics import SimulationResult, collect_extras

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import SimulationEngine

__all__ = ["Session"]

#: Power-of-two bucket bounds for the vectorized loop's epoch-size
#: histogram (epochs are ``vec_epoch_size`` except a possibly-short tail).
_EPOCH_SIZE_BOUNDS = tuple(float(1 << i) for i in range(21))


class Session:
    """One incremental simulation: open, feed chunks, finalize.

    Create through :meth:`SimulationEngine.open_session`.  A session is
    single-consumer and not thread-safe; the serving layer serializes
    engine work explicitly.
    """

    def __init__(self, engine: "SimulationEngine", *,
                 app: str = "unknown", total_hint: Optional[int] = None,
                 instructions_per_access: int = 200) -> None:
        self.engine = engine
        self.scheme = engine.scheme
        self.config = engine.config
        self.app = app
        self.instructions_per_access = instructions_per_access
        ec = engine.engine_config

        # Run-switch resolution mirrors repro.perf/repro.vec begin_run:
        # config override wins, None defers to the environment default.
        cfg = self.config
        self._fast_on = (_memo.default_enabled() if cfg.use_fastpath is None
                         else bool(cfg.use_fastpath))
        self._vec_on = (_vec_flags.default_enabled()
                        if cfg.use_vectorized is None
                        else bool(cfg.use_vectorized))
        # Caches start cold per session, the property that makes cache
        # statistics a deterministic function of (trace, scheme, config)
        # for non-interleaved sessions — exactly run()'s begin_run reset.
        _memo.reset_all()

        obs_cfg = cfg.observability
        self._obs_run: Optional[RunObservation] = (
            RunObservation(obs_cfg)
            if obs_cfg is not None and obs_cfg.enabled else None)

        self._verify = cfg.verify_integrity
        self._write_rec = LatencyRecorder(ec.max_latency_samples)
        self._read_rec = LatencyRecorder(ec.max_latency_samples)
        self._core = CoreTimingModel(config=cfg.processor)
        self._window: Deque[float] = deque()
        self._shadow: Dict[int, bytes] = engine._shadow
        self._max_outstanding = ec.max_outstanding
        self._cycle_ns = self._core.config.cycle_ns
        self._write_stall_fraction = self._core.write_stall_fraction

        self._warmup_after = (int(total_hint * ec.warmup_fraction)
                              if total_hint else 0)
        self._dedup_at_warmup = self.scheme.counters.get("dedup_hits")

        self._processed = 0
        self._writes = 0
        self._reads = 0
        #: Running core-timing accumulators (fast/vectorized loops only);
        #: flushed to the core once, in finalize — see the module
        #: docstring's float-order note.
        self._stall_cycles = 0.0
        self._instructions = 0

        self._vec_stats: Optional[VecStats] = VecStats() if self._vec_on else None
        engine._vec_stats = self._vec_stats
        self._precomp = (EpochPrecomputer(self.scheme, self._vec_stats)
                         if self._vec_on else None)
        self._epoch_size = ec.vec_epoch_size
        self._pending: List[MemoryRequest] = []
        self._epoch_hist = None
        if self._obs_run is not None and self._vec_on:
            self._epoch_hist = self._obs_run.registry.histogram(
                "vec_epoch_size", _EPOCH_SIZE_BOUNDS)

        self._state = "open"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """``open``, ``finalized``, ``closed``, or ``failed``."""
        return self._state

    @property
    def processed(self) -> int:
        """Requests processed so far (excluding buffered epoch tail)."""
        return self._processed

    @property
    def pending(self) -> int:
        """Requests buffered toward the next epoch (vectorized mode)."""
        return len(self._pending)

    @property
    def consumed(self) -> int:
        """Source-stream records this session has taken (processed plus
        the buffered epoch tail) — the resume offset a checkpoint records."""
        return self._processed + len(self._pending)

    def _require_open(self, verb: str) -> None:
        if self._state != "open":
            raise SessionError(
                f"cannot {verb} a {self._state} session (app={self.app!r}, "
                f"scheme={self.scheme.name})")

    def _activate(self) -> None:
        """Install this session's global switches; save the previous."""
        self._saved = (_memo.ENABLED, _vec_flags.ENABLED, _obs_runtime.RUN)
        _memo.ENABLED = self._fast_on
        _vec_flags.ENABLED = self._vec_on
        _obs_runtime.RUN = self._obs_run

    def _deactivate(self) -> None:
        saved = self._saved
        # Drop the saved tuple so a checkpoint taken between feeds never
        # pickles another session's observation scope along with this one.
        del self._saved
        _memo.ENABLED, _vec_flags.ENABLED, _obs_runtime.RUN = saved

    def feed(self, requests: Iterable[MemoryRequest]) -> int:
        """Process a chunk of the request stream; returns its length.

        Raises:
            SessionError: when the session is not open.
            IntegrityError: on read-back verification failure (the
                session transitions to ``failed``).
        """
        self._require_open("feed")
        self._activate()
        try:
            if self._vec_on:
                return self._feed_vectorized(requests)
            if self._fast_on:
                return self._feed_fast(requests)
            return self._feed_reference(requests)
        except BaseException:
            self._state = "failed"
            raise
        finally:
            self._deactivate()

    def finalize(self) -> SimulationResult:
        """Flush buffered work and build the result; ends the session."""
        self._require_open("finalize")
        self._activate()
        try:
            if self._pending:
                # The short tail epoch iter_epochs would have produced.
                tail = self._pending
                self._pending = []
                self._process_epoch(tail)
            memo_stats: Dict[str, float] = (
                _memo.stats_snapshot() if self._fast_on else {})
        except BaseException:
            self._state = "failed"
            raise
        finally:
            self._deactivate()

        core = self._core
        if self._fast_on or self._vec_on:
            # One flush of the session-running accumulators — the same
            # single float addition the batched loops' finally performed.
            core.stall_cycles += self._stall_cycles
            core.instructions += self._instructions

        scheme = self.scheme
        extras = collect_extras(scheme)
        extras["fastpath_enabled"] = 1.0 if self._fast_on else 0.0
        extras["vectorized_enabled"] = 1.0 if self._vec_on else 0.0
        if self._fast_on:
            extras.update(memo_stats)
        if self._vec_stats is not None:
            extras.update(self._vec_stats.snapshot())

        obs_report = None
        if self._obs_run is not None:
            harvest_run(self._obs_run, scheme,
                        memo_stats if self._fast_on else {},
                        vec_stats=(self._vec_stats.snapshot()
                                   if self._vec_stats else {}))
            obs_report = build_report(self._obs_run)

        controller = scheme.controller
        self._state = "finalized"
        return SimulationResult(
            app=self.app,
            scheme=scheme.name,
            write_latency=self._write_rec,
            read_latency=self._read_rec,
            writes=self._writes,
            reads=self._reads,
            dedup_eliminated=(scheme.counters.get("dedup_hits")
                              - self._dedup_at_warmup),
            pcm_data_writes=controller.data_writes,
            pcm_metadata_writes=controller.metadata_writes,
            pcm_data_reads=controller.data_reads,
            pcm_metadata_reads=controller.metadata_reads,
            energy_nj=scheme.total_energy().breakdown(),
            breakdown=scheme.breakdown,
            read_breakdown=scheme.read_breakdown,
            ipc=core.ipc,
            metadata=scheme.metadata_footprint(),
            extras=extras,
            obs=obs_report,
        )

    def close(self) -> None:
        """Mark an open session closed without building a result.

        Idempotent; finalized/failed sessions are left in their terminal
        state.  No global scope is held between calls, so there is
        nothing else to release.
        """
        if self._state == "open":
            self._state = "closed"

    # ------------------------------------------------------------------
    # Checkpoint / restore (see repro.sim.checkpoint for the format and
    # the bit-exactness argument)
    # ------------------------------------------------------------------

    def checkpoint(self, destination: Optional[object] = None) -> object:
        """Snapshot this open session for a later bit-exact resume.

        With ``destination`` (a path) the checkpoint is written atomically
        and the byte count returned; with no argument the serialized
        checkpoint is returned as ``bytes``.  The session stays open and
        can keep feeding — checkpointing is a pure snapshot.  Resume with
        :meth:`restore`, then skip :attr:`consumed` records of the source
        stream before feeding the remainder.

        Raises:
            SessionError: when the session is not open.
        """
        from .checkpoint import checkpoint_bytes, write_checkpoint
        if destination is None:
            return checkpoint_bytes(self)
        return write_checkpoint(self, destination)  # type: ignore[arg-type]

    @classmethod
    def restore(cls, source: object) -> "Session":
        """Restore a session from a checkpoint (path, bytes, or file).

        Reinstalls the process-global memo-cache state the checkpoint
        captured and returns the live, open session; its
        :attr:`consumed` property is the number of source-stream records
        to skip before feeding.

        Raises:
            CheckpointError: on a corrupt or incompatible checkpoint.
        """
        from .checkpoint import load_checkpoint
        return load_checkpoint(source).session  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Chunk processors (the engine's former _loop_* bodies, resumable)
    # ------------------------------------------------------------------

    def _feed_fast(self, requests: Iterable[MemoryRequest]) -> int:
        """Kernel-fast chunk processor (the former ``_loop_fast`` body).

        Bound methods and constants are hoisted because every attribute
        lookup in the body is paid once per request; running accumulators
        are loaded from and stored back to the session so the arithmetic
        sequence across chunks matches the one-shot loop exactly.
        """
        scheme = self.scheme
        handle_write = scheme.handle_write
        handle_read = scheme.handle_read
        verify = self._verify
        warmup_after = self._warmup_after
        instructions_per_access = self.instructions_per_access
        write_lats: List[float] = []
        read_lats: List[float] = []
        write_lat_append = write_lats.append
        read_lat_append = read_lats.append
        window = self._window
        window_append = window.append
        window_popleft = window.popleft
        shadow = self._shadow
        max_outstanding = self._max_outstanding
        WRITE = AccessType.WRITE
        cycle_ns = self._cycle_ns
        write_stall_fraction = self._write_stall_fraction
        stall_cycles = self._stall_cycles
        instructions = self._instructions
        processed = self._processed
        obs = self._obs_run
        fed = 0
        try:
            for request in requests:
                if obs is not None:
                    obs.begin_request(processed)
                # Closed-loop throttling: delay the issue until a window
                # slot frees up.
                issue = request.issue_time_ns
                if len(window) >= max_outstanding:
                    oldest = window_popleft()
                    if oldest > issue:
                        issue = oldest
                if issue != request.issue_time_ns:
                    request = replace(request, issue_time_ns=issue)

                if request.access is WRITE:
                    result = handle_write(request)
                    latency = result.latency_ns
                    completion = result.completion_ns
                    if verify:
                        shadow[request.address] = request.data
                    if processed >= warmup_after:
                        write_lat_append(latency)
                    stall_cycles += ((latency / cycle_ns)
                                     * write_stall_fraction)
                    if obs is not None:
                        if processed >= warmup_after:
                            obs.write_latency_hist.observe(latency)
                        obs.record(completion, "engine", "write_done",
                                   address=request.address,
                                   latency_ns=latency)
                else:
                    rresult = handle_read(request)
                    latency = rresult.latency_ns
                    completion = rresult.completion_ns
                    if verify:
                        expected = shadow.get(request.address)
                        if expected is not None and rresult.data != expected:
                            raise IntegrityError(
                                f"read at {request.address:#x} returned "
                                f"stale or corrupt data under scheme "
                                f"{scheme.name}")
                    if processed >= warmup_after:
                        read_lat_append(latency)
                    stall_cycles += latency / cycle_ns
                    if obs is not None:
                        if processed >= warmup_after:
                            obs.read_latency_hist.observe(latency)
                        obs.record(completion, "engine", "read_done",
                                   address=request.address,
                                   latency_ns=latency)

                instructions += instructions_per_access
                window_append(completion)
                processed += 1
                fed += 1
                if processed == warmup_after:
                    self._dedup_at_warmup = scheme.counters.get("dedup_hits")
        finally:
            self._stall_cycles = stall_cycles
            self._instructions = instructions
            self._processed = processed
            self._writes += len(write_lats)
            self._reads += len(read_lats)
            self._write_rec.add_many(write_lats)
            self._read_rec.add_many(read_lats)
        return fed

    def _feed_reference(self, requests: Iterable[MemoryRequest]) -> int:
        """Reference chunk processor (the former ``_loop_reference``,
        kept verbatim apart from chunk-state carry)."""
        scheme = self.scheme
        verify = self._verify
        warmup_after = self._warmup_after
        core = self._core
        window = self._window
        write_rec = self._write_rec
        read_rec = self._read_rec
        obs = self._obs_run
        processed = self._processed
        fed = 0
        for request in requests:
            if obs is not None:
                obs.begin_request(processed)
            # Closed-loop throttling: delay the issue until a window slot
            # frees up.
            issue = request.issue_time_ns
            if len(window) >= self._max_outstanding:
                oldest = window.popleft()
                if oldest > issue:
                    issue = oldest
            if issue != request.issue_time_ns:
                request = replace(request, issue_time_ns=issue)

            if request.is_write:
                result = scheme.handle_write(request)
                latency = result.latency_ns
                completion = result.completion_ns
                if verify:
                    self._shadow[request.address] = request.data
                if processed >= warmup_after:
                    write_rec.add(latency)
                    self._writes += 1
                core.memory_stall(latency, is_write=True)
                if obs is not None:
                    if processed >= warmup_after:
                        obs.write_latency_hist.observe(latency)
                    obs.record(completion, "engine", "write_done",
                               address=request.address,
                               latency_ns=latency)
            else:
                rresult = scheme.handle_read(request)
                latency = rresult.latency_ns
                completion = rresult.completion_ns
                if verify:
                    expected = self._shadow.get(request.address)
                    if expected is not None and rresult.data != expected:
                        raise IntegrityError(
                            f"read at {request.address:#x} returned stale "
                            f"or corrupt data under scheme {scheme.name}")
                if processed >= warmup_after:
                    read_rec.add(latency)
                    self._reads += 1
                core.memory_stall(latency, is_write=False)
                if obs is not None:
                    if processed >= warmup_after:
                        obs.read_latency_hist.observe(latency)
                    obs.record(completion, "engine", "read_done",
                               address=request.address,
                               latency_ns=latency)

            core.retire_instructions(self.instructions_per_access)
            window.append(completion)
            processed += 1
            fed += 1
            self._processed = processed
            if processed == warmup_after:
                self._dedup_at_warmup = scheme.counters.get("dedup_hits")
        return fed

    def _feed_vectorized(self, requests: Iterable[MemoryRequest]) -> int:
        """Epoch-buffering front end of the vectorized chunk processor.

        Buffers incoming requests and processes only *full* epochs of
        ``vec_epoch_size``; the short tail is released by ``finalize``.
        The epoch boundaries are therefore exactly ``iter_epochs``'s for
        the concatenated stream, independent of feed chunk sizes.
        """
        pending = self._pending
        size = self._epoch_size
        iterator = iter(requests)
        fed = 0
        while True:
            chunk = list(islice(iterator, size - len(pending)))
            if not chunk:
                return fed
            fed += len(chunk)
            pending.extend(chunk)
            if len(pending) == size:
                epoch = pending
                self._pending = pending = []
                self._process_epoch(epoch)

    def _process_epoch(self, epoch: List[MemoryRequest]) -> None:
        """Resolve one epoch (the former ``_loop_vectorized`` epoch body)."""
        scheme = self.scheme
        self._precomp.precompute(epoch)
        if self._epoch_hist is not None:
            self._epoch_hist.observe(float(len(epoch)))
        handle_write = scheme.handle_write
        handle_read = scheme.handle_read
        verify = self._verify
        warmup_after = self._warmup_after
        instructions_per_access = self.instructions_per_access
        write_lats: List[float] = []
        read_lats: List[float] = []
        write_lat_append = write_lats.append
        read_lat_append = read_lats.append
        window = self._window
        window_append = window.append
        window_popleft = window.popleft
        shadow = self._shadow
        max_outstanding = self._max_outstanding
        WRITE = AccessType.WRITE
        cycle_ns = self._cycle_ns
        write_stall_fraction = self._write_stall_fraction
        stall_cycles = self._stall_cycles
        instructions = self._instructions
        processed = self._processed
        obs = self._obs_run
        try:
            for request in epoch:
                if obs is not None:
                    obs.begin_request(processed)
                # Closed-loop throttling: delay the issue until a window
                # slot frees up.
                issue = request.issue_time_ns
                if len(window) >= max_outstanding:
                    oldest = window_popleft()
                    if oldest > issue:
                        issue = oldest
                if issue != request.issue_time_ns:
                    request = replace(request, issue_time_ns=issue)

                if request.access is WRITE:
                    result = handle_write(request)
                    latency = result.latency_ns
                    completion = result.completion_ns
                    if verify:
                        shadow[request.address] = request.data
                    if processed >= warmup_after:
                        write_lat_append(latency)
                    stall_cycles += ((latency / cycle_ns)
                                     * write_stall_fraction)
                    if obs is not None:
                        if processed >= warmup_after:
                            obs.write_latency_hist.observe(latency)
                        obs.record(completion, "engine", "write_done",
                                   address=request.address,
                                   latency_ns=latency)
                else:
                    rresult = handle_read(request)
                    latency = rresult.latency_ns
                    completion = rresult.completion_ns
                    if verify:
                        expected = shadow.get(request.address)
                        if expected is not None and rresult.data != expected:
                            raise IntegrityError(
                                f"read at {request.address:#x} returned "
                                f"stale or corrupt data under scheme "
                                f"{scheme.name}")
                    if processed >= warmup_after:
                        read_lat_append(latency)
                    stall_cycles += latency / cycle_ns
                    if obs is not None:
                        if processed >= warmup_after:
                            obs.read_latency_hist.observe(latency)
                        obs.record(completion, "engine", "read_done",
                                   address=request.address,
                                   latency_ns=latency)

                instructions += instructions_per_access
                window_append(completion)
                processed += 1
                if processed == warmup_after:
                    self._dedup_at_warmup = scheme.counters.get("dedup_hits")
        finally:
            # Per-epoch flush — identical per-sample arithmetic to one
            # end-of-run add_many (the recorder state round-trips through
            # the instance between batches); also runs on an exception
            # mid-epoch so the partial batch is never lost.
            self._stall_cycles = stall_cycles
            self._instructions = instructions
            self._processed = processed
            self._writes += len(write_lats)
            self._reads += len(read_lats)
            self._write_rec.add_many(write_lats)
            self._read_rec.add_many(read_lats)
