"""Multi-application, multi-scheme experiment runner.

The paper's evaluation grid is (20 applications) x (4 schemes); this module
runs any sub-grid, replaying the *same* trace for every scheme of an
application so comparisons are paired.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..common.config import SystemConfig, default_config
from ..common.types import MemoryRequest
from ..crypto.costs import CryptoCosts, DEFAULT_COSTS
from ..dedup import make_scheme
from ..registry import registered_scheme_names, scheme_names
from ..workloads.generator import TraceGenerator
from ..workloads.profiles import app_names, get_profile
from .engine import EngineConfig, SimulationEngine
from .metrics import SUMMARY_METRICS, SimulationResult


def scaled_system_config() -> SystemConfig:
    """Table I scaled to simulation-length traces.

    The paper warms its NVMM with ~1e9 requests, so its 512 KB metadata
    caches are small relative to the workload's unique-content population.
    Our traces are ~4e4 requests; to keep the cache-capacity-to-footprint
    ratio representative (and therefore the *selective* in selective
    deduplication meaningful), grid experiments scale the EFIT/fingerprint
    cache to 16 KB and the AMT cache to 64 KB.  Absolute-size experiments
    (Table I, Figure 18's sweep) still use the unscaled configuration.
    """
    from ..common.units import kib
    return SystemConfig().with_metadata_cache(efit_bytes=kib(16),
                                              amt_bytes=kib(64))


@dataclass
class ExperimentConfig:
    """One experiment grid: which apps, schemes, and how much traffic."""

    apps: Sequence[str] = field(default_factory=app_names)
    schemes: Sequence[str] = field(default_factory=lambda: list(scheme_names()))
    requests_per_app: int = 40_000
    system: SystemConfig = field(default_factory=scaled_system_config)
    engine: EngineConfig = field(default_factory=EngineConfig)
    costs: CryptoCosts = DEFAULT_COSTS
    seed: int = 2023

    def __post_init__(self) -> None:
        if self.requests_per_app <= 0:
            raise ValueError("requests_per_app must be positive")
        registered = registered_scheme_names()
        unknown = [s for s in self.schemes if s not in registered]
        if unknown:
            raise ValueError(
                f"unknown schemes {unknown}; registered schemes: "
                f"{', '.join(registered)}")


#: Result grid keyed by (application, scheme).
ResultGrid = Dict[Tuple[str, str], SimulationResult]


def run_app(app: str, schemes: Sequence[str], *,
            requests: int = 40_000,
            system: Optional[SystemConfig] = None,
            engine: Optional[EngineConfig] = None,
            costs: CryptoCosts = DEFAULT_COSTS,
            seed: int = 2023,
            trace: Optional[List[MemoryRequest]] = None) -> Dict[str, SimulationResult]:
    """Run one application against several schemes on a shared trace.

    Configuration default: ``system=None`` means the paper's **unscaled**
    Table I configuration (:func:`repro.common.config.default_config`,
    512 KB metadata caches).  This deliberately differs from
    :func:`run_grid`, whose :class:`ExperimentConfig` defaults to
    :func:`scaled_system_config` (caches scaled to simulation-length
    traces).  To reproduce a grid cell with a direct call — or to agree
    with ``repro.sweep`` jobs built from an ``ExperimentConfig`` — pass
    ``system=scaled_system_config()`` explicitly.
    """
    system = system or default_config()
    profile = get_profile(app)
    if trace is None:
        trace = TraceGenerator(profile, seed=seed).generate_list(requests)
    results: Dict[str, SimulationResult] = {}
    for scheme_name in schemes:
        scheme = make_scheme(scheme_name, system, costs)
        sim = SimulationEngine(scheme, engine)
        results[scheme_name] = sim.run(
            iter(trace), app=app, total_hint=len(trace),
            instructions_per_access=profile.instructions_per_access)
    return results


def run_grid(config: Optional[ExperimentConfig] = None, *,
             parallel: bool = False,
             jobs: Optional[int] = None,
             store=None,
             progress: bool = False,
             backend=None,
             storage: Optional[str] = None) -> ResultGrid:
    """Run the full (apps x schemes) grid of an experiment config.

    Configuration default: the grid's ``ExperimentConfig`` defaults to
    :func:`scaled_system_config` (Table I with metadata caches scaled to
    simulation-length traces); see :func:`run_app` for the contrast with
    direct single-app calls.

    Orchestration: with ``parallel=True`` (or whenever ``jobs`` / ``store``
    is given) the grid is delegated to :func:`repro.sweep.run_sweep`, which
    fans cells out over a process pool and serves repeat cells from the
    content-addressed result store.  Results are byte-identical to the
    serial path.

    Args:
        parallel: route through the sweep scheduler.
        jobs: worker processes (implies ``parallel``); default cpu count.
        store: result-store path/URL or ``ResultStore`` (implies
            ``parallel``); ``None`` runs without persistence.
        progress: emit live progress lines (parallel path only).
        backend: sweep execution backend name or instance (``"pool"`` /
            ``"queue"``; implies ``parallel``).
        storage: storage backend name forced for a string ``store`` spec.
    """
    config = config or ExperimentConfig()
    if parallel or jobs is not None or store is not None \
            or backend is not None:
        from ..sweep import run_sweep  # local import: sweep imports runner
        return run_sweep(config, jobs=jobs, store=store, progress=progress,
                         backend=backend, storage=storage)
    grid: ResultGrid = {}
    for app in config.apps:
        per_app = run_app(app, config.schemes,
                          requests=config.requests_per_app,
                          system=config.system, engine=config.engine,
                          costs=config.costs, seed=config.seed)
        for scheme_name, result in per_app.items():
            grid[(app, scheme_name)] = result
    return grid


def grid_metric(grid: ResultGrid, metric: str) -> Dict[str, Dict[str, float]]:
    """Pivot a grid into {app: {scheme: value}} for one summary metric.

    Raises:
        KeyError: when ``metric`` is not one of
            :data:`~repro.sim.metrics.SUMMARY_METRICS` — raised up front,
            before touching any result.
    """
    if metric not in SUMMARY_METRICS:
        raise KeyError(f"unknown metric {metric!r}; "
                       f"known metrics: {', '.join(SUMMARY_METRICS)}")
    out: Dict[str, Dict[str, float]] = {}
    for (app, scheme_name), result in grid.items():
        out.setdefault(app, {})[scheme_name] = result.summary_row()[metric]
    return out


def iter_apps(grid: ResultGrid) -> Iterable[str]:
    """Application names present in a grid, in first-seen order."""
    seen = []
    for app, _scheme in grid:
        if app not in seen:
            seen.append(app)
    return seen
