"""Simulation layer: engine, full-system wiring, runner, and metrics."""

from .engine import EngineConfig, SimulationEngine
from .export import csv_string, grid_to_dict, read_json, result_to_dict, write_csv, write_json
from .metrics import SimulationResult, collect_extras, speedup
from .runner import (
    ExperimentConfig,
    ResultGrid,
    grid_metric,
    iter_apps,
    run_app,
    run_grid,
    scaled_system_config,
)
from .system import FullSystem, FullSystemStats

__all__ = [
    "EngineConfig",
    "ExperimentConfig",
    "FullSystem",
    "FullSystemStats",
    "ResultGrid",
    "SimulationEngine",
    "SimulationResult",
    "collect_extras",
    "csv_string",
    "grid_to_dict",
    "grid_metric",
    "iter_apps",
    "run_app",
    "read_json",
    "result_to_dict",
    "run_grid",
    "scaled_system_config",
    "speedup",
    "write_csv",
    "write_json",
]
