"""Simulation layer: engine, full-system wiring, runner, and metrics."""

from .checkpoint import (
    RestoredCheckpoint,
    checkpoint_bytes,
    checkpoint_stats,
    load_checkpoint,
    reset_checkpoint_stats,
    write_checkpoint,
)
from .engine import EngineConfig, SimulationEngine
from .export import (
    csv_string,
    grid_to_dict,
    read_json,
    result_state_bytes,
    result_to_dict,
    write_csv,
    write_json,
)
from .session import Session
from .metrics import SimulationResult, collect_extras, speedup
from .runner import (
    ExperimentConfig,
    ResultGrid,
    grid_metric,
    iter_apps,
    run_app,
    run_grid,
    scaled_system_config,
)
from .system import FullSystem, FullSystemStats

__all__ = [
    "EngineConfig",
    "ExperimentConfig",
    "FullSystem",
    "FullSystemStats",
    "RestoredCheckpoint",
    "ResultGrid",
    "Session",
    "SimulationEngine",
    "SimulationResult",
    "checkpoint_bytes",
    "checkpoint_stats",
    "collect_extras",
    "csv_string",
    "grid_to_dict",
    "grid_metric",
    "iter_apps",
    "load_checkpoint",
    "reset_checkpoint_stats",
    "result_state_bytes",
    "result_to_dict",
    "run_app",
    "read_json",
    "run_grid",
    "scaled_system_config",
    "speedup",
    "write_checkpoint",
    "write_csv",
    "write_json",
]
