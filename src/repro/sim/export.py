"""Result serialization: JSON and CSV export of simulation results.

Experiments that feed papers or dashboards need results that outlive the
Python session.  These helpers flatten
:class:`~repro.sim.metrics.SimulationResult` objects and whole result
grids into JSON documents and CSV tables, including the latency
percentiles and energy breakdowns the figures consume.
"""

from __future__ import annotations

import csv
import io
import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..common.stats import LatencyRecorder
from ..common.types import LatencyBreakdown, WritePathStage
from ..dedup.base import MetadataFootprint
from .metrics import SimulationResult
from .runner import ResultGrid


def _tail(recorder: LatencyRecorder, p: float) -> Optional[float]:
    """A percentile for export: ``None`` (JSON null) when no samples.

    ``LatencyRecorder.percentile`` returns NaN for an empty recorder;
    NaN is not valid strict JSON and silently compares unequal, so the
    export boundary maps it to ``None``.
    """
    value = recorder.percentile(p)
    return None if math.isnan(value) else value


def result_to_dict(result: SimulationResult) -> Dict:
    """Flatten one result into a JSON-serializable dict."""
    out: Dict = {
        "app": result.app,
        "scheme": result.scheme,
        "writes": result.writes,
        "reads": result.reads,
        "dedup_eliminated": result.dedup_eliminated,
        "write_reduction": result.write_reduction,
        "pcm": {
            "data_writes": result.pcm_data_writes,
            "data_reads": result.pcm_data_reads,
            "metadata_writes": result.pcm_metadata_writes,
            "metadata_reads": result.pcm_metadata_reads,
        },
        "latency_ns": {
            "write_mean": result.mean_write_latency_ns,
            "write_p50": _tail(result.write_latency, 50),
            "write_p90": _tail(result.write_latency, 90),
            "write_p99": _tail(result.write_latency, 99),
            "write_p999": _tail(result.write_latency, 99.9),
            "write_max": (result.write_latency.max_ns
                          if result.write_latency.count else None),
            "read_mean": result.mean_read_latency_ns,
            "read_p99": _tail(result.read_latency, 99),
        },
        "energy_nj": dict(result.energy_nj),
        "energy_total_nj": result.total_energy_nj,
        "ipc": result.ipc,
        "extras": dict(result.extras),
    }
    if result.metadata is not None:
        out["metadata_bytes"] = {
            "onchip": result.metadata.onchip_bytes,
            "nvmm": result.metadata.nvmm_bytes,
        }
    if result.breakdown is not None:
        out["write_path_profile"] = {
            str(stage): share
            for stage, share in result.breakdown.as_fractions().items()}
    if result.read_breakdown is not None:
        out["read_path_profile"] = {
            str(stage): share
            for stage, share in result.read_breakdown.as_fractions().items()}
    return out


def grid_to_dict(grid: ResultGrid) -> Dict:
    """Flatten a whole (app, scheme) grid."""
    return {
        "results": [result_to_dict(result) for result in grid.values()],
    }


def write_json(grid_or_result: Union[ResultGrid, SimulationResult],
               path: Union[str, Path], *, indent: int = 2) -> None:
    """Serialize a result or grid to a JSON file."""
    if isinstance(grid_or_result, SimulationResult):
        payload = result_to_dict(grid_or_result)
    else:
        payload = grid_to_dict(grid_or_result)
    Path(path).write_text(json.dumps(payload, indent=indent, sort_keys=True)
                          + "\n")


#: Flat CSV columns, stable order.
CSV_COLUMNS: List[str] = [
    "app", "scheme", "writes", "reads", "write_reduction",
    "pcm_data_writes", "pcm_metadata_writes",
    "write_mean_ns", "write_p99_ns", "read_mean_ns",
    "energy_total_nj", "ipc",
]


def _csv_row(result: SimulationResult) -> List:
    p99 = _tail(result.write_latency, 99)
    return [
        result.app, result.scheme, result.writes, result.reads,
        f"{result.write_reduction:.6f}",
        result.pcm_data_writes, result.pcm_metadata_writes,
        f"{result.mean_write_latency_ns:.3f}",
        "" if p99 is None else f"{p99:.3f}",
        f"{result.mean_read_latency_ns:.3f}",
        f"{result.total_energy_nj:.3f}",
        f"{result.ipc:.6f}",
    ]


def write_csv(grid: ResultGrid, path: Union[str, Path]) -> int:
    """Write a grid as CSV; returns the number of data rows."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(CSV_COLUMNS)
        count = 0
        for result in grid.values():
            writer.writerow(_csv_row(result))
            count += 1
    return count


def csv_string(grid: ResultGrid) -> str:
    """The grid's CSV as a string (for tests and quick inspection)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(CSV_COLUMNS)
    for result in grid.values():
        writer.writerow(_csv_row(result))
    return buf.getvalue()


def read_json(path: Union[str, Path]) -> Dict:
    """Load a previously exported JSON document."""
    return json.loads(Path(path).read_text())


# ---------------------------------------------------------------------------
# Full-fidelity state serialization (repro.sweep result store)
# ---------------------------------------------------------------------------
#
# ``result_to_dict`` above is a *reporting* view: it flattens derived
# statistics and drops the raw samples.  The sweep result store instead needs
# a lossless round trip — a cached cell must be indistinguishable from a
# freshly simulated one, down to latency percentiles and CDF series — so
# these helpers persist the complete internal state of a result.

#: Version tag of the full-state layout; bump on incompatible changes so
#: stale store entries read as cache misses instead of garbage.
#: v2: added the read-path breakdown.
STATE_VERSION = 2


def result_to_state(result: SimulationResult) -> Dict:
    """Lossless JSON-serializable snapshot of one result."""
    return {
        "version": STATE_VERSION,
        "app": result.app,
        "scheme": result.scheme,
        "write_latency": result.write_latency.state_dict(),
        "read_latency": result.read_latency.state_dict(),
        "writes": result.writes,
        "reads": result.reads,
        "dedup_eliminated": result.dedup_eliminated,
        "pcm_data_writes": result.pcm_data_writes,
        "pcm_metadata_writes": result.pcm_metadata_writes,
        "pcm_data_reads": result.pcm_data_reads,
        "pcm_metadata_reads": result.pcm_metadata_reads,
        "energy_nj": dict(result.energy_nj),
        "breakdown": (None if result.breakdown is None else
                      {str(stage): ns
                       for stage, ns in result.breakdown.by_stage.items()}),
        "read_breakdown": (None if result.read_breakdown is None else
                           {str(stage): ns
                            for stage, ns
                            in result.read_breakdown.by_stage.items()}),
        "ipc": result.ipc,
        "metadata": (None if result.metadata is None else
                     {"onchip_bytes": result.metadata.onchip_bytes,
                      "nvmm_bytes": result.metadata.nvmm_bytes}),
        "extras": dict(result.extras),
    }


def result_state_bytes(result: SimulationResult) -> bytes:
    """Canonical bytes of a result's lossless state.

    Sorted-key JSON of :func:`result_to_state` — the comparison currency
    of every bit-exactness gate (sweep cache identity, serve parity, and
    the checkpoint-resume gate): two results are *the same run* iff these
    bytes are equal.
    """
    return (json.dumps(result_to_state(result), sort_keys=True) + "\n"
            ).encode("utf-8")


def result_from_state(state: Dict) -> SimulationResult:
    """Rebuild a result from :func:`result_to_state` output.

    Raises:
        ValueError: when the state's version tag is unknown (callers such
            as the sweep store treat this as a cache miss).
    """
    version = state.get("version")
    if version != STATE_VERSION:
        raise ValueError(f"unsupported result-state version {version!r}")
    breakdown = None
    if state["breakdown"] is not None:
        breakdown = LatencyBreakdown(by_stage={
            WritePathStage(name): ns
            for name, ns in state["breakdown"].items()})
    read_breakdown = None
    if state.get("read_breakdown") is not None:
        read_breakdown = LatencyBreakdown(by_stage={
            WritePathStage(name): ns
            for name, ns in state["read_breakdown"].items()})
    metadata = None
    if state["metadata"] is not None:
        metadata = MetadataFootprint(
            onchip_bytes=state["metadata"]["onchip_bytes"],
            nvmm_bytes=state["metadata"]["nvmm_bytes"])
    return SimulationResult(
        app=state["app"],
        scheme=state["scheme"],
        write_latency=LatencyRecorder.from_state(state["write_latency"]),
        read_latency=LatencyRecorder.from_state(state["read_latency"]),
        writes=state["writes"],
        reads=state["reads"],
        dedup_eliminated=state["dedup_eliminated"],
        pcm_data_writes=state["pcm_data_writes"],
        pcm_metadata_writes=state["pcm_metadata_writes"],
        pcm_data_reads=state["pcm_data_reads"],
        pcm_metadata_reads=state["pcm_metadata_reads"],
        energy_nj=dict(state["energy_nj"]),
        breakdown=breakdown,
        read_breakdown=read_breakdown,
        ipc=state["ipc"],
        metadata=metadata,
        extras=dict(state["extras"]),
    )
