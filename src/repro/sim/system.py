"""End-to-end system: CPU accesses -> cache hierarchy -> scheme -> NVMM.

The grid experiments (:mod:`repro.sim.runner`) drive schemes with post-LLC
traffic directly, because that is the granularity the paper's statistics
are defined at.  This module provides the *full-stack* alternative: CPU
load/store streams filtered through the three-level hierarchy, with the
LLC's miss fills and dirty write-backs forwarded to the dedup scheme.  It
demonstrates the complete pipeline of Figure 6 and feeds the IPC model
with true per-level hit latencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..cache.cpu import CoreTimingModel
from ..cache.hierarchy import CacheHierarchy, CPUAccess
from ..common.config import SystemConfig
from ..common.stats import LatencyRecorder
from ..dedup.base import DedupScheme
from .metrics import SimulationResult, collect_extras


@dataclass
class FullSystemStats:
    """Cache-level summary of one full-stack run."""

    l1_hit_rate: float
    l2_hit_rate: float
    l3_hit_rate: float
    fills_from_memory: int
    writebacks_to_memory: int


class FullSystem:
    """A complete simulated machine around one dedup scheme."""

    def __init__(self, scheme: DedupScheme,
                 config: Optional[SystemConfig] = None) -> None:
        self.scheme = scheme
        self.config = config or scheme.config
        self.hierarchy = CacheHierarchy(self.config.processor)
        self.core = CoreTimingModel(config=self.config.processor)
        self.write_latency = LatencyRecorder()
        self.read_latency = LatencyRecorder()
        self._clock_ns = 0.0

    def run(self, accesses: Iterable[CPUAccess], *,
            app: str = "unknown",
            instructions_per_access: int = 200,
            mean_gap_ns: float = 2.0) -> SimulationResult:
        """Drive CPU accesses through the full stack.

        Args:
            accesses: CPU-side load/store stream.
            app: label for the result.
            instructions_per_access: instruction gap per CPU access.
            mean_gap_ns: simulated time between CPU accesses (cache hits
                advance the clock by cache latency; this adds issue spacing).
        """
        self.feed(accesses, instructions_per_access=instructions_per_access,
                  mean_gap_ns=mean_gap_ns)
        return self.finalize(app)

    def feed(self, accesses: Iterable[CPUAccess], *,
             instructions_per_access: int = 200,
             mean_gap_ns: float = 2.0) -> int:
        """Process a chunk of CPU accesses incrementally; returns count.

        The full-stack counterpart of the engine session API
        (:meth:`repro.sim.engine.SimulationEngine.open_session`): all
        per-access state (clock, hierarchy, core, recorders) lives on
        the instance, so a stream may be fed in any number of chunks —
        chunking is invisible in :meth:`finalize`'s result.
        """
        cycle_ns = self.config.processor.cycle_ns
        fed = 0
        for access in accesses:
            fed += 1
            self._clock_ns += mean_gap_ns
            event = self.hierarchy.access(access)
            cache_ns = event.latency_cycles * cycle_ns
            self.core.retire_instructions(instructions_per_access)

            if event.fill is not None:
                fill = event.fill
                fill.issue_time_ns = self._clock_ns + cache_ns
                result = self.scheme.handle_read(fill)
                self.read_latency.add(result.latency_ns)
                self.core.memory_stall(cache_ns + result.latency_ns,
                                       is_write=False)
                self._clock_ns = max(self._clock_ns, result.completion_ns
                                     - mean_gap_ns)
                # Install the fetched content so future evictions carry it.
                self.hierarchy.l3.fill(fill.address, result.data)
            else:
                self.core.memory_stall(cache_ns, is_write=access.write)

            for wb in event.writebacks:
                wb.issue_time_ns = self._clock_ns + cache_ns
                wresult = self.scheme.handle_write(wb)
                self.write_latency.add(wresult.latency_ns)
                self.core.memory_stall(wresult.latency_ns, is_write=True)
        return fed

    def finalize(self, app: str = "unknown") -> SimulationResult:
        """Build the result from everything fed so far."""
        return self._result(app)

    def drain(self) -> int:
        """Flush all dirty cache lines to the scheme; returns count."""
        drained = self.hierarchy.drain()
        for wb in drained:
            wb.issue_time_ns = self._clock_ns
            result = self.scheme.handle_write(wb)
            self.write_latency.add(result.latency_ns)
        return len(drained)

    def cache_stats(self) -> FullSystemStats:
        l1, l2, l3 = self.hierarchy.stats.hit_rates()
        return FullSystemStats(
            l1_hit_rate=l1, l2_hit_rate=l2, l3_hit_rate=l3,
            fills_from_memory=self.hierarchy.stats.fills_from_memory,
            writebacks_to_memory=self.hierarchy.stats.writebacks_to_memory)

    def _result(self, app: str) -> SimulationResult:
        controller = self.scheme.controller
        return SimulationResult(
            app=app,
            scheme=self.scheme.name,
            write_latency=self.write_latency,
            read_latency=self.read_latency,
            writes=self.write_latency.count,
            reads=self.read_latency.count,
            dedup_eliminated=self.scheme.counters.get("dedup_hits"),
            pcm_data_writes=controller.data_writes,
            pcm_metadata_writes=controller.metadata_writes,
            pcm_data_reads=controller.data_reads,
            pcm_metadata_reads=controller.metadata_reads,
            energy_nj=self.scheme.total_energy().breakdown(),
            breakdown=self.scheme.breakdown,
            ipc=self.core.ipc,
            metadata=self.scheme.metadata_footprint(),
            extras=collect_extras(self.scheme),
        )
