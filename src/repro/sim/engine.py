"""Trace-driven simulation engine.

Feeds a request stream through a scheme while modeling the two coupling
effects a naive open-loop replay misses:

* **Closed-loop throttling.**  Real cores track a finite number of
  outstanding memory requests (MSHRs, store buffers); when the memory
  system backs up, the core stalls and the arrival stream slows down.  The
  engine enforces a sliding window of ``max_outstanding`` requests: request
  *i* cannot issue before request ``i - max_outstanding`` completed.
  Without this, any scheme whose service demand transiently exceeds bank
  bandwidth shows unbounded queue growth that no real system exhibits.
* **Warm-up.**  The paper warms the NVMM system up before measuring; the
  engine skips the first ``warmup_fraction`` of requests when recording
  latency statistics (all functional state still updates).

The engine also maintains the shadow copy used for continuous integrity
verification (reads must return the bytes most recently written to that
logical address — the invariant deduplication must never break) and drives
the :class:`~repro.cache.cpu.CoreTimingModel` for IPC.

The request loops themselves live in :mod:`repro.sim.session`:
:meth:`SimulationEngine.run` is the one-shot convenience built on the
incremental :class:`~repro.sim.session.Session` API
(``open_session`` / ``feed`` / ``finalize``), which the serving layer
(:mod:`repro.serve`) uses to interleave many trace sources on shared
workers.  The two are bit-identical by construction and by test
(``tests/test_serve_session_parity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from ..common.config import SystemConfig
from ..common.types import MemoryRequest
from ..dedup.base import DedupScheme
from ..vec.epoch import DEFAULT_EPOCH_SIZE, VecStats
from .metrics import SimulationResult
from .session import Session


@dataclass(frozen=True)
class EngineConfig:
    """Engine-level knobs (orthogonal to the system configuration)."""

    #: Maximum in-flight requests before arrivals are throttled.
    max_outstanding: int = 64
    #: Leading fraction of the trace excluded from recorded statistics.
    warmup_fraction: float = 0.1
    #: Cap on retained raw latency samples (reservoir beyond this).
    max_latency_samples: int = 200_000
    #: Requests per epoch of the vectorized loop (:mod:`repro.vec`).  Only
    #: consulted when that loop is selected; has no effect on results —
    #: epoch boundaries change batching, never simulated arithmetic.
    vec_epoch_size: int = DEFAULT_EPOCH_SIZE

    def __post_init__(self) -> None:
        if self.max_outstanding <= 0:
            raise ValueError("max_outstanding must be positive")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        if self.max_latency_samples <= 0:
            raise ValueError("max_latency_samples must be positive")
        if self.vec_epoch_size <= 0:
            raise ValueError("vec_epoch_size must be positive")


class SimulationEngine:
    """Drives one scheme with one request stream and collects metrics."""

    def __init__(self, scheme: DedupScheme,
                 engine_config: Optional[EngineConfig] = None) -> None:
        self.scheme = scheme
        self.config: SystemConfig = scheme.config
        self.engine_config = engine_config or EngineConfig()
        self._shadow: Dict[int, bytes] = {}
        #: Per-run epoch accounting, set at session open when the
        #: vectorized loop is selected (None otherwise).
        self._vec_stats: Optional[VecStats] = None

    def open_session(self, *, app: str = "unknown",
                     total_hint: Optional[int] = None,
                     instructions_per_access: int = 200) -> Session:
        """Open an incremental simulation session on this engine.

        The session owns the run's recorders, core-timing model, and
        fast-path/vectorized/observability scope; feed it request chunks
        of any size and :meth:`~repro.sim.session.Session.finalize` it to
        obtain the same :class:`SimulationResult` :meth:`run` returns.
        Sessions on one engine share the integrity-shadow map and the
        scheme's functional state, so run them strictly one at a time
        per engine.

        Args:
            app: application label for the result.
            total_hint: expected stream length, used to place the warm-up
                boundary without materializing the stream.
            instructions_per_access: non-memory instructions retired per
                request, for the IPC model.
        """
        return Session(self, app=app, total_hint=total_hint,
                       instructions_per_access=instructions_per_access)

    @staticmethod
    def restore_session(source: object) -> Session:
        """Restore a checkpointed session (path, bytes, or binary file).

        The restored session carries its own pickled engine copy (scheme,
        shadow map, config) — the engine this method is called on, if
        any, is not involved.  See :mod:`repro.sim.checkpoint` for the
        format and the bit-exactness contract; skip
        :attr:`~repro.sim.session.Session.consumed` records of the source
        stream before feeding the remainder.
        """
        return Session.restore(source)

    def run(self, requests: Iterable[MemoryRequest], *,
            app: str = "unknown", total_hint: Optional[int] = None,
            instructions_per_access: int = 200) -> SimulationResult:
        """Process the stream; returns the collected result.

        One-shot wrapper over the session API: opens a session, feeds the
        whole stream as a single chunk, finalizes.

        Args:
            requests: the request stream (consumed once).
            app: application label for the result.
            total_hint: expected stream length, used to place the warm-up
                boundary without materializing the stream.
            instructions_per_access: non-memory instructions retired per
                request, for the IPC model.

        Raises:
            IntegrityError: when ``SystemConfig.verify_integrity`` is on and
                a read returns bytes differing from the last write to that
                address.
        """
        session = self.open_session(
            app=app, total_hint=total_hint,
            instructions_per_access=instructions_per_access)
        session.feed(requests)
        return session.finalize()
