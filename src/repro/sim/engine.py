"""Trace-driven simulation engine.

Feeds a request stream through a scheme while modeling the two coupling
effects a naive open-loop replay misses:

* **Closed-loop throttling.**  Real cores track a finite number of
  outstanding memory requests (MSHRs, store buffers); when the memory
  system backs up, the core stalls and the arrival stream slows down.  The
  engine enforces a sliding window of ``max_outstanding`` requests: request
  *i* cannot issue before request ``i - max_outstanding`` completed.
  Without this, any scheme whose service demand transiently exceeds bank
  bandwidth shows unbounded queue growth that no real system exhibits.
* **Warm-up.**  The paper warms the NVMM system up before measuring; the
  engine skips the first ``warmup_fraction`` of requests when recording
  latency statistics (all functional state still updates).

The engine also maintains the shadow copy used for continuous integrity
verification (reads must return the bytes most recently written to that
logical address — the invariant deduplication must never break) and drives
the :class:`~repro.cache.cpu.CoreTimingModel` for IPC.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Optional

from ..cache.cpu import CoreTimingModel
from ..common.config import SystemConfig
from ..common.errors import IntegrityError
from ..common.stats import LatencyRecorder
from ..common.types import AccessType, MemoryRequest
from ..dedup.base import DedupScheme
from ..obs import runtime as _obs_runtime
from ..obs.export import build_report
from ..obs.harvest import harvest_run
from ..perf import begin_run as _fastpath_begin
from ..perf import end_run as _fastpath_end
from ..vec import begin_run as _vec_begin
from ..vec import end_run as _vec_end
from ..vec.epoch import DEFAULT_EPOCH_SIZE, EpochPrecomputer, VecStats, iter_epochs
from .metrics import SimulationResult, collect_extras

#: Power-of-two bucket bounds for the vec engine's epoch-size histogram
#: (epochs are ``vec_epoch_size`` except a possibly-short tail).
_EPOCH_SIZE_BOUNDS = tuple(float(1 << i) for i in range(21))


@dataclass(frozen=True)
class EngineConfig:
    """Engine-level knobs (orthogonal to the system configuration)."""

    #: Maximum in-flight requests before arrivals are throttled.
    max_outstanding: int = 64
    #: Leading fraction of the trace excluded from recorded statistics.
    warmup_fraction: float = 0.1
    #: Cap on retained raw latency samples (reservoir beyond this).
    max_latency_samples: int = 200_000
    #: Requests per epoch of the vectorized loop (:mod:`repro.vec`).  Only
    #: consulted when that loop is selected; has no effect on results —
    #: epoch boundaries change batching, never simulated arithmetic.
    vec_epoch_size: int = DEFAULT_EPOCH_SIZE

    def __post_init__(self) -> None:
        if self.max_outstanding <= 0:
            raise ValueError("max_outstanding must be positive")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        if self.max_latency_samples <= 0:
            raise ValueError("max_latency_samples must be positive")
        if self.vec_epoch_size <= 0:
            raise ValueError("vec_epoch_size must be positive")


class SimulationEngine:
    """Drives one scheme with one request stream and collects metrics."""

    def __init__(self, scheme: DedupScheme,
                 engine_config: Optional[EngineConfig] = None) -> None:
        self.scheme = scheme
        self.config: SystemConfig = scheme.config
        self.engine_config = engine_config or EngineConfig()
        self._shadow: Dict[int, bytes] = {}
        #: Per-run epoch accounting, set by :meth:`run` when the vectorized
        #: loop is selected (None otherwise).
        self._vec_stats: Optional[VecStats] = None

    def run(self, requests: Iterable[MemoryRequest], *,
            app: str = "unknown", total_hint: Optional[int] = None,
            instructions_per_access: int = 200) -> SimulationResult:
        """Process the stream; returns the collected result.

        Args:
            requests: the request stream (consumed once).
            app: application label for the result.
            total_hint: expected stream length, used to place the warm-up
                boundary without materializing the stream.
            instructions_per_access: non-memory instructions retired per
                request, for the IPC model.

        Raises:
            IntegrityError: when ``SystemConfig.verify_integrity`` is on and
                a read returns bytes differing from the last write to that
                address.
        """
        ec = self.engine_config
        scheme = self.scheme
        verify = self.config.verify_integrity
        write_rec = LatencyRecorder(ec.max_latency_samples)
        read_rec = LatencyRecorder(ec.max_latency_samples)
        core = CoreTimingModel(config=self.config.processor)
        window: deque = deque()

        warmup_after = 0
        if total_hint:
            warmup_after = int(total_hint * ec.warmup_fraction)

        dedup_at_warmup = scheme.counters.get("dedup_hits")

        # Kernel fast path (repro.perf): resolve this run's switch from the
        # config (None defers to REPRO_FASTPATH), then reset the memo caches
        # so every run starts cold — cache statistics become a deterministic
        # function of (trace, scheme, config), independent of whether the
        # cell runs serially or on a sweep worker.
        fast_prev, fast_on = _fastpath_begin(self.config.use_fastpath)
        # Epoch-batched engine (repro.vec): resolved the same way (config
        # override wins, None defers to REPRO_VECTORIZED).  The vectorized
        # loop replaces the per-request loop wholesale; its per-line
        # arithmetic is byte-for-byte the fast loop's, so it composes with
        # either fast-path setting.
        vec_prev, vec_on = _vec_begin(self.config.use_vectorized)
        vec_stats = VecStats() if vec_on else None
        self._vec_stats = vec_stats
        # Observability scope (repro.obs): opened after the fast-path
        # switch so hook sites observe a fully configured run; with the
        # default disabled config, RUN stays None and every hook site
        # short-circuits on one is-None test.
        obs_prev = _obs_runtime.begin_run(self.config.observability)
        if vec_on:
            loop = self._loop_vectorized
        else:
            loop = self._loop_fast if fast_on else self._loop_reference
        try:
            writes, reads, dedup_at_warmup = loop(
                requests, scheme, core, window, write_rec, read_rec,
                verify, warmup_after, instructions_per_access,
                dedup_at_warmup)
        finally:
            obs_run = _obs_runtime.end_run(obs_prev)
            _vec_end(vec_prev)
            memo_stats = _fastpath_end(fast_prev)

        extras = collect_extras(scheme)
        extras["fastpath_enabled"] = 1.0 if fast_on else 0.0
        extras["vectorized_enabled"] = 1.0 if vec_on else 0.0
        if fast_on:
            extras.update(memo_stats)
        if vec_stats is not None:
            extras.update(vec_stats.snapshot())

        obs_report = None
        if obs_run is not None:
            # Migrate the legacy counter channels onto the registry after
            # the loop has finished (observational only — extras above were
            # computed identically with or without obs).
            harvest_run(obs_run, scheme, memo_stats if fast_on else {},
                        vec_stats=vec_stats.snapshot() if vec_stats else {})
            obs_report = build_report(obs_run)

        controller = scheme.controller
        return SimulationResult(
            app=app,
            scheme=scheme.name,
            write_latency=write_rec,
            read_latency=read_rec,
            writes=writes,
            reads=reads,
            dedup_eliminated=scheme.counters.get("dedup_hits") - dedup_at_warmup,
            pcm_data_writes=controller.data_writes,
            pcm_metadata_writes=controller.metadata_writes,
            pcm_data_reads=controller.data_reads,
            pcm_metadata_reads=controller.metadata_reads,
            energy_nj=scheme.total_energy().breakdown(),
            breakdown=scheme.breakdown,
            read_breakdown=scheme.read_breakdown,
            ipc=core.ipc,
            metadata=scheme.metadata_footprint(),
            extras=extras,
            obs=obs_report,
        )

    def _loop_fast(self, requests, scheme, core, window, write_rec,
                   read_rec, verify, warmup_after, instructions_per_access,
                   dedup_at_warmup):
        """Optimized request loop (kernel fast path on).

        Identical control flow to :meth:`_loop_reference`; bound methods
        and constants are hoisted because every attribute lookup in the
        body is paid once per trace request.
        """
        ec = self.engine_config
        handle_write = scheme.handle_write
        handle_read = scheme.handle_read
        # Post-warm-up latencies are batched into plain lists and flushed
        # through LatencyRecorder.add_many (same arithmetic, one call).
        write_lats: list = []
        read_lats: list = []
        write_lat_append = write_lats.append
        read_lat_append = read_lats.append
        window_append = window.append
        window_popleft = window.popleft
        shadow = self._shadow
        max_outstanding = ec.max_outstanding
        WRITE = AccessType.WRITE
        # Core timing accumulated locally and flushed once after the loop:
        # per-request ``memory_stall``/``retire_instructions`` calls are pure
        # accumulation, and sequential float adds into a local produce the
        # same value as sequential adds into the (zero-initialised) member.
        cycle_ns = core.config.cycle_ns
        write_stall_fraction = core.write_stall_fraction
        stall_cycles = 0.0
        instructions = 0
        processed = 0
        writes = reads = 0
        # Hoisted observation scope: fixed for the whole run (begin_run ran
        # before the loop was chosen), so one load serves every request.
        obs = _obs_runtime.RUN
        try:
            for request in requests:
                if obs is not None:
                    obs.begin_request(processed)
                # Closed-loop throttling: delay the issue until a window slot
                # frees up.
                issue = request.issue_time_ns
                if len(window) >= max_outstanding:
                    oldest = window_popleft()
                    if oldest > issue:
                        issue = oldest
                if issue != request.issue_time_ns:
                    request = replace(request, issue_time_ns=issue)

                if request.access is WRITE:
                    result = handle_write(request)
                    latency = result.latency_ns
                    completion = result.completion_ns
                    if verify:
                        shadow[request.address] = request.data
                    if processed >= warmup_after:
                        write_lat_append(latency)
                    stall_cycles += (latency / cycle_ns) * write_stall_fraction
                    if obs is not None:
                        if processed >= warmup_after:
                            obs.write_latency_hist.observe(latency)
                        obs.record(completion, "engine", "write_done",
                                   address=request.address,
                                   latency_ns=latency)
                else:
                    rresult = handle_read(request)
                    latency = rresult.latency_ns
                    completion = rresult.completion_ns
                    if verify:
                        expected = shadow.get(request.address)
                        if expected is not None and rresult.data != expected:
                            raise IntegrityError(
                                f"read at {request.address:#x} returned stale "
                                f"or corrupt data under scheme {scheme.name}")
                    if processed >= warmup_after:
                        read_lat_append(latency)
                    stall_cycles += latency / cycle_ns
                    if obs is not None:
                        if processed >= warmup_after:
                            obs.read_latency_hist.observe(latency)
                        obs.record(completion, "engine", "read_done",
                                   address=request.address,
                                   latency_ns=latency)

                instructions += instructions_per_access
                window_append(completion)
                processed += 1
                if processed == warmup_after:
                    dedup_at_warmup = scheme.counters.get("dedup_hits")
        finally:
            core.stall_cycles += stall_cycles
            core.instructions += instructions
            write_rec.add_many(write_lats)
            read_rec.add_many(read_lats)
        writes = len(write_lats)
        reads = len(read_lats)
        return writes, reads, dedup_at_warmup

    def _loop_vectorized(self, requests, scheme, core, window, write_rec,
                         read_rec, verify, warmup_after,
                         instructions_per_access, dedup_at_warmup):
        """Epoch-batched request loop (:mod:`repro.vec`).

        Drains the stream in epochs (chunked ``islice`` — the full trace is
        never materialized), runs the batched kernel front end over each
        epoch (:class:`~repro.vec.epoch.EpochPrecomputer` priming the memo
        caches), then resolves the epoch line by line with a body that is
        byte-for-byte :meth:`_loop_fast`'s — the sequential feedback loops
        (issue window, banks, metadata recency) and every float accumulation
        happen in exactly the reference order, which is what the bit-exact
        parity contract requires.  Latency batches flush per epoch, so
        retained-buffer memory is bounded by the epoch size instead of the
        trace length.
        """
        ec = self.engine_config
        vec_stats = self._vec_stats
        precomp = EpochPrecomputer(scheme, vec_stats)
        handle_write = scheme.handle_write
        handle_read = scheme.handle_read
        write_lats: list = []
        read_lats: list = []
        write_lat_append = write_lats.append
        read_lat_append = read_lats.append
        window_append = window.append
        window_popleft = window.popleft
        shadow = self._shadow
        max_outstanding = ec.max_outstanding
        WRITE = AccessType.WRITE
        cycle_ns = core.config.cycle_ns
        write_stall_fraction = core.write_stall_fraction
        stall_cycles = 0.0
        instructions = 0
        processed = 0
        writes = reads = 0
        obs = _obs_runtime.RUN
        epoch_hist = None
        if obs is not None:
            epoch_hist = obs.registry.histogram("vec_epoch_size",
                                                _EPOCH_SIZE_BOUNDS)
        try:
            for epoch in iter_epochs(requests, ec.vec_epoch_size):
                precomp.precompute(epoch)
                if epoch_hist is not None:
                    epoch_hist.observe(float(len(epoch)))
                for request in epoch:
                    if obs is not None:
                        obs.begin_request(processed)
                    # Closed-loop throttling: delay the issue until a window
                    # slot frees up.
                    issue = request.issue_time_ns
                    if len(window) >= max_outstanding:
                        oldest = window_popleft()
                        if oldest > issue:
                            issue = oldest
                    if issue != request.issue_time_ns:
                        request = replace(request, issue_time_ns=issue)

                    if request.access is WRITE:
                        result = handle_write(request)
                        latency = result.latency_ns
                        completion = result.completion_ns
                        if verify:
                            shadow[request.address] = request.data
                        if processed >= warmup_after:
                            write_lat_append(latency)
                        stall_cycles += ((latency / cycle_ns)
                                         * write_stall_fraction)
                        if obs is not None:
                            if processed >= warmup_after:
                                obs.write_latency_hist.observe(latency)
                            obs.record(completion, "engine", "write_done",
                                       address=request.address,
                                       latency_ns=latency)
                    else:
                        rresult = handle_read(request)
                        latency = rresult.latency_ns
                        completion = rresult.completion_ns
                        if verify:
                            expected = shadow.get(request.address)
                            if expected is not None and rresult.data != expected:
                                raise IntegrityError(
                                    f"read at {request.address:#x} returned "
                                    f"stale or corrupt data under scheme "
                                    f"{scheme.name}")
                        if processed >= warmup_after:
                            read_lat_append(latency)
                        stall_cycles += latency / cycle_ns
                        if obs is not None:
                            if processed >= warmup_after:
                                obs.read_latency_hist.observe(latency)
                            obs.record(completion, "engine", "read_done",
                                       address=request.address,
                                       latency_ns=latency)

                    instructions += instructions_per_access
                    window_append(completion)
                    processed += 1
                    if processed == warmup_after:
                        dedup_at_warmup = scheme.counters.get("dedup_hits")
                # Per-epoch flush: identical per-sample arithmetic to one
                # end-of-run add_many (the recorder state round-trips through
                # the instance between batches), with retained-buffer memory
                # bounded by the epoch size.
                writes += len(write_lats)
                reads += len(read_lats)
                write_rec.add_many(write_lats)
                read_rec.add_many(read_lats)
                write_lats.clear()
                read_lats.clear()
        finally:
            core.stall_cycles += stall_cycles
            core.instructions += instructions
            # On an exception mid-epoch, flush the partial batch — same
            # observable state as _loop_fast's finally.
            write_rec.add_many(write_lats)
            read_rec.add_many(read_lats)
        return writes, reads, dedup_at_warmup

    def _loop_reference(self, requests, scheme, core, window, write_rec,
                        read_rec, verify, warmup_after,
                        instructions_per_access, dedup_at_warmup):
        """Reference request loop (pre-fast-path form, kept verbatim
        apart from the observation hooks, which mirror the fast loop's)."""
        ec = self.engine_config
        processed = 0
        writes = reads = 0
        obs = _obs_runtime.RUN
        for request in requests:
            if obs is not None:
                obs.begin_request(processed)
            # Closed-loop throttling: delay the issue until a window slot
            # frees up.
            issue = request.issue_time_ns
            if len(window) >= ec.max_outstanding:
                oldest = window.popleft()
                if oldest > issue:
                    issue = oldest
            if issue != request.issue_time_ns:
                request = replace(request, issue_time_ns=issue)

            if request.is_write:
                result = scheme.handle_write(request)
                latency = result.latency_ns
                completion = result.completion_ns
                if verify:
                    self._shadow[request.address] = request.data
                if processed >= warmup_after:
                    write_rec.add(latency)
                    writes += 1
                core.memory_stall(latency, is_write=True)
                if obs is not None:
                    if processed >= warmup_after:
                        obs.write_latency_hist.observe(latency)
                    obs.record(completion, "engine", "write_done",
                               address=request.address,
                               latency_ns=latency)
            else:
                rresult = scheme.handle_read(request)
                latency = rresult.latency_ns
                completion = rresult.completion_ns
                if verify:
                    expected = self._shadow.get(request.address)
                    if expected is not None and rresult.data != expected:
                        raise IntegrityError(
                            f"read at {request.address:#x} returned stale "
                            f"or corrupt data under scheme {scheme.name}")
                if processed >= warmup_after:
                    read_rec.add(latency)
                    reads += 1
                core.memory_stall(latency, is_write=False)
                if obs is not None:
                    if processed >= warmup_after:
                        obs.read_latency_hist.observe(latency)
                    obs.record(completion, "engine", "read_done",
                               address=request.address,
                               latency_ns=latency)

            core.retire_instructions(instructions_per_access)
            window.append(completion)
            processed += 1
            if processed == warmup_after:
                dedup_at_warmup = scheme.counters.get("dedup_hits")
        return writes, reads, dedup_at_warmup
