"""NVMM (PCM) substrate: device contents, wear, banking, timing, energy."""

from .allocator import FrameAllocator
from .bank import Bank, BankService
from .controller import AccessResult, MemoryController
from .device import PCMDevice, WearStats
from .energy import EnergyAccount, EnergyCategory
from .wearlevel import StartGapWearLeveler, WearLevelerConfig, leveling_effectiveness

__all__ = [
    "AccessResult",
    "Bank",
    "BankService",
    "EnergyAccount",
    "EnergyCategory",
    "FrameAllocator",
    "MemoryController",
    "PCMDevice",
    "StartGapWearLeveler",
    "WearLevelerConfig",
    "WearStats",
    "leveling_effectiveness",
]
