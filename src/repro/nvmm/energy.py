"""Energy accounting across the simulated system.

The paper's Figure 16 totals read/write energy, encryption energy, and
deduplication-induced computation energy.  :class:`EnergyAccount` keeps one
bucket per category so results can be reported both as totals and as
per-category breakdowns.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict


class EnergyCategory(enum.Enum):
    """Where a nanojoule was spent."""

    PCM_READ = "pcm_read"
    PCM_WRITE = "pcm_write"
    ENCRYPTION = "encryption"
    DECRYPTION = "decryption"
    FINGERPRINT = "fingerprint"
    COMPARISON = "comparison"
    METADATA = "metadata"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    # Categories key the per-access energy buckets; identity hash is
    # C-level and equally stable for process-singleton enum members.
    __hash__ = object.__hash__


@dataclass
class EnergyAccount:
    """Per-category energy totals in nanojoules."""

    buckets: Dict[EnergyCategory, float] = field(default_factory=dict)

    def charge(self, category: EnergyCategory, energy_nj: float) -> None:
        if energy_nj < 0:
            raise ValueError("energy must be non-negative")
        self.buckets[category] = self.buckets.get(category, 0.0) + energy_nj

    def get(self, category: EnergyCategory) -> float:
        return self.buckets.get(category, 0.0)

    def total_nj(self) -> float:
        return sum(self.buckets.values())

    def breakdown(self) -> Dict[str, float]:
        """Category-name -> nJ mapping (stable for reporting)."""
        return {cat.value: self.buckets.get(cat, 0.0) for cat in EnergyCategory}

    def merged_with(self, other: "EnergyAccount") -> "EnergyAccount":
        out = EnergyAccount()
        for cat in EnergyCategory:
            total = self.get(cat) + other.get(cat)
            if total:
                out.buckets[cat] = total
        return out
