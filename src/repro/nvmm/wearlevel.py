"""Start-Gap wear leveling for PCM.

PCM cells endure 1e7-1e8 writes; deduplication reduces *total* writes but
concentrates the survivors (hot unique frames absorb many reference
updates and re-encryptions), so a production NVMM pairs dedup with wear
leveling.  This module implements **Start-Gap** (Qureshi et al., MICRO'09),
the canonical low-overhead algebraic scheme the endurance literature the
paper cites builds on:

* one spare *gap* frame rotates through the device;
* every ``gap_move_interval`` writes, the line preceding the gap moves
  into it and the gap shifts down by one;
* after the gap completes a full revolution, every line has shifted by
  one slot, so a logical hot spot sweeps across physical frames.

Address translation is O(1) arithmetic from two registers (``start``,
``gap``) — no table.  The remapper sits *below* the dedup scheme's frame
numbers: callers allocate and address "intermediate" frames, and the
remapper picks the physical slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.errors import ConfigError
from .device import PCMDevice, WearStats


@dataclass(frozen=True)
class WearLevelerConfig:
    """Start-Gap parameters."""

    #: Writes between gap movements; Qureshi et al. recommend ~100 (a 1 %
    #: write overhead for near-perfect leveling over time).
    gap_move_interval: int = 100

    def __post_init__(self) -> None:
        if self.gap_move_interval <= 0:
            raise ConfigError("gap_move_interval must be positive")


class StartGapWearLeveler:
    """Algebraic intermediate->physical remapping over ``num_frames``.

    The device exposes ``num_frames + 1`` physical slots; one is always
    the gap.  Mapping for intermediate address ``a`` (0-based):

        physical = (a + start) mod (n + 1), skipping over the gap slot --
        concretely, addresses at or above the gap's current position shift
        down by one.
    """

    def __init__(self, num_frames: int,
                 config: Optional[WearLevelerConfig] = None) -> None:
        if num_frames <= 0:
            raise ValueError("num_frames must be positive")
        self.num_frames = num_frames
        self.config = config or WearLevelerConfig()
        self._slots = num_frames + 1
        #: Rotation offset: increments once per full gap revolution.
        self._start = 0
        #: Current physical slot of the gap (initially the spare at the end).
        self._gap = num_frames
        self._writes_since_move = 0
        #: Extra line moves performed (each is one read + one write).
        self.gap_moves = 0
        self.revolutions = 0

    # ------------------------------------------------------------------
    # Translation
    # ------------------------------------------------------------------

    def translate(self, intermediate: int) -> int:
        """Map an intermediate frame number to its physical slot.

        Qureshi et al.'s formulation: rotate within the ``num_frames``
        addresses (mod N), then skip over the gap slot.  Because the
        rotated address is < N and the gap skip adds at most 1, the result
        always lands in [0, N] without wrapping — which keeps the map
        injective for every (start, gap) state.
        """
        if not 0 <= intermediate < self.num_frames:
            raise ValueError(
                f"intermediate frame {intermediate} out of range "
                f"[0, {self.num_frames})")
        physical = (intermediate + self._start) % self.num_frames
        if physical >= self._gap:
            physical += 1
        return physical

    # ------------------------------------------------------------------
    # Gap movement
    # ------------------------------------------------------------------

    def record_write(self, device: Optional[PCMDevice] = None) -> bool:
        """Note one data write; move the gap when the interval elapses.

        Args:
            device: when provided, the displaced line's content is actually
                copied into the old gap slot (keeping the functional view
                exact).  Timing/energy of the move is the caller's to
                charge via the controller if desired.

        Returns:
            True when a gap move happened.
        """
        self._writes_since_move += 1
        if self._writes_since_move < self.config.gap_move_interval:
            return False
        self._writes_since_move = 0
        self._move_gap(device)
        return True

    def _move_gap(self, device: Optional[PCMDevice]) -> None:
        # The line just below the gap moves into the gap slot.
        source = (self._gap - 1) % self._slots
        if device is not None:
            device.write_line(self._gap, device.read_line(source))
        self._gap = source
        self.gap_moves += 1
        # The gap wraps back to the spare slot once per `slots` moves; at
        # that point every line has shifted one slot, so the rotation
        # register advances to keep translation consistent.
        if self.gap_moves % self._slots == 0:
            self._start = (self._start + 1) % self.num_frames
            self.revolutions += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def gap_position(self) -> int:
        return self._gap

    @property
    def start_position(self) -> int:
        return self._start

    def write_overhead(self) -> float:
        """Extra writes per data write caused by gap movement."""
        return 1.0 / self.config.gap_move_interval


def leveling_effectiveness(stats: WearStats) -> float:
    """1/wear-imbalance: 1.0 = perfectly even wear, ->0 = one hot frame."""
    imbalance = stats.wear_imbalance
    if imbalance <= 0:
        return 1.0
    return 1.0 / imbalance
