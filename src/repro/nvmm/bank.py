"""Bank-level timing model for the PCM array.

PCM banks serve one access at a time.  Because the simulator processes the
trace in program order while a request's pipeline stages carry absolute
timestamps, a bank can be asked to serve accesses whose arrival times are
*not* monotonic.  A naive busy-until model would let one late-scheduled
access block every earlier-arriving access processed after it — a phantom
backlog no real controller exhibits (controllers reorder requests across
bank idle gaps).  Each bank therefore keeps a set of busy intervals and
places each access at the **earliest idle gap at or after its arrival**
(earliest-fit scheduling).

Banks also carry a one-entry row buffer (NVMain-style open row): a read
whose row matches the open row is a *row hit*, served at SRAM-like latency.
This matters enormously for deduplication — the byte-comparison reads of a
hot shared line (e.g. the all-zero line) all land on one row of one bank
and would otherwise serialize at full PCM read latency.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Hashable, List, NamedTuple, Optional, Tuple

from ..perf import memo as _memo


class BankService(NamedTuple):
    """Record of one scheduled bank access.

    A ``NamedTuple`` rather than a dataclass: one is built per bank access
    (tens of thousands per run) and tuple construction is C-level.
    """

    bank: int
    arrival_ns: float
    start_ns: float
    completion_ns: float

    @property
    def latency_ns(self) -> float:
        """Arrival-to-completion latency (queueing + service)."""
        return self.completion_ns - self.arrival_ns

    @property
    def queue_delay_ns(self) -> float:
        return self.start_ns - self.arrival_ns


class Bank:
    """One PCM bank with earliest-fit interval scheduling and a row buffer.

    Args:
        index: bank number (for reporting).
        prune_margin_ns: busy intervals ending this far before the latest
            arrival seen are discarded; out-of-order arrivals deeper than
            this margin would mis-schedule, so it must exceed the engine's
            throttling window span (the default is generous).
    """

    def __init__(self, index: int, prune_margin_ns: float = 1_000_000.0) -> None:
        self.index = index
        self.prune_margin_ns = prune_margin_ns
        # Sorted, non-overlapping, merged busy intervals as (start, end).
        self._intervals: List[Tuple[float, float]] = []
        self._latest_arrival = 0.0
        self.busy_time_ns = 0.0
        self.services = 0
        self.open_row: Optional[Hashable] = None
        self.row_hits = 0
        self.row_misses = 0

    # ------------------------------------------------------------------
    # Row buffer
    # ------------------------------------------------------------------

    def access_row(self, row: Hashable) -> bool:
        """Open ``row``; returns True when it was already open (row hit)."""
        if self.open_row == row:
            self.row_hits += 1
            return True
        self.open_row = row
        self.row_misses += 1
        return False

    # ------------------------------------------------------------------
    # Earliest-fit scheduling
    # ------------------------------------------------------------------

    def service(self, arrival_ns: float, duration_ns: float) -> BankService:
        """Schedule an access at the earliest idle gap >= its arrival."""
        if arrival_ns < 0 or duration_ns < 0:
            raise ValueError("times must be non-negative")
        if arrival_ns > self._latest_arrival:
            self._latest_arrival = arrival_ns
        intervals = self._intervals
        if (_memo.ENABLED and duration_ns > 0.0
                and (not intervals or arrival_ns >= intervals[-1][0])):
            # (Zero-duration accesses take the general path: a 0-ns access
            # arriving exactly at a busy interval's start fits *before* it.)
            # Fast common case: the access lands in or after the *last* busy
            # interval (program-order traces are mostly monotonic, and a
            # busy bank queues arrivals behind its tail).  The earliest fit
            # is then ``max(arrival, last_end)`` and the new interval
            # appends/merges at the tail — equivalent to the general
            # ``_find_slot``/``_insert_interval`` path below, which remains
            # for genuinely out-of-order arrivals.
            if intervals:
                last_start, last_end = intervals[-1]
                start = last_end if arrival_ns < last_end else arrival_ns
            else:
                last_end = -1.0
                start = arrival_ns
            end = start + duration_ns
            if end > start:
                if start == last_end:
                    intervals[-1] = (last_start, end)
                else:
                    intervals.append((start, end))
            self.busy_time_ns += duration_ns
            self.services += 1
            if len(intervals) >= 4096:
                self._maybe_prune()
            return BankService(bank=self.index, arrival_ns=arrival_ns,
                               start_ns=start, completion_ns=end)
        start = self._find_slot(arrival_ns, duration_ns)
        end = start + duration_ns
        self._insert_interval(start, end)
        self.busy_time_ns += duration_ns
        self.services += 1
        self._maybe_prune()
        return BankService(bank=self.index, arrival_ns=arrival_ns,
                           start_ns=start, completion_ns=end)

    def service_batch(self, arrivals, durations):
        """Vectorized earliest-fit schedule of a tail-monotonic burst.

        Schedules ``len(arrivals)`` accesses whose arrivals are sorted and
        land at/after the current busy tail — the shape a batch consumer
        (benchmark replay, epoch-level planner) naturally produces — as
        closed-form array math instead of per-access ``service`` calls.
        With ``S`` the prefix sum of durations, the sequential recurrence
        ``end[i] = max(arrival[i], end[i-1]) + duration[i]`` telescopes to
        ``end = S + cummax(arrival - Sshift)``.

        State updates (interval tail, busy time, service count) match the
        scalar path's, so subsequent ``service`` calls see the same bank.
        Not used on the simulated per-request path: the closed form
        associates float additions differently than the scalar recurrence
        (last-ulp differences on long queue chains), and the bit-exact
        parity contract keeps the engine's resolution scalar.  Agreement
        is within float tolerance (``tests/test_vec_kernels.py``).

        Args:
            arrivals: sorted, non-negative arrival times (ns).
            durations: positive service times (ns), scalar or aligned array.

        Returns:
            ``(starts, completions)`` float64 arrays.

        Raises:
            ValueError: on empty/unsorted arrivals, negative times, or a
                burst arriving before the current busy tail.
        """
        import numpy as np
        arrivals = np.asarray(arrivals, dtype=np.float64)
        if arrivals.size == 0:
            raise ValueError("burst must contain at least one access")
        durations = np.broadcast_to(
            np.asarray(durations, dtype=np.float64), arrivals.shape)
        if np.any(arrivals[1:] < arrivals[:-1]):
            raise ValueError("burst arrivals must be sorted")
        if arrivals[0] < 0 or np.any(durations <= 0):
            raise ValueError("times must be non-negative, durations positive")
        intervals = self._intervals
        tail_end = intervals[-1][1] if intervals else 0.0
        if intervals and arrivals[0] < intervals[-1][0]:
            raise ValueError("burst must arrive at/after the busy tail")
        prefix = np.cumsum(durations)
        shifted = np.empty_like(prefix)
        shifted[0] = 0.0
        shifted[1:] = prefix[:-1]
        floor = np.maximum(arrivals, tail_end)
        completions = prefix + np.maximum.accumulate(floor - shifted)
        # Starts via one exact recurrence step, ``max(arrival, prev_end)``:
        # a queued access starts *exactly* at its predecessor's completion,
        # so genuine idle gaps — not last-ulp closed-form residue — decide
        # the span boundaries committed below.
        prev_end = np.empty_like(completions)
        prev_end[0] = tail_end
        prev_end[1:] = completions[:-1]
        starts = np.maximum(arrivals, prev_end)
        # Commit the burst's busy spans: a new span opens wherever an access
        # started strictly after its predecessor finished (idle gap).
        opens = np.flatnonzero(
            np.concatenate(([True], starts[1:] > prev_end[1:])))
        span_starts = starts[opens]
        span_ends = completions[
            np.concatenate((opens[1:] - 1, [len(starts) - 1]))]
        if intervals and span_starts[0] == tail_end:
            last_start, _ = intervals[-1]
            intervals[-1] = (last_start, float(span_ends[0]))
            span_starts, span_ends = span_starts[1:], span_ends[1:]
        intervals.extend(zip(span_starts.tolist(), span_ends.tolist()))
        self.busy_time_ns += float(durations.sum())
        self.services += len(arrivals)
        last_arrival = float(arrivals[-1])
        if last_arrival > self._latest_arrival:
            self._latest_arrival = last_arrival
        if len(intervals) >= 4096:
            self._maybe_prune()
        return starts, completions

    def _find_slot(self, arrival: float, duration: float) -> float:
        intervals = self._intervals
        # First interval whose end is after the arrival can conflict.
        idx = bisect_left(intervals, (arrival, float("-inf")))
        if idx > 0 and intervals[idx - 1][1] > arrival:
            idx -= 1
        candidate = arrival
        for start, end in intervals[idx:]:
            if candidate + duration <= start:
                break
            candidate = max(candidate, end)
        return candidate

    def _insert_interval(self, start: float, end: float) -> None:
        if end == start:
            return
        intervals = self._intervals
        idx = bisect_left(intervals, (start, end))
        # Merge with predecessor when contiguous.
        if idx > 0 and intervals[idx - 1][1] == start:
            prev_start, _ = intervals[idx - 1]
            # Merge with successor too, when contiguous on the other side.
            if idx < len(intervals) and intervals[idx][0] == end:
                succ_end = intervals[idx][1]
                intervals[idx - 1] = (prev_start, succ_end)
                del intervals[idx]
            else:
                intervals[idx - 1] = (prev_start, end)
            return
        if idx < len(intervals) and intervals[idx][0] == end:
            intervals[idx] = (start, intervals[idx][1])
            return
        intervals.insert(idx, (start, end))

    def _maybe_prune(self) -> None:
        # Drop intervals safely in the past; amortized via a size trigger.
        if len(self._intervals) < 4096:
            return
        cutoff = self._latest_arrival - self.prune_margin_ns
        idx = bisect_left(self._intervals, (cutoff, float("-inf")))
        # Keep the interval straddling the cutoff.
        while idx > 0 and self._intervals[idx - 1][1] > cutoff:
            idx -= 1
        if idx:
            del self._intervals[:idx]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def busy_until_ns(self) -> float:
        """End of the last scheduled interval (0 when never used)."""
        return self._intervals[-1][1] if self._intervals else 0.0

    def queue_delay(self, arrival_ns: float) -> float:
        """Wait a hypothetical zero-length access arriving now would see."""
        return max(0.0, self._find_slot(arrival_ns, 0.0) - arrival_ns)
