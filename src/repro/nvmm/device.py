"""PCM device model: content store plus endurance (wear) accounting.

The device is the functional half of the NVMM substrate: it remembers the
bytes stored in every physical cache-line frame and counts writes per frame
so endurance effects (the paper's Section IV-B write-reduction results are
endurance results) can be reported.  Timing and queueing live in
:mod:`repro.nvmm.controller`; energy in :mod:`repro.nvmm.energy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..common.config import PCMConfig
from ..common.errors import EnduranceExceededError, InvalidAddressError
from ..common.types import CACHE_LINE_SIZE, validate_line
from ..perf import memo as _memo

#: Shared zero line returned for never-written frames (bytes are immutable,
#: so one instance serves every fresh-cell read).
_ZERO = bytes(CACHE_LINE_SIZE)


@dataclass
class WearStats:
    """Aggregate endurance statistics for a device."""

    total_writes: int
    frames_touched: int
    max_writes_per_frame: int
    mean_writes_per_touched_frame: float

    @property
    def wear_imbalance(self) -> float:
        """Max-to-mean write ratio over touched frames (1.0 = perfectly even)."""
        if self.mean_writes_per_touched_frame == 0:
            return 0.0
        return self.max_writes_per_frame / self.mean_writes_per_touched_frame


class PCMDevice:
    """Functional PCM array addressed by physical cache-line number.

    Frames never written read back as zero lines (fresh PCM cells), matching
    the zero-initialized view a warmed simulator presents.
    """

    def __init__(self, config: Optional[PCMConfig] = None) -> None:
        self.config = config or PCMConfig()
        self._store: Dict[int, bytes] = {}
        self._write_counts: Dict[int, int] = {}
        #: Total line reads served (functional, not timing).
        self.read_ops = 0
        #: Total line writes absorbed.
        self.write_ops = 0

    @property
    def num_lines(self) -> int:
        return self.config.num_lines

    def _check_line_number(self, line_number: int) -> None:
        if not 0 <= line_number < self.num_lines:
            raise InvalidAddressError(
                f"line {line_number} outside device of {self.num_lines} lines")

    def read_line(self, line_number: int) -> bytes:
        """Read the 64-byte content of a physical frame."""
        if not _memo.ENABLED:
            # Reference form (pre-fast-path implementation).
            self._check_line_number(line_number)
            self.read_ops += 1
            return self._store.get(line_number, bytes(CACHE_LINE_SIZE))
        # Bounds check inlined (hot path: one call per PCM data read).
        if not 0 <= line_number < self.config.num_lines:
            raise InvalidAddressError(
                f"line {line_number} outside device of "
                f"{self.config.num_lines} lines")
        self.read_ops += 1
        return self._store.get(line_number, _ZERO)

    def write_line(self, line_number: int, data: bytes) -> None:
        """Write a 64-byte line into a physical frame, recording wear."""
        if not _memo.ENABLED:
            # Reference form (pre-fast-path implementation).
            self._check_line_number(line_number)
            validate_line(data)
            count = self._write_counts.get(line_number, 0) + 1
            if (self.config.fail_on_endurance
                    and count > self.config.endurance_writes):
                raise EnduranceExceededError(
                    f"frame {line_number} exceeded endurance "
                    f"({self.config.endurance_writes} writes)")
            self._write_counts[line_number] = count
            self._store[line_number] = bytes(data)
            self.write_ops += 1
            return
        # Checks inlined; ``bytes`` payloads are stored as-is (immutable, and
        # ``bytes(data)`` is an identity for them anyway).
        config = self.config
        if not 0 <= line_number < config.num_lines:
            raise InvalidAddressError(
                f"line {line_number} outside device of "
                f"{config.num_lines} lines")
        if data.__class__ is not bytes:
            data = validate_line(data)
        elif len(data) != CACHE_LINE_SIZE:
            raise ValueError(
                f"cache line must be {CACHE_LINE_SIZE} bytes, got {len(data)}")
        counts = self._write_counts
        count = counts.get(line_number, 0) + 1
        if config.fail_on_endurance and count > config.endurance_writes:
            raise EnduranceExceededError(
                f"frame {line_number} exceeded endurance "
                f"({config.endurance_writes} writes)")
        counts[line_number] = count
        self._store[line_number] = data
        self.write_ops += 1

    def write_count(self, line_number: int) -> int:
        """Writes absorbed by one frame so far."""
        self._check_line_number(line_number)
        return self._write_counts.get(line_number, 0)

    def wear_stats(self) -> WearStats:
        """Summarize endurance state across all touched frames."""
        if not self._write_counts:
            return WearStats(total_writes=0, frames_touched=0,
                             max_writes_per_frame=0,
                             mean_writes_per_touched_frame=0.0)
        counts = self._write_counts.values()
        total = sum(counts)
        return WearStats(
            total_writes=total,
            frames_touched=len(self._write_counts),
            max_writes_per_frame=max(counts),
            mean_writes_per_touched_frame=total / len(self._write_counts),
        )

    def occupied_frames(self) -> int:
        """Number of frames holding written data."""
        return len(self._store)
