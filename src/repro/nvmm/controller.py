"""NVMM memory controller: timing, banking, and energy for PCM accesses.

The controller is the single gateway through which every scheme touches the
PCM array.  It combines:

* the functional :class:`~repro.nvmm.device.PCMDevice` (contents + wear),
* per-bank busy-until timing (:mod:`repro.nvmm.bank`) with line-interleaved
  bank mapping,
* energy accounting per access category,
* a *metadata region* interface used by full-deduplication schemes whose
  fingerprint tables live in NVMM — those fingerprint NVMM_lookup accesses
  occupy banks and consume energy exactly like data accesses, which is how
  the lookup bottleneck of Figure 5 materializes in simulation.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Tuple

from ..common.config import PCMConfig
from ..common.stats import Counter
from ..obs import runtime as _obs
from ..perf import memo as _memo
from ..common.errors import InvalidAddressError
from .bank import Bank, BankService
from .device import _ZERO, PCMDevice
from .energy import EnergyAccount, EnergyCategory

# Hoisted enum members for the fast-path branches (module-global loads are
# cheaper than two-level attribute lookups on a per-access path).
_PCM_READ = EnergyCategory.PCM_READ
_PCM_WRITE = EnergyCategory.PCM_WRITE


class AccessResult(NamedTuple):
    """Timing outcome of one controller access.

    A ``NamedTuple`` for the same reason as :class:`BankService`: built on
    every access, so construction cost is a per-access tax.
    """

    service: BankService

    @property
    def completion_ns(self) -> float:
        return self.service.completion_ns

    @property
    def latency_ns(self) -> float:
        return self.service.latency_ns


class MemoryController:
    """Schedules PCM line accesses over interleaved banks.

    Bank mapping is line-interleaved (``line_number % num_banks``), the
    common choice for maximizing bank-level parallelism of streaming
    accesses.  Metadata-region accesses hash their key onto a bank so
    fingerprint-table traffic spreads like data traffic does.
    """

    def __init__(self, config: Optional[PCMConfig] = None,
                 device: Optional[PCMDevice] = None) -> None:
        self.config = config or PCMConfig()
        self.device = device or PCMDevice(self.config)
        if self.device.config is not self.config:
            raise ValueError("device and controller must share one PCMConfig")
        self.banks: List[Bank] = [Bank(index=i)
                                  for i in range(self.config.num_banks)]
        self.energy = EnergyAccount()
        self.counters = Counter()
        # Hot-path scalars hoisted out of the (frozen) config: read() and
        # write() run once per PCM access, and each dotted config lookup
        # there is a real per-access cost.  Used by the kernel-fast-path
        # branches only; reference branches keep the original lookups.
        self._num_banks = self.config.num_banks
        self._row_size_lines = self.config.row_size_lines
        self._read_latency_ns = self.config.read_latency_ns
        self._read_energy_nj = self.config.read_energy_nj
        self._row_hit_read_latency_ns = self.config.row_hit_read_latency_ns
        self._row_hit_read_energy_nj = self.config.row_hit_read_energy_nj
        self._write_latency_ns = self.config.write_latency_ns
        self._write_energy_nj = self.config.write_energy_nj
        self._energy_buckets = self.energy.buckets
        self._counter_values = self.counters.values
        self._num_lines = self.config.num_lines
        # The device's backing store, for the inlined read in read(): the
        # dict is created once in PCMDevice.__init__ and only ever mutated,
        # so holding a reference is safe.
        self._device_store = self.device._store

    # ------------------------------------------------------------------
    # Bank plumbing
    # ------------------------------------------------------------------

    def bank_for_line(self, line_number: int) -> Bank:
        return self.banks[line_number % self.config.num_banks]

    def bank_index_batch(self, line_numbers):
        """Vectorized data-line bank mapping (``line % num_banks``).

        Batch counterpart of :meth:`bank_for_line` for epoch-level
        consumers (benchmark replays, bank-pressure analysis): one numpy
        modulo over an array of line numbers instead of a Python call per
        line.  Data lines only — the metadata hash mixes keys wider than
        64 bits (fingerprints), which uint64 array arithmetic would wrap.

        Returns:
            An integer numpy array of bank indices aligned with the input.
        """
        import numpy as np
        lines = np.asarray(line_numbers, dtype=np.int64)
        if lines.size and (lines.min() < 0
                           or lines.max() >= self.config.num_lines):
            raise ValueError("line number out of range")
        return lines % self._num_banks

    def _bank_for_metadata(self, key: int) -> Bank:
        # Spread metadata across banks; the multiplier decorrelates metadata
        # keys from the data lines they describe.
        return self.banks[(key * 2654435761 >> 8) % self.config.num_banks]

    # ------------------------------------------------------------------
    # Data-path accesses
    # ------------------------------------------------------------------

    def _data_row(self, line_number: int) -> Tuple[str, int]:
        return ("data", line_number // self.config.row_size_lines)

    def _metadata_row(self, key: int) -> Tuple[str, int]:
        return ("meta", key >> 3)

    # The fast-path branches below identify rows by plain ints instead of
    # ("data"/"meta", row) tuples — data rows as ``row`` (non-negative),
    # metadata rows as ``~row`` (negative) — because int construction and
    # comparison beat tuple construction on a once-per-access path.  Both
    # encodings are injective over (kind, row), so the row-buffer hit/miss
    # pattern is identical; the fast-path switch is fixed for the lifetime
    # of a run, so a bank never sees a mix of the two encodings.

    def read(self, line_number: int, at_time_ns: float) -> Tuple[bytes, AccessResult]:
        """Read one line: returns (content, timing).

        A read hitting the bank's open row is served from the row buffer at
        :attr:`PCMConfig.row_hit_read_latency_ns`.
        """
        if not _memo.ENABLED:
            # Reference form (pre-fast-path implementation).
            bank = self.bank_for_line(line_number)
            if bank.access_row(self._data_row(line_number)):
                latency = self.config.row_hit_read_latency_ns
                energy = self.config.row_hit_read_energy_nj
            else:
                latency = self.config.read_latency_ns
                energy = self.config.read_energy_nj
            service = bank.service(at_time_ns, latency)
            data = self.device.read_line(line_number)
            self.energy.charge(EnergyCategory.PCM_READ, energy)
            self.counters.incr("data_reads")
            obs = _obs.RUN
            if obs is not None:
                obs.record(service.completion_ns, "controller", "data_read",
                           line=line_number, latency_ns=service.latency_ns)
            return data, AccessResult(service=service)
        bank = self.banks[line_number % self._num_banks]
        if bank.access_row(line_number // self._row_size_lines):
            latency = self._row_hit_read_latency_ns
            energy = self._row_hit_read_energy_nj
        else:
            latency = self._read_latency_ns
            energy = self._read_energy_nj
        service = bank.service(at_time_ns, latency)
        # Device read inlined (bounds check + store lookup + read counter).
        if not 0 <= line_number < self._num_lines:
            raise InvalidAddressError(
                f"line {line_number} outside device of "
                f"{self._num_lines} lines")
        self.device.read_ops += 1
        data = self._device_store.get(line_number, _ZERO)
        buckets = self._energy_buckets
        buckets[_PCM_READ] = buckets.get(_PCM_READ, 0.0) + energy
        values = self._counter_values
        values["data_reads"] = values.get("data_reads", 0) + 1
        obs = _obs.RUN
        if obs is not None:
            obs.record(service.completion_ns, "controller", "data_read",
                       line=line_number, latency_ns=service.latency_ns)
        return data, AccessResult(service=service)

    def write(self, line_number: int, data: bytes,
              at_time_ns: float) -> AccessResult:
        """Write one line: returns timing.

        PCM cell writes pay full latency/energy regardless of the row
        buffer, but the write loads its row into the buffer.
        """
        if not _memo.ENABLED:
            # Reference form (pre-fast-path implementation).
            bank = self.bank_for_line(line_number)
            bank.access_row(self._data_row(line_number))
            service = bank.service(at_time_ns, self.config.write_latency_ns)
            self.device.write_line(line_number, data)
            self.energy.charge(EnergyCategory.PCM_WRITE,
                               self.config.write_energy_nj)
            self.counters.incr("data_writes")
            obs = _obs.RUN
            if obs is not None:
                obs.record(service.completion_ns, "controller", "data_write",
                           line=line_number, latency_ns=service.latency_ns)
            return AccessResult(service=service)
        bank = self.banks[line_number % self._num_banks]
        bank.access_row(line_number // self._row_size_lines)
        service = bank.service(at_time_ns, self._write_latency_ns)
        self.device.write_line(line_number, data)
        buckets = self._energy_buckets
        buckets[_PCM_WRITE] = buckets.get(_PCM_WRITE, 0.0) + self._write_energy_nj
        values = self._counter_values
        values["data_writes"] = values.get("data_writes", 0) + 1
        obs = _obs.RUN
        if obs is not None:
            obs.record(service.completion_ns, "controller", "data_write",
                       line=line_number, latency_ns=service.latency_ns)
        return AccessResult(service=service)

    def write_partial(self, key: int, fraction: float,
                      at_time_ns: float) -> AccessResult:
        """Write part of a line (byte-addressable PCM).

        PCM write energy scales with the bits actually programmed, while a
        partial write still occupies the bank for a full write slot.  Used
        by delta-dedup extensions; content is owned by the caller, so the
        device array is not touched.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if not _memo.ENABLED:
            # Reference form (pre-fast-path implementation).
            bank = self._bank_for_metadata(key)
            bank.access_row(self._metadata_row(key))
            service = bank.service(at_time_ns, self.config.write_latency_ns)
            self.energy.charge(EnergyCategory.PCM_WRITE,
                               self.config.write_energy_nj * fraction)
            self.counters.incr("partial_writes")
            obs = _obs.RUN
            if obs is not None:
                obs.record(service.completion_ns, "controller",
                           "partial_write", key=key, fraction=fraction,
                           latency_ns=service.latency_ns)
            return AccessResult(service=service)
        bank = self.banks[(key * 2654435761 >> 8) % self._num_banks]
        bank.access_row(~(key >> 3))
        service = bank.service(at_time_ns, self._write_latency_ns)
        buckets = self._energy_buckets
        buckets[_PCM_WRITE] = (buckets.get(_PCM_WRITE, 0.0)
                               + self._write_energy_nj * fraction)
        values = self._counter_values
        values["partial_writes"] = values.get("partial_writes", 0) + 1
        obs = _obs.RUN
        if obs is not None:
            obs.record(service.completion_ns, "controller", "partial_write",
                       key=key, fraction=fraction,
                       latency_ns=service.latency_ns)
        return AccessResult(service=service)

    # ------------------------------------------------------------------
    # Metadata-region accesses (fingerprint stores, AMT home in NVMM)
    # ------------------------------------------------------------------

    def metadata_read(self, key: int, at_time_ns: float) -> AccessResult:
        """Timing/energy of reading one metadata line from NVMM.

        Contents of metadata structures are modeled functionally by their
        owners (fingerprint stores, AMT); the controller charges the PCM
        read cost and occupies a bank for the duration.
        """
        if not _memo.ENABLED:
            # Reference form (pre-fast-path implementation).
            bank = self._bank_for_metadata(key)
            if bank.access_row(self._metadata_row(key)):
                latency = self.config.row_hit_read_latency_ns
                energy = self.config.row_hit_read_energy_nj
            else:
                latency = self.config.read_latency_ns
                energy = self.config.read_energy_nj
            service = bank.service(at_time_ns, latency)
            self.energy.charge(EnergyCategory.PCM_READ, energy)
            self.counters.incr("metadata_reads")
            obs = _obs.RUN
            if obs is not None:
                obs.record(service.completion_ns, "controller",
                           "metadata_read", key=key,
                           latency_ns=service.latency_ns)
            return AccessResult(service=service)
        bank = self.banks[(key * 2654435761 >> 8) % self._num_banks]
        if bank.access_row(~(key >> 3)):
            latency = self._row_hit_read_latency_ns
            energy = self._row_hit_read_energy_nj
        else:
            latency = self._read_latency_ns
            energy = self._read_energy_nj
        service = bank.service(at_time_ns, latency)
        buckets = self._energy_buckets
        buckets[_PCM_READ] = buckets.get(_PCM_READ, 0.0) + energy
        values = self._counter_values
        values["metadata_reads"] = values.get("metadata_reads", 0) + 1
        obs = _obs.RUN
        if obs is not None:
            obs.record(service.completion_ns, "controller", "metadata_read",
                       key=key, latency_ns=service.latency_ns)
        return AccessResult(service=service)

    def metadata_write(self, key: int, at_time_ns: float) -> AccessResult:
        """Timing/energy of writing one metadata line to NVMM."""
        if not _memo.ENABLED:
            # Reference form (pre-fast-path implementation).
            bank = self._bank_for_metadata(key)
            bank.access_row(self._metadata_row(key))
            service = bank.service(at_time_ns, self.config.write_latency_ns)
            self.energy.charge(EnergyCategory.PCM_WRITE,
                               self.config.write_energy_nj)
            self.counters.incr("metadata_writes")
            obs = _obs.RUN
            if obs is not None:
                obs.record(service.completion_ns, "controller",
                           "metadata_write", key=key,
                           latency_ns=service.latency_ns)
            return AccessResult(service=service)
        bank = self.banks[(key * 2654435761 >> 8) % self._num_banks]
        bank.access_row(~(key >> 3))
        service = bank.service(at_time_ns, self._write_latency_ns)
        buckets = self._energy_buckets
        buckets[_PCM_WRITE] = buckets.get(_PCM_WRITE, 0.0) + self._write_energy_nj
        values = self._counter_values
        values["metadata_writes"] = values.get("metadata_writes", 0) + 1
        obs = _obs.RUN
        if obs is not None:
            obs.record(service.completion_ns, "controller", "metadata_write",
                       key=key, latency_ns=service.latency_ns)
        return AccessResult(service=service)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def bank_utilization(self, horizon_ns: float) -> List[float]:
        """Per-bank busy fraction over ``[0, horizon_ns]``."""
        if horizon_ns <= 0:
            raise ValueError("horizon must be positive")
        return [min(1.0, b.busy_time_ns / horizon_ns) for b in self.banks]

    @property
    def data_reads(self) -> int:
        return self.counters.get("data_reads")

    @property
    def data_writes(self) -> int:
        return self.counters.get("data_writes")

    @property
    def metadata_reads(self) -> int:
        return self.counters.get("metadata_reads")

    @property
    def metadata_writes(self) -> int:
        return self.counters.get("metadata_writes")

    @property
    def total_pcm_writes(self) -> int:
        """All PCM write operations (data + metadata) — the endurance metric."""
        return self.data_writes + self.metadata_writes
