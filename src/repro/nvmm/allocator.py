"""Physical frame allocator for deduplicated NVMM.

Deduplication decouples logical addresses from physical frames: a duplicate
write maps its logical address onto an existing frame instead of consuming a
new one, and when the last reference to a frame is dropped the frame returns
to the free pool.  This allocator hands out frame (line) numbers
sequentially, recycles freed frames LIFO, and tracks occupancy so space
savings are measurable.
"""

from __future__ import annotations

from typing import List, Set

from ..common.errors import OutOfSpaceError


class FrameAllocator:
    """Sequential-with-free-list allocator over ``num_frames`` frames."""

    def __init__(self, num_frames: int) -> None:
        if num_frames <= 0:
            raise ValueError("num_frames must be positive")
        self._num_frames = num_frames
        self._next_fresh = 0
        self._free: List[int] = []
        self._allocated: Set[int] = set()

    @property
    def num_frames(self) -> int:
        return self._num_frames

    @property
    def allocated_count(self) -> int:
        return len(self._allocated)

    @property
    def free_count(self) -> int:
        return self._num_frames - len(self._allocated)

    def allocate(self) -> int:
        """Return a free frame number.

        Raises:
            OutOfSpaceError: when every frame is allocated.
        """
        while self._free:
            frame = self._free.pop()
            if frame not in self._allocated:
                self._allocated.add(frame)
                return frame
        if self._next_fresh >= self._num_frames:
            raise OutOfSpaceError(
                f"all {self._num_frames} frames allocated")
        frame = self._next_fresh
        self._next_fresh += 1
        self._allocated.add(frame)
        return frame

    def free(self, frame: int) -> None:
        """Return a frame to the pool.

        Raises:
            ValueError: when the frame is not currently allocated.
        """
        if frame not in self._allocated:
            raise ValueError(f"frame {frame} is not allocated")
        self._allocated.remove(frame)
        self._free.append(frame)

    def is_allocated(self, frame: int) -> bool:
        return frame in self._allocated

    def utilization(self) -> float:
        """Fraction of frames currently allocated."""
        return len(self._allocated) / self._num_frames
