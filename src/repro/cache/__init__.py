"""CPU-side substrate: set-associative caches, 3-level hierarchy, IPC model."""

from .cpu import CoreTimingModel, relative_ipc
from .hierarchy import (
    CacheHierarchy,
    CPUAccess,
    HierarchyEvent,
    HierarchyStats,
)
from .set_assoc import (
    AccessOutcome,
    CacheLineState,
    Eviction,
    SetAssociativeCache,
)

__all__ = [
    "AccessOutcome",
    "CacheHierarchy",
    "CacheLineState",
    "CoreTimingModel",
    "CPUAccess",
    "Eviction",
    "HierarchyEvent",
    "HierarchyStats",
    "SetAssociativeCache",
    "relative_ipc",
]
