"""Three-level cache hierarchy producing the LLC traffic stream.

The dedup schemes live *behind* the LLC: what they see is (a) read fills on
LLC misses and (b) dirty 64-byte write-backs on LLC evictions.  This module
models an inclusive-enough three-level hierarchy (private L1/L2, shared L3)
that converts a CPU-side load/store stream into that memory-controller
traffic, with per-level hit accounting and hit latencies for the IPC model.

Fidelity note: the hierarchy is a filter model — it tracks residency and
dirtiness exactly but does not model coherence between cores (each core's
private levels are independent, and the shared L3 sees the merged stream),
which matches how the paper's single-socket trace collection treats caches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Tuple

from ..common.config import ProcessorConfig
from ..common.types import AccessType, MemoryRequest
from .set_assoc import Eviction, SetAssociativeCache


@dataclass
class HierarchyStats:
    """Per-level hit/miss tallies and derived hit rates."""

    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    l3_hits: int = 0
    l3_misses: int = 0
    writebacks_to_memory: int = 0
    fills_from_memory: int = 0

    def hit_rates(self) -> Tuple[float, float, float]:
        def rate(h: int, m: int) -> float:
            return h / (h + m) if (h + m) else 0.0
        return (rate(self.l1_hits, self.l1_misses),
                rate(self.l2_hits, self.l2_misses),
                rate(self.l3_hits, self.l3_misses))


@dataclass(frozen=True)
class CPUAccess:
    """One CPU-side load or store, pre-hierarchy."""

    address: int
    write: bool
    data: Optional[bytes] = None
    core: int = 0


@dataclass
class HierarchyEvent:
    """Memory-controller traffic emitted while serving one CPU access.

    ``latency_cycles`` is the cache-side latency of the access (the level it
    hit at); memory latency is added later by the NVMM model for misses.
    """

    cpu_access: CPUAccess
    hit_level: str  # "L1" | "L2" | "L3" | "memory"
    latency_cycles: int
    fill: Optional[MemoryRequest] = None
    writebacks: List[MemoryRequest] = field(default_factory=list)


class CacheHierarchy:
    """Private L1/L2 per core + shared L3, write-back throughout."""

    def __init__(self, config: Optional[ProcessorConfig] = None) -> None:
        self.config = config or ProcessorConfig()
        cores = self.config.cores
        self.l1 = [SetAssociativeCache(self.config.l1) for _ in range(cores)]
        self.l2 = [SetAssociativeCache(self.config.l2) for _ in range(cores)]
        self.l3 = SetAssociativeCache(self.config.l3)
        self.stats = HierarchyStats()
        self._seq = 0

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _mem_request(self, address: int, access: AccessType,
                     data: Optional[bytes], core: int) -> MemoryRequest:
        return MemoryRequest(address=address, access=access, data=data,
                             core=core, seq=self._next_seq())

    def _absorb_eviction(self, eviction: Eviction, core: int,
                         event: HierarchyEvent, *, into_l3: bool) -> None:
        """Push an eviction down one level (L2 -> L3, or L3 -> memory)."""
        if not eviction.dirty or eviction.data is None:
            return
        if into_l3:
            outcome = self.l3.access(eviction.address, write=True,
                                     data=eviction.data)
            if outcome.eviction is not None:
                self._absorb_eviction(outcome.eviction, core, event,
                                      into_l3=False)
        else:
            self.stats.writebacks_to_memory += 1
            event.writebacks.append(self._mem_request(
                eviction.address, AccessType.WRITE, eviction.data, core))

    def access(self, access: CPUAccess) -> HierarchyEvent:
        """Run one CPU access through L1 -> L2 -> L3.

        Returns the event describing where it hit and what memory traffic
        (fill + write-backs) it generated.
        """
        if not 0 <= access.core < self.config.cores:
            raise ValueError(f"core {access.core} out of range")
        core = access.core
        cfg = self.config
        event = HierarchyEvent(cpu_access=access, hit_level="L1",
                               latency_cycles=cfg.l1.latency_cycles)

        l1 = self.l1[core]
        out1 = l1.access(access.address, write=access.write, data=access.data)
        if out1.hit:
            self.stats.l1_hits += 1
            return event
        self.stats.l1_misses += 1
        if out1.eviction is not None and out1.eviction.dirty:
            # L1 victim write-back is absorbed by L2.
            self.l2[core].access(out1.eviction.address, write=True,
                                 data=out1.eviction.data)

        l2 = self.l2[core]
        out2 = l2.access(access.address, write=False)
        if out2.eviction is not None:
            self._absorb_eviction(out2.eviction, core, event, into_l3=True)
        if out2.hit:
            self.stats.l2_hits += 1
            event.hit_level = "L2"
            event.latency_cycles = cfg.l2.latency_cycles
            return event
        self.stats.l2_misses += 1

        out3 = self.l3.access(access.address, write=False)
        if out3.eviction is not None:
            self._absorb_eviction(out3.eviction, core, event, into_l3=False)
        if out3.hit:
            self.stats.l3_hits += 1
            event.hit_level = "L3"
            event.latency_cycles = cfg.l3.latency_cycles
            return event
        self.stats.l3_misses += 1

        # LLC miss: fetch the line from memory.
        self.stats.fills_from_memory += 1
        event.hit_level = "memory"
        event.latency_cycles = cfg.l3.latency_cycles
        event.fill = self._mem_request(access.address, AccessType.READ,
                                       None, core)
        return event

    def drain(self) -> List[MemoryRequest]:
        """Flush all dirty lines to memory (end of trace)."""
        out: List[MemoryRequest] = []
        for core in range(self.config.cores):
            for ev in self.l1[core].flush_dirty():
                if ev.data is not None:
                    self.l2[core].access(ev.address, write=True, data=ev.data)
            for ev in self.l2[core].flush_dirty():
                if ev.data is not None:
                    outcome = self.l3.access(ev.address, write=True,
                                             data=ev.data)
                    if (outcome.eviction is not None
                            and outcome.eviction.dirty
                            and outcome.eviction.data is not None):
                        self.stats.writebacks_to_memory += 1
                        out.append(self._mem_request(
                            outcome.eviction.address, AccessType.WRITE,
                            outcome.eviction.data, core))
        for ev in self.l3.flush_dirty():
            if ev.data is not None:
                self.stats.writebacks_to_memory += 1
                out.append(self._mem_request(ev.address, AccessType.WRITE,
                                             ev.data, 0))
        return out

    def run(self, accesses: Iterable[CPUAccess]) -> Iterator[HierarchyEvent]:
        """Stream a CPU access sequence through the hierarchy."""
        for access in accesses:
            yield self.access(access)
