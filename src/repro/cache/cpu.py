"""Simple in-order CPU timing model producing IPC.

The paper's Figure 14 reports IPC normalized to the Baseline.  IPC in a
memory-bound workload is governed by the memory stall time per instruction,
so a simple in-order model suffices for *relative* IPC between schemes that
differ only in their memory subsystem:

    cycles = instructions + sum(stall_cycles per memory access)

Each memory access stalls the core for its observed latency (cache hit
latency, or the full round-trip to NVMM on an LLC miss), converted to core
cycles.  Store-buffer effects are approximated by charging writes a
configurable visibility fraction of their latency (stores retire from a
store buffer; the core only stalls when the buffer backs up).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..common.config import ProcessorConfig


@dataclass
class CoreTimingModel:
    """Accumulates instruction and stall cycles; reports IPC.

    Args:
        config: processor clock/geometry.
        write_stall_fraction: share of a write's latency that stalls the
            core.  1.0 models a blocking store path (worst case); the
            default 0.35 models a finite store buffer that hides most but
            not all write latency — chosen so that write-path improvements
            show through to IPC the way the paper's Figure 14 shows, without
            claiming full out-of-order fidelity.
    """

    config: ProcessorConfig = field(default_factory=ProcessorConfig)
    write_stall_fraction: float = 0.35
    instructions: int = 0
    stall_cycles: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.write_stall_fraction <= 1.0:
            raise ValueError("write_stall_fraction must be within [0, 1]")

    def retire_instructions(self, count: int) -> None:
        """Account ``count`` non-memory instructions (1 cycle each)."""
        if count < 0:
            raise ValueError("instruction count must be non-negative")
        self.instructions += count

    def memory_stall(self, latency_ns: float, *, is_write: bool) -> None:
        """Account the stall of one memory access observed at the core."""
        if latency_ns < 0:
            raise ValueError("latency must be non-negative")
        cycles = latency_ns / self.config.cycle_ns
        if is_write:
            cycles *= self.write_stall_fraction
        self.stall_cycles += cycles

    @property
    def total_cycles(self) -> float:
        return self.instructions + self.stall_cycles

    @property
    def ipc(self) -> float:
        """Instructions per cycle; 0 when nothing retired."""
        if self.total_cycles == 0:
            return 0.0
        return self.instructions / self.total_cycles

    def merged_with(self, other: "CoreTimingModel") -> "CoreTimingModel":
        """Combine two cores' accounting (for whole-chip IPC)."""
        merged = CoreTimingModel(config=self.config,
                                 write_stall_fraction=self.write_stall_fraction)
        merged.instructions = self.instructions + other.instructions
        merged.stall_cycles = self.stall_cycles + other.stall_cycles
        return merged


def relative_ipc(baseline: CoreTimingModel, other: CoreTimingModel) -> float:
    """IPC of ``other`` normalized to ``baseline`` (Figure 14's metric)."""
    if baseline.ipc == 0:
        raise ValueError("baseline IPC is zero")
    return other.ipc / baseline.ipc
