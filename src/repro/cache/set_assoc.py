"""Generic set-associative cache with LRU replacement.

Used for the L1/L2/L3 data caches of the simulated processor.  The cache is
write-back + write-allocate and tracks line *contents*, because what the
dedup schemes ultimately consume is the stream of dirty 64-byte payloads
evicted from the LLC.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..common.config import CacheLevelConfig
from ..common.types import CACHE_LINE_SIZE


@dataclass
class CacheLineState:
    """Residency state of one cached line."""

    tag: int
    dirty: bool
    data: Optional[bytes]


@dataclass(frozen=True)
class Eviction:
    """A line pushed out of a cache by replacement."""

    address: int
    dirty: bool
    data: Optional[bytes]


@dataclass
class AccessOutcome:
    """Result of one cache access."""

    hit: bool
    eviction: Optional[Eviction] = None


class SetAssociativeCache:
    """One level of set-associative, write-back, write-allocate cache.

    Addresses are byte addresses; the cache extracts set index and tag from
    the line number.  Each set is an :class:`collections.OrderedDict` whose
    order encodes recency (last item = most recently used).
    """

    def __init__(self, config: CacheLevelConfig) -> None:
        self.config = config
        self._num_sets = config.num_sets
        self._assoc = config.associativity
        self._line_size = config.line_size
        self._sets: List["OrderedDict[int, CacheLineState]"] = [
            OrderedDict() for _ in range(self._num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0

    # ------------------------------------------------------------------
    # Address arithmetic
    # ------------------------------------------------------------------

    def _split(self, address: int) -> Tuple[int, int]:
        line = address // self._line_size
        return line % self._num_sets, line // self._num_sets

    def _join(self, set_index: int, tag: int) -> int:
        return (tag * self._num_sets + set_index) * self._line_size

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def access(self, address: int, *, write: bool,
               data: Optional[bytes] = None) -> AccessOutcome:
        """Perform a load or store at ``address``.

        On a miss, the line is allocated (write-allocate), possibly evicting
        the LRU way of its set; the eviction (with dirtiness and payload) is
        reported so the next level can absorb the write-back.

        Args:
            address: byte address (any alignment; the line is derived).
            write: True for stores.
            data: 64-byte payload for stores (the new content of the line).
        """
        if write and data is not None and len(data) != CACHE_LINE_SIZE:
            raise ValueError("store payload must be one cache line")
        set_index, tag = self._split(address)
        ways = self._sets[set_index]
        state = ways.get(tag)
        if state is not None:
            ways.move_to_end(tag)
            self.hits += 1
            if write:
                state.dirty = True
                if data is not None:
                    state.data = bytes(data)
            return AccessOutcome(hit=True)

        self.misses += 1
        eviction = None
        if len(ways) >= self._assoc:
            victim_tag, victim = ways.popitem(last=False)
            self.evictions += 1
            if victim.dirty:
                self.dirty_evictions += 1
            eviction = Eviction(address=self._join(set_index, victim_tag),
                                dirty=victim.dirty, data=victim.data)
        ways[tag] = CacheLineState(tag=tag, dirty=write,
                                   data=bytes(data) if data is not None else None)
        return AccessOutcome(hit=False, eviction=eviction)

    def fill(self, address: int, data: Optional[bytes]) -> None:
        """Install fetched data into an already-resident line (miss fill)."""
        set_index, tag = self._split(address)
        state = self._sets[set_index].get(tag)
        if state is None:
            raise KeyError(f"line for address {address:#x} is not resident")
        if state.data is None:
            state.data = bytes(data) if data is not None else None

    def contains(self, address: int) -> bool:
        set_index, tag = self._split(address)
        return tag in self._sets[set_index]

    def peek(self, address: int) -> Optional[CacheLineState]:
        """Inspect a line without touching recency state."""
        set_index, tag = self._split(address)
        return self._sets[set_index].get(tag)

    def invalidate(self, address: int) -> Optional[Eviction]:
        """Drop a line, returning its write-back if dirty."""
        set_index, tag = self._split(address)
        state = self._sets[set_index].pop(tag, None)
        if state is None:
            return None
        if state.dirty:
            self.dirty_evictions += 1
            return Eviction(address=self._join(set_index, tag), dirty=True,
                            data=state.data)
        return None

    def flush_dirty(self) -> List[Eviction]:
        """Evict every dirty line (end-of-trace drain)."""
        out = []
        for set_index, ways in enumerate(self._sets):
            dirty_tags = [t for t, s in ways.items() if s.dirty]
            for tag in dirty_tags:
                state = ways.pop(tag)
                self.dirty_evictions += 1
                out.append(Eviction(address=self._join(set_index, tag),
                                    dirty=True, data=state.data))
        return out

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)
