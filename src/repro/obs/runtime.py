"""Process-global, run-scoped observation lifecycle.

Mirrors the :mod:`repro.perf.memo` pattern: a module global (``RUN``)
holds the active scope, :func:`begin_run` installs a new scope and
returns the previous one, :func:`end_run` restores it.  Hook sites all
over the simulator read the global directly::

    from repro.obs import runtime as _obs

    obs = _obs.RUN
    if obs is not None:
        obs.record(tick, "controller", "pcm_write", bank=bank)

so with observability disabled (``RUN is None``, the default) each hook
costs one module-attribute load and an ``is None`` test — close enough
to zero that the perf-smoke gate cannot see it.

A scope is **run-scoped**: the engine opens one per
:meth:`~repro.sim.engine.SimulationEngine.run` from
``SystemConfig.observability`` and harvests it into the result when the
run ends.  Nested runs (a sweep worker warming up, a test driving two
engines) stack correctly because begin/end save and restore.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..common.config import ObservabilityConfig
from .metrics import DEFAULT_LATENCY_BOUNDS_NS, MetricsRegistry, ObsHistogram
from .tracing import TraceEvent, TraceRing

__all__ = ["RUN", "RunObservation", "begin_run", "current", "end_run"]


class RunObservation:
    """One run's instrumentation state: registry, trace ring, sampling.

    ``begin_request`` decides once per request whether its trace events
    are kept (``request_id % sample_every == 0``); :meth:`record` then
    bails on one attribute test for unsampled requests.  Metrics are
    never sampled — only the trace is.
    """

    __slots__ = ("config", "registry", "ring", "sample_every",
                 "request_id", "request_sampled",
                 "write_latency_hist", "read_latency_hist")

    def __init__(self, config: ObservabilityConfig) -> None:
        self.config = config
        self.registry = MetricsRegistry()
        self.ring = TraceRing(config.trace_capacity)
        self.sample_every = config.sample_every
        #: Sequence number of the request currently being served; -1
        #: outside any request (e.g. warm-up bookkeeping).
        self.request_id = -1
        self.request_sampled = False
        self.write_latency_hist: ObsHistogram = self.registry.histogram(
            "request_latency_ns", DEFAULT_LATENCY_BOUNDS_NS, op="write")
        self.read_latency_hist: ObsHistogram = self.registry.histogram(
            "request_latency_ns", DEFAULT_LATENCY_BOUNDS_NS, op="read")

    def begin_request(self, request_id: int) -> None:
        self.request_id = request_id
        self.request_sampled = (request_id % self.sample_every == 0)

    def record(self, tick: float, component: str, event: str,
               **payload: object) -> None:
        """Trace an event for the current request, if it is sampled."""
        if self.request_sampled:
            self.ring.record(TraceEvent(
                tick, self.request_id, component, event, payload))

    def emit(self, tick: float, request_id: int, component: str,
             event: str, payload: Optional[Dict[str, object]] = None) -> None:
        """Trace an event unconditionally (sampling bypassed).

        For rare, high-signal occurrences — an LRCU decay pass, an ECC
        fingerprint collision — that must not vanish just because they
        happened during an unsampled request.
        """
        self.ring.record(TraceEvent(
            tick, request_id, component, event, payload or {}))


#: The active run scope, or None when observability is disabled (the
#: default).  Hook sites read this directly; only begin_run/end_run
#: assign it.
RUN: Optional[RunObservation] = None


def current() -> Optional[RunObservation]:
    """The active run scope, if any."""
    return RUN


def begin_run(
        config: Optional[ObservabilityConfig]) -> Optional[RunObservation]:
    """Open a run scope; returns the previous scope for :func:`end_run`.

    With ``config`` absent or disabled the scope is ``None`` and every
    hook site stays on its no-op branch.
    """
    global RUN
    previous = RUN
    if config is not None and config.enabled:
        RUN = RunObservation(config)
    else:
        RUN = None
    return previous


def end_run(
        previous: Optional[RunObservation]) -> Optional[RunObservation]:
    """Close the current scope, restore ``previous``, return the closed
    scope so the caller can harvest its registry and trace."""
    global RUN
    finished = RUN
    RUN = previous
    return finished
