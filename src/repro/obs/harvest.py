"""End-of-run counter migration onto the metrics registry.

This is where the legacy telemetry channels — scheme ``Counter`` bags,
controller counters, EFIT/AMT hit tallies, fingerprint-store splits, and
the kernel fast path's flat ``memo_*`` stats — land in the typed
registry.  The migration is *observational* (DESIGN.md §9's soundness
rule): everything here reads finished tallies after the request loop has
completed, so the registry can never influence a simulated result, and
``SimulationResult.extras`` keeps exporting the same keys as before as a
compatibility view.

Structure-specific stats are duck-typed exactly like
:func:`repro.sim.metrics.collect_extras`, so any scheme that grows an
``efit``/``amt``/``mapping``/``store``/``predictor`` attribute is picked
up automatically.
"""

from __future__ import annotations

from typing import Dict, Mapping

from .runtime import RunObservation

__all__ = ["harvest_run"]


def harvest_run(run: RunObservation, scheme: "object",
                memo_stats: Mapping[str, float],
                vec_stats: Mapping[str, float] = {}) -> None:
    """Populate the run's registry from a finished scheme's tallies.

    Args:
        run: the closed observation scope (after ``end_run``).
        scheme: the :class:`~repro.dedup.base.DedupScheme` that ran
            (typed loosely to avoid an import cycle).
        memo_stats: the kernel fast path's flat ``memo_*`` mapping from
            :func:`repro.perf.end_run` (empty when the fast path is off).
        vec_stats: the vectorized engine's flat ``vec_*`` snapshot
            (:meth:`repro.vec.epoch.VecStats.snapshot`; empty when the
            epoch-batched loop is off).
    """
    registry = run.registry

    counters: Dict[str, int] = scheme.counters.as_dict()  # type: ignore[attr-defined]
    for name in sorted(counters):
        registry.counter(name, component="scheme").inc(counters[name])

    controller = scheme.controller  # type: ignore[attr-defined]
    controller_counters: Dict[str, int] = controller.counters.as_dict()
    for name in sorted(controller_counters):
        registry.counter(name, component="controller").inc(
            controller_counters[name])

    efit = getattr(scheme, "efit", None)
    if efit is not None:
        registry.counter("efit_hits").inc(efit.hits)
        registry.counter("efit_misses").inc(efit.misses)
        registry.counter("efit_evictions").inc(efit.evictions)
        registry.counter("lrcu_decay_passes").inc(efit.decay_passes)
        registry.gauge("efit_hit_rate").set(efit.hit_rate)

    amt = getattr(scheme, "amt", None)
    if amt is not None:
        registry.gauge("amt_hit_rate").set(amt.hit_rate)

    mapping = getattr(scheme, "mapping", None)
    if mapping is not None:
        registry.counter("mapping_cache_hits").inc(mapping.cache_hits)
        registry.counter("mapping_cache_misses").inc(mapping.cache_misses)
        registry.counter("mapping_nvmm_reads").inc(mapping.nvmm_reads)
        registry.counter("mapping_nvmm_writes").inc(mapping.nvmm_writes)
        registry.gauge("mapping_hit_rate").set(mapping.hit_rate)

    store = getattr(scheme, "store", None)
    if store is not None:
        cache_hits, nvmm_hits = store.duplicate_filter_split()
        registry.counter("fp_cache_filtered").inc(cache_hits)
        registry.counter("fp_nvmm_filtered").inc(nvmm_hits)
        registry.counter("fp_nvmm_lookups").inc(store.nvmm_lookup_ops)

    predictor = getattr(scheme, "predictor", None)
    if predictor is not None:
        registry.gauge("prediction_accuracy").set(predictor.stats.accuracy)

    # The fast path's memo_* extras keys become counters under their flat
    # names, so ``repro report`` lists the migrated memo_* series directly.
    for name in sorted(memo_stats):
        registry.counter(name).inc(float(memo_stats[name]))

    # Likewise the vectorized engine's vec_* epoch accounting, except the
    # occupancy ratio, which lands as a gauge (it is a fraction, and
    # summing it across harvests would be meaningless).
    for name in sorted(vec_stats):
        if name.endswith("_occupancy"):
            registry.gauge(name).set(float(vec_stats[name]))
        else:
            registry.counter(name).inc(float(vec_stats[name]))
