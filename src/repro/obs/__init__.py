"""repro.obs — run-scoped metrics, tracing, and report export.

Three pieces (see DESIGN.md §9):

* :mod:`repro.obs.metrics` — a typed registry of labelled counters,
  gauges, and fixed-bucket histograms with a snapshot/reset lifecycle;
* :mod:`repro.obs.tracing` — a bounded ring buffer of per-request
  ``(tick, request_id, component, event, payload)`` records with
  configurable request sampling;
* :mod:`repro.obs.export` — JSONL trace dump and JSON/CSV metric
  reports, surfaced by the ``repro trace`` / ``repro report`` CLI
  subcommands and persisted per-job by the sweep ``ResultStore``.

Everything is gated by ``SystemConfig.observability`` and scoped to one
engine run by :mod:`repro.obs.runtime`; with observability off the whole
layer reduces to a module-global ``is None`` test per hook site and
simulated results are bit-identical (property-tested).
"""

from .export import (OBS_SCHEMA_VERSION, build_report, metrics_to_csv,
                     read_trace_jsonl, write_trace_jsonl)
from .metrics import (DEFAULT_LATENCY_BOUNDS_NS, MetricsRegistry, ObsCounter,
                      ObsGauge, ObsHistogram)
from .runtime import RunObservation, begin_run, current, end_run
from .tracing import TraceEvent, TraceRing

__all__ = [
    "DEFAULT_LATENCY_BOUNDS_NS",
    "MetricsRegistry",
    "OBS_SCHEMA_VERSION",
    "ObsCounter",
    "ObsGauge",
    "ObsHistogram",
    "RunObservation",
    "TraceEvent",
    "TraceRing",
    "begin_run",
    "build_report",
    "current",
    "end_run",
    "metrics_to_csv",
    "read_trace_jsonl",
    "write_trace_jsonl",
]
