"""Typed metrics registry: counters, gauges, and histograms with labels.

Before this layer, each subsystem exported telemetry through its own
ad-hoc channel: the kernel fast path flattened cache statistics into
``SimulationResult.extras`` under ``memo_*`` keys, schemes kept a bag of
:class:`~repro.common.stats.Counter` tallies, and the EFIT/AMT exposed
bare ``hits``/``misses`` attributes.  The registry gives all of them one
typed, labelled namespace with a uniform snapshot/reset lifecycle
(mirroring :mod:`repro.perf.memo`): instruments are registered once per
``(type, name, labels)`` triple, values are zeroed at run start, and a
flat snapshot is exported at run end.

Soundness rule for counter migration (see DESIGN.md §9): the registry is
*observational* — instruments are populated from the same underlying
tallies the legacy channels read, never the other way around, so enabling
observability can never change a simulated result and the legacy
``extras`` keys remain available as a compatibility view.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "DEFAULT_LATENCY_BOUNDS_NS",
    "Labels",
    "MetricsRegistry",
    "ObsCounter",
    "ObsGauge",
    "ObsHistogram",
]

#: Canonical label form: sorted ``(key, value)`` pairs.
Labels = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds for latencies in nanoseconds.
#: Spans on-chip probe latencies (~1 ns) through heavily queued PCM
#: accesses; the implicit final bucket is ``+inf``.
DEFAULT_LATENCY_BOUNDS_NS: Tuple[float, ...] = (
    25.0, 50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0, 6400.0, 12800.0,
)


def _canonical_labels(labels: Dict[str, str]) -> Labels:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def format_labels(labels: Labels) -> str:
    """Render labels as the conventional ``{k="v",...}`` suffix."""
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class ObsCounter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0


class ObsGauge:
    """A point-in-time value (hit rates, cache sizes, IPC)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = 0.0


class ObsHistogram:
    """A fixed-bucket histogram with exact count/sum/min/max.

    Buckets are cumulative-style upper bounds (the final ``+inf`` bucket
    is implicit), so the memory footprint is constant regardless of how
    many samples are observed — unlike
    :class:`~repro.common.stats.LatencyRecorder`, which retains raw
    samples for percentile queries.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count",
                 "total", "_min", "_max")

    def __init__(self, name: str, labels: Labels,
                 bounds: Tuple[float, ...] = DEFAULT_LATENCY_BOUNDS_NS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a sorted, "
                             "non-empty sequence")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def min(self) -> float:
        """Smallest observed value; ``NaN`` when empty."""
        return self._min if self.count else math.nan

    @property
    def max(self) -> float:
        """Largest observed value; ``NaN`` when empty."""
        return self._max if self.count else math.nan

    @property
    def mean(self) -> float:
        """Mean of observed values; ``NaN`` when empty."""
        return self.total / self.count if self.count else math.nan

    def reset(self) -> None:
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf


Instrument = Union[ObsCounter, ObsGauge, ObsHistogram]

#: Row type of :meth:`MetricsRegistry.snapshot` (JSON-serializable).
MetricRow = Dict[str, object]


class MetricsRegistry:
    """Registered instruments keyed by ``(type, name, labels)``.

    The first caller of :meth:`counter`/:meth:`gauge`/:meth:`histogram`
    for a key creates the instrument; later callers share it.  Registering
    the same ``(name, labels)`` under two different instrument types is an
    error — one name means one kind of measurement.
    """

    def __init__(self) -> None:
        self._instruments: "Dict[Tuple[str, Labels], Instrument]" = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def _get(self, kind: type, name: str,
             labels: Dict[str, str],
             bounds: Optional[Tuple[float, ...]] = None) -> Instrument:
        key = (name, _canonical_labels(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            if bounds is not None:
                instrument = ObsHistogram(key[0], key[1], bounds)
            else:
                instrument = kind(key[0], key[1])
            self._instruments[key] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r}{format_labels(key[1])} already registered "
                f"as {type(instrument).__name__}, not {kind.__name__}")
        return instrument

    def counter(self, name: str, **labels: str) -> ObsCounter:
        instrument = self._get(ObsCounter, name, labels)
        assert isinstance(instrument, ObsCounter)
        return instrument

    def gauge(self, name: str, **labels: str) -> ObsGauge:
        instrument = self._get(ObsGauge, name, labels)
        assert isinstance(instrument, ObsGauge)
        return instrument

    def histogram(self, name: str,
                  bounds: Tuple[float, ...] = DEFAULT_LATENCY_BOUNDS_NS,
                  **labels: str) -> ObsHistogram:
        instrument = self._get(ObsHistogram, name, labels, bounds=bounds)
        assert isinstance(instrument, ObsHistogram)
        return instrument

    def instruments(self) -> Iterable[Instrument]:
        """All registered instruments, sorted by (name, labels)."""
        return [self._instruments[key]
                for key in sorted(self._instruments)]

    def reset(self) -> None:
        """Zero every instrument's value (registrations are kept)."""
        for instrument in self._instruments.values():
            instrument.reset()

    def clear(self) -> None:
        """Drop every registration entirely."""
        self._instruments.clear()

    # ------------------------------------------------------------------
    # Export views
    # ------------------------------------------------------------------

    def snapshot(self) -> List[MetricRow]:
        """JSON-serializable rows, one per instrument, sorted by key.

        Counter/gauge rows carry ``value``; histogram rows carry
        ``count``/``sum``/``min``/``max``/``buckets`` (min/max are ``None``
        when the histogram is empty — never a fake 0.0; see the
        empty-recorder percentile rule in :mod:`repro.common.stats`).
        """
        rows: List[MetricRow] = []
        for instrument in self.instruments():
            row: MetricRow = {
                "name": instrument.name,
                "labels": dict(instrument.labels),
            }
            if isinstance(instrument, ObsCounter):
                row["type"] = "counter"
                row["value"] = instrument.value
            elif isinstance(instrument, ObsGauge):
                row["type"] = "gauge"
                row["value"] = instrument.value
            else:
                row["type"] = "histogram"
                row["count"] = instrument.count
                row["sum"] = instrument.total
                row["min"] = (None if instrument.count == 0
                              else instrument._min)
                row["max"] = (None if instrument.count == 0
                              else instrument._max)
                row["buckets"] = [
                    {"le": ("+inf" if i == len(instrument.bounds)
                            else instrument.bounds[i]),
                     "count": count}
                    for i, count in enumerate(instrument.bucket_counts)]
            rows.append(row)
        return rows

    def as_flat(self) -> Dict[str, float]:
        """Counters and gauges as ``{"name{labels}": value}``.

        Histograms contribute their ``_count`` and ``_sum`` series.  This
        is the view ``repro report`` prints and the compatibility bridge
        back to the legacy flat ``extras`` mapping.
        """
        flat: Dict[str, float] = {}
        for instrument in self.instruments():
            key = instrument.name + format_labels(instrument.labels)
            if isinstance(instrument, ObsHistogram):
                flat[key + "_count"] = float(instrument.count)
                flat[key + "_sum"] = instrument.total
            else:
                flat[key] = instrument.value
        return flat
