"""Exporters for observation data: JSONL traces, JSON/CSV metric reports.

The on-disk forms are deliberately boring:

* a **trace** is JSON Lines — one :class:`~repro.obs.tracing.TraceEvent`
  dict per line, append-friendly and greppable;
* a **metrics report** is either the JSON snapshot rows of
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` or a flat CSV with
  one row per instrument.

Empty histograms export ``min``/``max`` as ``None`` (JSON) / empty cells
(CSV), never 0.0 — the same sentinel rule as the empty-recorder
percentile fix in :mod:`repro.common.stats`.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import IO, Dict, Iterable, List, Union

from .metrics import MetricRow, format_labels
from .tracing import TraceEvent

__all__ = [
    "OBS_SCHEMA_VERSION",
    "build_report",
    "metrics_to_csv",
    "read_trace_jsonl",
    "write_trace_jsonl",
]

#: Version stamp carried by every persisted obs report.
OBS_SCHEMA_VERSION = 1

PathOrIO = Union[str, Path, IO[str]]


def build_report(run: "object") -> Dict[str, object]:
    """The JSON-serializable report for one closed run scope.

    Takes the :class:`~repro.obs.runtime.RunObservation` returned by
    ``end_run`` (typed loosely to avoid an import cycle with runtime).
    """
    registry = run.registry  # type: ignore[attr-defined]
    ring = run.ring  # type: ignore[attr-defined]
    return {
        "obs_schema_version": OBS_SCHEMA_VERSION,
        "metrics": registry.snapshot(),
        "trace": [event.to_dict() for event in ring],
        "trace_stats": ring.stats(),
    }


def _open_for(target: PathOrIO, mode: str) -> "tuple[IO[str], bool]":
    if isinstance(target, (str, Path)):
        return open(target, mode, encoding="utf-8"), True
    return target, False


def write_trace_jsonl(events: Iterable[TraceEvent],
                      target: PathOrIO) -> int:
    """Write events as JSON Lines; returns the number written."""
    stream, owned = _open_for(target, "w")
    count = 0
    try:
        for event in events:
            stream.write(json.dumps(event.to_dict(), sort_keys=True))
            stream.write("\n")
            count += 1
    finally:
        if owned:
            stream.close()
    return count


def read_trace_jsonl(source: PathOrIO) -> List[TraceEvent]:
    """Read a JSONL trace back into :class:`TraceEvent` records."""
    stream, owned = _open_for(source, "r")
    try:
        events: List[TraceEvent] = []
        for line in stream:
            line = line.strip()
            if not line:
                continue
            events.append(TraceEvent.from_dict(json.loads(line)))
        return events
    finally:
        if owned:
            stream.close()


def metrics_to_csv(rows: List[MetricRow]) -> str:
    """Flat CSV text for snapshot rows: one line per instrument.

    Histogram rows fill ``count``/``sum``/``min``/``max``; counter and
    gauge rows fill ``value``.  Empty histogram min/max export as empty
    cells, not 0.0.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["name", "labels", "type", "value",
                     "count", "sum", "min", "max"])
    for row in rows:
        labels = format_labels(
            tuple(sorted(row.get("labels", {}).items())))  # type: ignore[union-attr]
        kind = row["type"]
        if kind == "histogram":
            low = row["min"]
            high = row["max"]
            writer.writerow([
                row["name"], labels, kind, "",
                row["count"], row["sum"],
                "" if low is None else low,
                "" if high is None else high,
            ])
        else:
            writer.writerow([row["name"], labels, kind,
                             row["value"], "", "", "", ""])
    return buffer.getvalue()
