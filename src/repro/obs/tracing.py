"""Bounded per-request event tracing.

A trace is a sequence of :class:`TraceEvent` records — ``(tick,
request_id, component, event, payload)`` — captured into a
:class:`TraceRing`, a fixed-capacity ring buffer.  The ring bounds memory
under adversarial request floods: once full, recording a new event evicts
the oldest one, and the ``dropped`` counter says how many were lost.
Sampling (keep one request in every *N*) is decided per request by the
run scope in :mod:`repro.obs.runtime`, not here, so the ring itself stays
a dumb bounded container.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, NamedTuple, Optional


class TraceEvent(NamedTuple):
    """One structured trace record.

    ``tick`` is the simulated time in nanoseconds at which the event was
    observed; ``request_id`` is the trace sequence number of the request
    being served (or ``-1`` for events outside any request, e.g. an LRCU
    decay pass triggered by background refresh).  ``payload`` is a small
    JSON-serializable dict of event-specific fields.
    """

    tick: float
    request_id: int
    component: str
    event: str
    payload: Dict[str, object]

    def to_dict(self) -> Dict[str, object]:
        return {
            "tick": self.tick,
            "request_id": self.request_id,
            "component": self.component,
            "event": self.event,
            "payload": self.payload,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TraceEvent":
        payload = data.get("payload") or {}
        if not isinstance(payload, dict):
            raise ValueError(f"trace payload must be a dict, "
                             f"got {type(payload).__name__}")
        return cls(
            tick=float(data["tick"]),  # type: ignore[arg-type]
            request_id=int(data["request_id"]),  # type: ignore[arg-type]
            component=str(data["component"]),
            event=str(data["event"]),
            payload=payload,
        )


class TraceRing:
    """Fixed-capacity ring of :class:`TraceEvent` records.

    ``capacity`` bounds live memory; ``recorded`` counts every event ever
    offered, so ``dropped = recorded - len(ring)`` exposes eviction
    pressure without retaining the evicted events.
    """

    __slots__ = ("capacity", "recorded", "_events")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"trace capacity must be positive, "
                             f"got {capacity}")
        self.capacity = capacity
        self.recorded = 0
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def dropped(self) -> int:
        return self.recorded - len(self._events)

    def record(self, event: TraceEvent) -> None:
        self.recorded += 1
        self._events.append(event)

    def emit(self, tick: float, request_id: int, component: str,
             event: str, payload: Optional[Dict[str, object]] = None) -> None:
        """Convenience wrapper building the event record in place."""
        self.recorded += 1
        self._events.append(
            TraceEvent(tick, request_id, component, event, payload or {}))

    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._events)

    def clear(self) -> None:
        self.recorded = 0
        self._events.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "capacity": self.capacity,
            "recorded": self.recorded,
            "retained": len(self._events),
            "dropped": self.dropped,
        }
