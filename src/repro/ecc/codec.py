"""Cache-line ECC: per-word SEC-DED codes concatenated into a 64-bit value.

A 64-byte cache line is protected word-by-word: each of the eight 8-byte
words carries an 8-bit SEC-DED ECC (:mod:`repro.ecc.hamming`), and the eight
ECC bytes concatenate into the line's 64-bit ECC — exactly the layout the
paper describes ("the 8-Byte word is matched with an 8-bit ECC ... a 64-Byte
cache line generates a 64-bit ECC").

ESD reuses this 64-bit value as a *free* fingerprint.  Because the code is a
deterministic function of the data, differing ECC values prove the lines
differ; equal ECC values imply similarity but not identity (the code is
linear with a 2^512 / 2^64 ratio of inputs to fingerprints), which is why
ESD confirms matches with a byte-by-byte comparison.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple

from ..common.errors import UncorrectableError
from ..common.types import CACHE_LINE_SIZE, WORDS_PER_LINE, validate_line
from ..perf import memo as _memo
from . import hamming

_WORD_STRUCT = struct.Struct("<8Q")

# Content-addressed memo caches (:mod:`repro.perf.memo`).  All three codec
# kernels are pure; ``decode_line`` is keyed on ``(data, ecc)`` so a
# fault-injected line (corrupted data against a clean ECC, or vice versa)
# can never hit a stale clean-decode result — equal keys imply equal
# decode outcomes by purity.
_LINE_ECC_CACHE = _memo.get_cache("line_ecc", 1 << 16)
_WORD_ECCS_CACHE = _memo.get_cache("word_eccs", 1 << 14)
_DECODE_CACHE = _memo.get_cache("decode_line", 1 << 16)


def line_ecc_uncached(data: bytes) -> int:
    """The :func:`line_ecc` computation with memoization bypassed.

    Word *i*'s 8-bit ECC occupies bits ``8*i .. 8*i+7`` of the result.
    Implementation note: words are little-endian, so byte *j* of word *i* is
    ``data[8*i + j]``; the per-byte linearity of the code lets us index the
    encoder tables on the raw bytes with no intermediate integer packing.
    """
    validate_line(data)
    tables = hamming._ENCODE_TABLES
    ecc = 0
    for i in range(WORDS_PER_LINE):
        base = 8 * i
        word_ecc = (tables[0][data[base]]
                    ^ tables[1][data[base + 1]]
                    ^ tables[2][data[base + 2]]
                    ^ tables[3][data[base + 3]]
                    ^ tables[4][data[base + 4]]
                    ^ tables[5][data[base + 5]]
                    ^ tables[6][data[base + 6]]
                    ^ tables[7][data[base + 7]])
        ecc |= word_ecc << (8 * i)
    return ecc


def line_ecc(data: bytes) -> int:
    """Compute the 64-bit ECC fingerprint of a 64-byte cache line.

    Memoized on the line content when the :mod:`repro.perf` fast path is
    enabled (cache hits skip re-validation: every cached key is a
    previously validated 64-byte line, and any invalid input misses).
    """
    if _memo.ENABLED:
        cached = _LINE_ECC_CACHE.get(data)
        if cached is not None:
            return cached
        ecc = line_ecc_uncached(data)
        _LINE_ECC_CACHE.put(data, ecc)
        return ecc
    return line_ecc_uncached(data)


def prime_line_ecc_batch(contents) -> int:
    """Batch-compute and cache line ECCs for uncached contents.

    The vectorized engine's epoch front end calls this with an epoch's
    unique write contents; the bit-parallel kernel
    (:func:`repro.vec.kernels.line_ecc_batch`) computes every uncached
    value in one numpy pass, and subsequent scalar :func:`line_ecc` calls
    hit the primed entries.  Each batch-computed entry is charged as a
    cache *miss* — the work was done, just not served from the cache — so
    memo statistics keep counting actual computations.

    No-op (returns 0) when the fast path is disabled: there is no cache to
    prime, and the scalar kernel would bypass it anyway.

    Returns:
        The number of entries computed and inserted.
    """
    if not _memo.ENABLED:
        return 0
    cache = _LINE_ECC_CACHE
    fresh = [validate_line(data) for data in contents if data not in cache]
    if not fresh:
        return 0
    from ..vec.kernels import line_ecc_batch  # local: keep numpy off codec's import path
    for data, ecc in zip(fresh, line_ecc_batch(fresh)):
        cache.misses += 1
        cache.put(data, ecc)
    return len(fresh)


def line_ecc_bytes(data: bytes) -> bytes:
    """The line ECC as 8 little-endian bytes (one per protected word)."""
    return line_ecc(data).to_bytes(WORDS_PER_LINE, "little")


def word_eccs(data: bytes) -> Tuple[int, ...]:
    """Per-word 8-bit ECC values of a cache line (memoized on content)."""
    if _memo.ENABLED:
        cached = _WORD_ECCS_CACHE.get(data)
        if cached is not None:
            return cached
    validate_line(data)
    eccs = tuple(hamming.encode_word(w) for w in _WORD_STRUCT.unpack(data))
    if _memo.ENABLED:
        _WORD_ECCS_CACHE.put(data, eccs)
    return eccs


@dataclass(frozen=True)
class LineDecodeResult:
    """Outcome of decoding a full cache line against its stored ECC."""

    data: bytes
    corrected_words: Tuple[int, ...]

    @property
    def corrected(self) -> bool:
        return bool(self.corrected_words)


def decode_line(data: bytes, ecc: int) -> LineDecodeResult:
    """Decode a 64-byte line against its stored 64-bit ECC.

    Corrects up to one flipped bit per 8-byte word.

    Memoized on ``(data, ecc)`` — both arguments, so corrupted inputs from
    :mod:`repro.ecc.faults` key differently from clean ones and always
    re-decode.  Uncorrectable (raising) decodes are never cached.  The
    returned :class:`LineDecodeResult` is frozen, so one instance is safely
    shared between hits.

    Raises:
        UncorrectableError: when any word exhibits a double-bit error; the
            exception's ``word_index`` names the failing word.
    """
    if _memo.ENABLED:
        cached = _DECODE_CACHE.get((data, ecc))
        if cached is not None:
            return cached
        result = decode_line_uncached(data, ecc)
        _DECODE_CACHE.put((data, ecc), result)
        return result
    return decode_line_uncached(data, ecc)


def decode_line_uncached(data: bytes, ecc: int) -> LineDecodeResult:
    """The :func:`decode_line` computation with memoization bypassed."""
    validate_line(data)
    if not 0 <= ecc < (1 << 64):
        raise ValueError("line ECC must be a 64-bit value")
    words = list(_WORD_STRUCT.unpack(data))
    corrected: List[int] = []
    for i in range(WORDS_PER_LINE):
        word_ecc = (ecc >> (8 * i)) & 0xFF
        try:
            result = hamming.decode_word(words[i], word_ecc)
        except UncorrectableError as exc:
            raise UncorrectableError(
                f"double-bit error in word {i}", word_index=i) from exc
        if result.corrected:
            corrected.append(i)
        words[i] = result.word
    return LineDecodeResult(data=_WORD_STRUCT.pack(*words),
                            corrected_words=tuple(corrected))


class ECCFingerprintEngine:
    """Fingerprint adapter exposing line ECC under the fingerprint interface.

    Unlike hash fingerprints, the ECC already exists when a line reaches the
    memory controller (it travels with the line on eviction from an
    ECC-protected LLC), so its *marginal* latency and energy on the write
    path are zero — the property ESD exploits.
    """

    name = "ecc"
    #: Fingerprint width in bits.
    bits = 64
    #: Marginal cost: the ECC is computed by existing controller hardware
    #: regardless of deduplication, so ESD pays nothing extra.
    latency_ns = 0.0
    energy_nj = 0.0

    def fingerprint(self, data: bytes) -> int:
        # Memoized via line_ecc's content-addressed cache (repro.perf).
        return line_ecc(data)

    def prime_batch(self, contents) -> int:
        """Bit-parallel epoch priming (see :func:`prime_line_ecc_batch`)."""
        return prime_line_ecc_batch(contents)

    def fingerprint_size_bytes(self) -> int:
        return self.bits // 8


def verify_distinct(data_a: bytes, data_b: bytes) -> bool:
    """True when differing ECC proves the lines distinct.

    This is the soundness direction of ECC-based filtering: since the ECC is
    a function of the data, ``ecc(a) != ecc(b)`` implies ``a != b``.  (The
    converse does not hold — collisions exist — hence the byte-by-byte
    confirmation step.)
    """
    if data_a == data_b:
        return False
    return line_ecc(data_a) != line_ecc(data_b)
