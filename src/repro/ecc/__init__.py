"""ECC substrate: SEC-DED Hamming(72,64) per-word codes and line fingerprints."""

from .codec import (
    ECCFingerprintEngine,
    LineDecodeResult,
    decode_line,
    decode_line_uncached,
    line_ecc,
    line_ecc_bytes,
    line_ecc_uncached,
    verify_distinct,
    word_eccs,
)
from .faults import (
    FaultOutcome,
    RandomFaultInjector,
    flip_bit,
    flip_bits,
    inject_and_decode,
)
from .hamming import DecodeResult, decode_word, encode_word, syndrome

__all__ = [
    "DecodeResult",
    "ECCFingerprintEngine",
    "FaultOutcome",
    "LineDecodeResult",
    "RandomFaultInjector",
    "decode_line",
    "decode_line_uncached",
    "decode_word",
    "encode_word",
    "flip_bit",
    "flip_bits",
    "inject_and_decode",
    "line_ecc",
    "line_ecc_bytes",
    "line_ecc_uncached",
    "syndrome",
    "verify_distinct",
    "word_eccs",
]
