"""SEC-DED Hamming(72,64) codec for 64-bit words.

The paper's ECC granularity is *per word*: each 8-byte (64-bit) word of a
cache line is protected by an 8-bit ECC, and the eight per-word codes
concatenate into the 64-bit line fingerprint ESD reuses for similarity
identification.

This module implements the classic extended Hamming code: a Hamming(71,64)
single-error-correcting code (7 check bits over codeword positions 1..71,
check bits at power-of-two positions) plus one overall parity bit, yielding
single-error correction and double-error detection (SEC-DED).

The encoder is a linear map: check bit *j* is the parity of the data bits
whose codeword positions have bit *j* set.  We precompute one 64-bit mask per
check bit so encoding a word is seven AND+popcount operations, fast enough to
fingerprint millions of cache lines per simulation run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..common.errors import UncorrectableError
from ..perf import memo as _memo

#: Number of check bits of the inner Hamming(71,64) code.
NUM_CHECK_BITS = 7

#: Codeword length of the inner code (64 data + 7 check positions).
CODEWORD_LEN = 71

#: Width of the full per-word ECC (7 Hamming checks + 1 overall parity).
ECC_BITS = 8


def _parity(x: int) -> int:
    """Parity (popcount mod 2) of a non-negative integer."""
    return x.bit_count() & 1


def _build_layout() -> Tuple[List[int], List[int]]:
    """Compute the codeword layout of Hamming(71,64).

    Returns:
        ``(data_positions, check_masks)`` where ``data_positions[i]`` is the
        1-based codeword position of data bit *i*, and ``check_masks[j]`` is
        the 64-bit mask of data bits covered by check bit *j* (the check bit
        at codeword position ``2**j``).
    """
    data_positions: List[int] = []
    pos = 1
    while len(data_positions) < 64:
        if pos & (pos - 1) != 0:  # not a power of two -> data position
            data_positions.append(pos)
        pos += 1
    if data_positions[-1] > CODEWORD_LEN:
        raise AssertionError("layout exceeded codeword length")

    check_masks = [0] * NUM_CHECK_BITS
    for data_bit, position in enumerate(data_positions):
        for j in range(NUM_CHECK_BITS):
            if position & (1 << j):
                check_masks[j] |= 1 << data_bit
    return data_positions, check_masks


_DATA_POSITIONS, _CHECK_MASKS = _build_layout()

#: Map 1-based codeword position -> data bit index (or -1 for check bits).
_POSITION_TO_DATA_BIT = [-1] * (CODEWORD_LEN + 1)
for _i, _p in enumerate(_DATA_POSITIONS):
    _POSITION_TO_DATA_BIT[_p] = _i


def _encode_word_masks(word: int) -> int:
    """Reference encoder: compute the ECC byte directly from parity masks."""
    ecc = 0
    checks_parity = 0
    for j in range(NUM_CHECK_BITS):
        bit = _parity(word & _CHECK_MASKS[j])
        ecc |= bit << j
        checks_parity ^= bit
    overall = _parity(word) ^ checks_parity
    ecc |= overall << NUM_CHECK_BITS
    return ecc


def _build_encode_tables() -> Tuple[Tuple[int, ...], ...]:
    """Per-byte contribution tables for the fast encoder.

    The ECC byte is a GF(2)-linear function of the data word, so it
    decomposes exactly into the XOR of eight per-byte contributions:
    ``ecc(w) = T[0][b0] ^ T[1][b1] ^ ... ^ T[7][b7]``.
    """
    tables = []
    for byte_index in range(8):
        tables.append(tuple(
            _encode_word_masks(value << (8 * byte_index))
            for value in range(256)))
    return tuple(tables)


_ENCODE_TABLES = _build_encode_tables()

#: Parity (popcount mod 2) of every byte value; with the ECC byte in hand,
#: a syndrome needs only byte-sized parities, so one 256-entry table
#: replaces the seven mask-AND-popcount passes of the reference decoder.
_BYTE_PARITY = bytes(_parity(value) for value in range(256))

_CHECK_BITS_MASK = (1 << NUM_CHECK_BITS) - 1


def encode_word(word: int) -> int:
    """Compute the 8-bit SEC-DED ECC of a 64-bit word.

    Bit layout of the returned byte: bits 0..6 are the Hamming check bits
    (for codeword positions 1, 2, 4, ..., 64); bit 7 is the overall parity
    of the 71-bit inner codeword (data bits plus check bits).

    Args:
        word: the data word, ``0 <= word < 2**64``.

    Returns:
        The ECC byte, ``0 <= ecc < 256``.
    """
    if not 0 <= word < (1 << 64):
        raise ValueError("word must be a 64-bit unsigned integer")
    if not _memo.ENABLED:
        # Reference path: compute the checks directly from the coverage
        # masks (the obviously-correct form the tables are derived from).
        return _encode_word_masks(word)
    t = _ENCODE_TABLES
    return (t[0][word & 0xFF]
            ^ t[1][(word >> 8) & 0xFF]
            ^ t[2][(word >> 16) & 0xFF]
            ^ t[3][(word >> 24) & 0xFF]
            ^ t[4][(word >> 32) & 0xFF]
            ^ t[5][(word >> 40) & 0xFF]
            ^ t[6][(word >> 48) & 0xFF]
            ^ t[7][(word >> 56) & 0xFF])


def syndrome(word: int, ecc: int) -> Tuple[int, int]:
    """Compute the decoding syndrome for a received (word, ecc) pair.

    Returns:
        ``(position_syndrome, parity_syndrome)``.  ``position_syndrome`` is
        the XOR of stored and recomputed check bits — under a single-bit
        error it equals the 1-based codeword position of the flipped bit.
        ``parity_syndrome`` is the overall parity of the *received* 72-bit
        codeword (data word, stored check bits, stored parity bit); it is 0
        for an intact codeword, flips to 1 under any single-bit error, and
        returns to 0 under a double-bit error — which is exactly how SEC-DED
        distinguishes the two cases.

    With the :mod:`repro.perf` fast path enabled this runs table-driven
    (byte-indexed encode + parity lookups); disabled, it falls back to the
    mask-and-popcount :func:`syndrome_reference`.  Both are bit-identical.
    """
    if not _memo.ENABLED:
        return syndrome_reference(word, ecc)
    if not 0 <= ecc < (1 << ECC_BITS):
        raise ValueError("ecc must be an 8-bit value")
    if not 0 <= word < (1 << 64):
        raise ValueError("word must be a 64-bit unsigned integer")
    # Table-driven: re-encoding the word yields the recomputed check bits
    # (bits 0..6) and, in bit 7, parity(word) XOR parity(check bits) — so
    # parity(word) folds out of the encode byte with one byte-parity lookup
    # instead of a 64-bit popcount.
    t = _ENCODE_TABLES
    encoded = (t[0][word & 0xFF]
               ^ t[1][(word >> 8) & 0xFF]
               ^ t[2][(word >> 16) & 0xFF]
               ^ t[3][(word >> 24) & 0xFF]
               ^ t[4][(word >> 32) & 0xFF]
               ^ t[5][(word >> 40) & 0xFF]
               ^ t[6][(word >> 48) & 0xFF]
               ^ t[7][(word >> 56) & 0xFF])
    recomputed_checks = encoded & _CHECK_BITS_MASK
    stored_checks = ecc & _CHECK_BITS_MASK
    stored_overall = (ecc >> NUM_CHECK_BITS) & 1
    position_syndrome = recomputed_checks ^ stored_checks
    word_parity = ((encoded >> NUM_CHECK_BITS)
                   ^ _BYTE_PARITY[recomputed_checks]) & 1
    parity_syndrome = (word_parity ^ _BYTE_PARITY[stored_checks]
                       ^ stored_overall)
    return position_syndrome, parity_syndrome


def syndrome_reference(word: int, ecc: int) -> Tuple[int, int]:
    """Mask-and-popcount reference syndrome (kept for parity tests).

    Computes the syndrome directly from the seven coverage masks; the
    table-driven :func:`syndrome` must agree with it bit-for-bit on every
    input.
    """
    if not 0 <= ecc < (1 << ECC_BITS):
        raise ValueError("ecc must be an 8-bit value")
    if not 0 <= word < (1 << 64):
        raise ValueError("word must be a 64-bit unsigned integer")
    stored_checks = ecc & _CHECK_BITS_MASK
    stored_overall = (ecc >> NUM_CHECK_BITS) & 1
    recomputed_checks = 0
    for j in range(NUM_CHECK_BITS):
        recomputed_checks |= _parity(word & _CHECK_MASKS[j]) << j
    position_syndrome = recomputed_checks ^ stored_checks
    parity_syndrome = _parity(word) ^ _parity(stored_checks) ^ stored_overall
    return position_syndrome, parity_syndrome


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding one protected word."""

    word: int
    corrected: bool
    #: 1-based codeword position of the corrected bit (0 when no correction;
    #: power-of-two positions denote a flipped *check* bit, which leaves the
    #: data word untouched).
    corrected_position: int = 0


def decode_word(word: int, ecc: int) -> DecodeResult:
    """Decode a received 64-bit word against its stored 8-bit ECC.

    Corrects any single-bit error (in the data word or in the check bits)
    and detects double-bit errors.

    Raises:
        UncorrectableError: when the syndrome indicates a double-bit error
            or an invalid (out-of-range) error position.
    """
    pos, parity_bit = syndrome(word, ecc)
    if pos == 0 and parity_bit == 0:
        return DecodeResult(word=word, corrected=False)
    if pos == 0 and parity_bit == 1:
        # The overall parity bit itself flipped; data is intact.
        return DecodeResult(word=word, corrected=True, corrected_position=0)
    if parity_bit == 0:
        # Nonzero position syndrome with even parity => two bits flipped.
        raise UncorrectableError("double-bit error detected")
    if pos > CODEWORD_LEN:
        raise UncorrectableError(f"invalid error position {pos}")
    data_bit = _POSITION_TO_DATA_BIT[pos]
    if data_bit < 0:
        # A check bit flipped; the data word is intact.
        return DecodeResult(word=word, corrected=True, corrected_position=pos)
    return DecodeResult(word=word ^ (1 << data_bit), corrected=True,
                        corrected_position=pos)


def check_masks() -> Tuple[int, ...]:
    """The seven 64-bit coverage masks (exposed for tests/analysis)."""
    return tuple(_CHECK_MASKS)


def data_positions() -> Tuple[int, ...]:
    """1-based codeword positions of the 64 data bits (for tests/analysis)."""
    return tuple(_DATA_POSITIONS)
