"""Bit-error injection utilities for exercising the ECC substrate.

These helpers flip bits in cache lines so tests and examples can demonstrate
the detection/correction behaviour the dedup pipeline relies on: ESD's reuse
of the ECC as a fingerprint must not compromise the code's original
error-checking function, so we keep that function observable and tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..common.errors import UncorrectableError
from ..common.types import CACHE_LINE_SIZE, validate_line
from .codec import LineDecodeResult, decode_line, line_ecc


def flip_bit(data: bytes, bit_index: int) -> bytes:
    """Return a copy of ``data`` with one bit flipped.

    Args:
        data: a 64-byte cache line.
        bit_index: 0-based bit position, ``0 <= bit_index < 512``.
    """
    validate_line(data)
    if not 0 <= bit_index < CACHE_LINE_SIZE * 8:
        raise ValueError(f"bit index out of range: {bit_index}")
    buf = bytearray(data)
    buf[bit_index // 8] ^= 1 << (bit_index % 8)
    return bytes(buf)


def flip_bits(data: bytes, bit_indices: Sequence[int]) -> bytes:
    """Flip several distinct bit positions in a cache line."""
    if len(set(bit_indices)) != len(bit_indices):
        raise ValueError("bit indices must be distinct")
    out = data
    for idx in bit_indices:
        out = flip_bit(out, idx)
    return out


@dataclass(frozen=True)
class FaultOutcome:
    """Result of one fault-injection experiment on a protected line."""

    injected_bits: Tuple[int, ...]
    corrected: bool
    detected_uncorrectable: bool
    recovered: bool

    @property
    def silent_corruption(self) -> bool:
        """Error neither corrected nor flagged — must not occur for <=1-bit
        faults per word, and SEC-DED guarantees detection of 2-bit faults."""
        return bool(self.injected_bits) and not (
            self.corrected or self.detected_uncorrectable)


def inject_and_decode(data: bytes, bit_indices: Sequence[int]) -> FaultOutcome:
    """Protect a line, flip ``bit_indices``, decode, and classify the result."""
    ecc = line_ecc(data)
    corrupted = flip_bits(data, list(bit_indices))
    try:
        result: LineDecodeResult = decode_line(corrupted, ecc)
    except UncorrectableError:
        return FaultOutcome(injected_bits=tuple(bit_indices), corrected=False,
                            detected_uncorrectable=True, recovered=False)
    return FaultOutcome(
        injected_bits=tuple(bit_indices),
        corrected=result.corrected,
        detected_uncorrectable=False,
        recovered=result.data == data,
    )


class RandomFaultInjector:
    """Seeded random single/double-bit fault campaigns over cache lines."""

    def __init__(self, seed: int = 7) -> None:
        self._rng = np.random.default_rng(seed)

    def random_line(self) -> bytes:
        return bytes(self._rng.integers(0, 256, CACHE_LINE_SIZE,
                                        dtype=np.uint8).tobytes())

    def single_bit_campaign(self, trials: int) -> List[FaultOutcome]:
        """``trials`` independent single-bit faults on random lines."""
        outcomes = []
        for _ in range(trials):
            line = self.random_line()
            bit = int(self._rng.integers(0, CACHE_LINE_SIZE * 8))
            outcomes.append(inject_and_decode(line, [bit]))
        return outcomes

    def double_bit_campaign(self, trials: int, *,
                            same_word: Optional[bool] = True) -> List[FaultOutcome]:
        """``trials`` double-bit faults.

        Args:
            same_word: when True both flips land in one 8-byte word (the
                SEC-DED detection case); when False each flip lands in a
                different word (each word sees a single, correctable error).
        """
        outcomes = []
        for _ in range(trials):
            line = self.random_line()
            if same_word:
                word = int(self._rng.integers(0, 8))
                bits = self._rng.choice(64, size=2, replace=False) + word * 64
            else:
                words = self._rng.choice(8, size=2, replace=False)
                bits = np.array([
                    int(self._rng.integers(0, 64)) + words[0] * 64,
                    int(self._rng.integers(0, 64)) + words[1] * 64,
                ])
            outcomes.append(inject_and_decode(line, [int(b) for b in bits]))
        return outcomes
