"""Exception hierarchy for the ESD reproduction library.

Every exception raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class ECCError(ReproError):
    """Base class for ECC codec failures."""


class UncorrectableError(ECCError):
    """An ECC decode detected an error pattern it cannot correct.

    SEC-DED codes correct single-bit errors and *detect* (but cannot correct)
    double-bit errors; a double-bit detection raises this error.
    """

    def __init__(self, message: str, *, word_index: int = -1) -> None:
        super().__init__(message)
        #: Index of the 8-byte word within the cache line where decoding
        #: failed, or -1 when unknown / not applicable.
        self.word_index = word_index


class DeviceError(ReproError):
    """Base class for NVMM device failures."""


class OutOfSpaceError(DeviceError):
    """The NVMM frame allocator has no free physical frames left."""


class InvalidAddressError(DeviceError):
    """An address fell outside the device's configured capacity."""


class EnduranceExceededError(DeviceError):
    """A physical frame surpassed its configured write-endurance limit.

    Raised only when the device is configured with
    ``fail_on_endurance=True``; by default wear is merely recorded.
    """


class TraceFormatError(ReproError):
    """A serialized trace file is malformed or version-incompatible."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class SweepError(ReproError):
    """An orchestrated experiment sweep could not complete.

    Raised by :class:`repro.sweep.Scheduler` when one or more jobs still
    fail after exhausting their retry budget; the exception message lists
    the failed (app, scheme) cells and their last errors.
    """


class UnknownBackendError(SweepError):
    """A sweep execution or storage backend name is not registered.

    Raised by the :mod:`repro.sweep` backend registries when ``--backend``
    or ``--storage`` (or their library equivalents) name no registered
    backend; the message lists the registered names, mirroring the
    unknown-scheme error from the scheme registry.
    """


class LeaseError(SweepError):
    """A distributed-sweep lease operation violated the claims protocol.

    Raised by storage backends when a worker renews or releases a lease
    it does not hold, or when claim state is internally inconsistent.
    """


class CheckpointError(SimulationError):
    """A mid-run checkpoint could not be written, read, or resumed.

    Raised by :mod:`repro.sim.checkpoint` on a corrupt or truncated
    checkpoint file (bad magic, version, CRC, or payload length) and on
    resume-time inconsistencies such as restoring a session that was not
    checkpointed in the open state.
    """


class SessionError(SimulationError):
    """An incremental simulation session was used after it ended.

    Raised by :class:`repro.sim.session.Session` when ``feed`` or
    ``finalize`` is called on a session that was already finalized,
    closed, or failed mid-feed.
    """


class ServeError(ReproError):
    """The dedup-as-a-service layer (:mod:`repro.serve`) failed.

    Covers protocol violations, rejected admissions, and client-side
    failures such as the server closing the connection mid-session.
    """

    def __init__(self, message: str, *, code: str = "internal") -> None:
        super().__init__(message)
        #: Machine-readable error code (mirrors the wire protocol's
        #: ``error`` field; see :mod:`repro.serve.protocol`).
        self.code = code


class WorkerCrashError(ServeError):
    """A serve engine worker process died with sessions on it.

    Raised (and carried over the wire as the ``worker_crash`` error code)
    when a multi-process :mod:`repro.serve` worker exits or is killed
    while sessions are routed to it.  Only the crashed worker's sessions
    fail — their in-worker simulation state is unrecoverable — while
    other workers' sessions are unaffected and the pool respawns the
    worker for future sessions.
    """

    def __init__(self, message: str, *, code: str = "worker_crash") -> None:
        super().__init__(message, code=code)


class IntegrityError(SimulationError):
    """Read-back verification observed data different from what was written.

    This is the invariant deduplication must never violate: eliminating a
    write is only legal when the stored bytes are identical to the incoming
    bytes.  The simulator checks this continuously when
    ``SystemConfig.verify_integrity`` is enabled.
    """
