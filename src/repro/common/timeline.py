"""Declarative stage timelines for the write and read critical paths.

Every scheme's request handler used to hand-roll its own stage accounting:
a mutable ``stages`` dict, running ``t`` clocks, and ad-hoc overlap math
like ``max(0.0, crc_done - encrypt_done)`` scattered across eight files.
:class:`StageTimeline` replaces all of that with a small declarative
vocabulary:

* :meth:`serial` — a fixed-latency step on the critical path (hashing,
  encryption, a byte compare);
* :meth:`advance_to` — a step whose completion time comes from a stateful
  substrate (a PCM bank access, a metadata-cache lookup); the exposed
  latency is whatever wall clock it consumed;
* :meth:`branch` / :meth:`join` — concurrent work.  A branch runs on its
  own clock from the moment it forks; joining charges the spine only for
  the portion of the branch that *outlasts* it (DeWrite's encryption
  hiding the CRC, ESD's integrity-tree walk hiding under the PCM read).
  A branch that is never joined is wasted speculative work: its energy was
  spent but its time never reaches the critical path;
* :meth:`overlap_with` / :meth:`parallel` — sugar over branch/join for the
  two common shapes.

The payoff is a *conservation invariant*, checked by :meth:`seal`: the
exposed per-stage latencies must sum to the timeline's critical path
(``now - start_ns``).  No wall clock can go unattributed and no stage can
be double-counted, which is exactly the property the paper's Figure 17
latency profile depends on.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Tuple

from ..obs import runtime as _obs
from ..perf import memo as _memo
from .errors import ReproError
from .types import LatencyBreakdown, WritePathStage

#: Relative tolerance of the conservation check.  Stage exposures are
#: accumulated as floats in declaration order while the critical path is a
#: single subtraction, so the two sides agree only up to rounding.
REL_TOLERANCE = 1e-9

#: Absolute tolerance of the conservation check, in nanoseconds.
ABS_TOLERANCE_NS = 1e-6


class TimelineError(ReproError):
    """A timeline was declared or used inconsistently."""


class StageTimeline:
    """One request's critical path, declared stage by stage.

    A timeline starts at ``start_ns`` (the request's issue time) and keeps
    a running clock ``now``.  Declaring work moves the clock forward and
    charges the consumed wall time to a named
    :class:`~repro.common.types.WritePathStage`.  After :meth:`seal`, the
    timeline is immutable and guarantees::

        sum(exposures.values()) == critical_path_ns == now - start_ns

    (up to float tolerance).  Schemes hand sealed timelines to
    ``DedupScheme._finalize_write`` / ``_finalize_read``, the single point
    where per-request stage latencies fold into the scheme's running
    :class:`~repro.common.types.LatencyBreakdown`.
    """

    __slots__ = ("start_ns", "now", "_exposure", "_segments", "_sealed")

    def __init__(self, start_ns: float) -> None:
        self.start_ns = start_ns
        #: The running clock; equals the completion time of all work
        #: declared so far.
        self.now = start_ns
        self._exposure: Dict[WritePathStage, float] = {}
        #: (stage, begin, end) spans in absolute time, used by join() to
        #: attribute a branch's exposed tail to the stages that ran in it.
        self._segments: List[Tuple[WritePathStage, float, float]] = []
        self._sealed = False

    # ------------------------------------------------------------------
    # Declaration vocabulary
    # ------------------------------------------------------------------

    def serial(self, stage: WritePathStage, duration_ns: float) -> None:
        """A fixed-duration step fully exposed on this timeline."""
        if not _memo.ENABLED:
            # Reference form (the pre-fast-path implementation, kept
            # verbatim so the slow path stays the original code).
            self._check_open()
            if duration_ns < 0:
                raise TimelineError(
                    f"stage {stage} declared with negative duration "
                    f"{duration_ns!r}")
            self._charge(stage, duration_ns)
            self.now = self.now + duration_ns
            return
        if self._sealed:
            self._check_open()
        if duration_ns < 0:
            raise TimelineError(
                f"stage {stage} declared with negative duration "
                f"{duration_ns!r}")
        # Inlined _charge: serial/advance_to carry most of the declaration
        # traffic (hundreds of thousands of calls per run), so the hot path
        # avoids a second method call.
        now = self.now
        exposure = self._exposure
        exposure[stage] = exposure.get(stage, 0.0) + duration_ns
        self._segments.append((stage, now, now + duration_ns))
        self.now = now + duration_ns

    def advance_to(self, stage: WritePathStage, completion_ns: float) -> None:
        """A step that finishes at an externally computed absolute time.

        Used for substrate operations (PCM accesses, metadata-cache
        lookups) whose completion time includes queueing: the exposed
        latency is ``completion_ns - now``, i.e. all wall clock between
        the step's start and its completion.
        """
        if not _memo.ENABLED:
            # Reference form (the pre-fast-path implementation).
            self._check_open()
            if completion_ns < self.now - ABS_TOLERANCE_NS:
                raise TimelineError(
                    f"stage {stage} completes at {completion_ns!r}, before "
                    f"the timeline clock {self.now!r}")
            self._charge(stage, max(0.0, completion_ns - self.now))
            if completion_ns > self.now:
                self.now = completion_ns
            return
        if self._sealed:
            self._check_open()
        now = self.now
        if completion_ns < now - ABS_TOLERANCE_NS:
            raise TimelineError(
                f"stage {stage} completes at {completion_ns!r}, before the "
                f"timeline clock {self.now!r}")
        duration = completion_ns - now
        if duration < 0.0:
            duration = 0.0
        exposure = self._exposure
        exposure[stage] = exposure.get(stage, 0.0) + duration
        self._segments.append((stage, now, now + duration))
        if completion_ns > now:
            self.now = completion_ns

    def branch(self) -> "StageTimeline":
        """Fork a concurrent leg starting at the current clock."""
        self._check_open()
        return StageTimeline(self.now)

    def join(self, leg: "StageTimeline") -> None:
        """Merge a branch back; only its exposed tail reaches this clock.

        The branch ran concurrently with whatever this timeline did since
        the fork.  If the branch finished first (``leg.now <= now``) it is
        fully hidden and charges nothing.  Otherwise the window
        ``[now, leg.now]`` is the branch's exposed tail: each of the
        branch's stage segments is charged for its overlap with that
        window, and the clock advances to ``leg.now``.
        """
        self._check_open()
        leg._sealed = True  # a joined leg must not be mutated further
        window_start = self.now
        window_end = leg.now
        if window_end <= window_start:
            return
        for stage, begin, end in leg._segments:
            lo = begin if begin > window_start else window_start
            hi = end if end < window_end else window_end
            if hi > lo:
                self._charge(stage, hi - lo, begin=lo, end=hi)
        self.now = window_end

    def overlap_with(self, stage: WritePathStage,
                     duration_ns: float) -> "StageTimeline":
        """Start ``stage`` concurrently; returns the leg for a later join.

        Sugar for ``leg = branch(); leg.serial(stage, duration_ns)`` — the
        shape of DeWrite's speculative encryption and the integrity tree
        walk overlapping a PCM access.
        """
        leg = self.branch()
        leg.serial(stage, duration_ns)
        return leg

    def parallel(self, *legs: Tuple[WritePathStage, float]) -> None:
        """Run fixed-duration stages concurrently and join them in order.

        The first-listed stage is joined first, so it absorbs the shared
        prefix of the overlap and later stages are charged only for the
        time by which they outlast it.
        """
        forked = [self.overlap_with(stage, ns) for stage, ns in legs]
        for leg in forked:
            self.join(leg)

    # ------------------------------------------------------------------
    # Sealing and reporting
    # ------------------------------------------------------------------

    def seal(self, validate: bool = True) -> "StageTimeline":
        """Freeze the timeline after checking stage conservation.

        Args:
            validate: run the conservation check.  Callers always validate
                today; the knob exists for paths that have already proven
                conservation elsewhere.  (The kernel fast path does not call
                ``seal`` at all — the scheme finalize helpers inline the
                sealing flag and fold, and their correctness is covered by
                the off/on parity gate, which still validates on every
                reference run.)
        """
        if self._sealed:
            return self
        if validate:
            total = math.fsum(self._exposure.values())
            span = self.now - self.start_ns
            if not math.isclose(total, span, rel_tol=REL_TOLERANCE,
                                abs_tol=ABS_TOLERANCE_NS):
                raise TimelineError(
                    f"stage conservation violated: exposures sum to "
                    f"{total!r} ns but the critical path is {span!r} ns")
        self._sealed = True
        obs = _obs.RUN
        if obs is not None:
            obs.record(self.now, "timeline", "sealed",
                       critical_path_ns=self.now - self.start_ns,
                       stages=len(self._exposure))
        return self

    @property
    def sealed(self) -> bool:
        return self._sealed

    @property
    def critical_path_ns(self) -> float:
        """Wall clock from the request's issue to its completion."""
        return self.now - self.start_ns

    @property
    def exposures(self) -> Dict[WritePathStage, float]:
        """Per-stage exposed latency; stages that charged nothing are
        omitted (a fully hidden stage did not appear on the critical
        path)."""
        return {stage: ns for stage, ns in self._exposure.items() if ns > 0.0}

    def fold_into(self, breakdown: LatencyBreakdown) -> None:
        """Accumulate this request's exposures into a running breakdown."""
        if not _memo.ENABLED:
            # Reference form: route through the validating accessor.
            for stage, ns in self._exposure.items():
                if ns > 0.0:
                    breakdown.add(stage, ns)
            return
        # Direct dict update: exposures are non-negative by construction,
        # so ``LatencyBreakdown.add``'s validation is redundant here and
        # this is a per-request path.
        by_stage = breakdown.by_stage
        for stage, ns in self._exposure.items():
            if ns > 0.0:
                by_stage[stage] = by_stage.get(stage, 0.0) + ns

    def segments(self) -> Iterator[Tuple[WritePathStage, float, float]]:
        """The declared (stage, begin, end) spans, in declaration order."""
        return iter(self._segments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stages = ", ".join(f"{stage}={ns:.1f}"
                           for stage, ns in self._exposure.items())
        return (f"StageTimeline(start={self.start_ns:.1f}, "
                f"now={self.now:.1f}, sealed={self._sealed}, {stages})")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._sealed:
            raise TimelineError("timeline is sealed; declare all work "
                                "before seal()/join()")

    def _charge(self, stage: WritePathStage, duration_ns: float,
                begin: float = -1.0, end: float = -1.0) -> None:
        if begin < 0.0:
            begin, end = self.now, self.now + duration_ns
        self._exposure[stage] = self._exposure.get(stage, 0.0) + duration_ns
        self._segments.append((stage, begin, end))
