"""Core value types shared across the ESD simulator.

The simulator is trace-driven: the unit of work is a :class:`MemoryRequest`
describing one cache-line-granularity access arriving at the memory
controller (an LLC miss fill on the read side, or a dirty write-back /
eviction on the write side).  Cache-line payloads are plain ``bytes`` of
length :data:`CACHE_LINE_SIZE` so that fingerprints, encryption, and
byte-by-byte comparison all operate on real content.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

#: Cache-line granularity used throughout the paper and this reproduction.
CACHE_LINE_SIZE = 64

#: Number of 8-byte words per cache line (per-word ECC granularity).
WORDS_PER_LINE = CACHE_LINE_SIZE // 8

#: The all-zero cache line, which dominates duplicate content for several
#: applications in the paper (e.g. deepsjeng, roms).
ZERO_LINE = bytes(CACHE_LINE_SIZE)


class AccessType(enum.Enum):
    """Direction of a memory-controller access."""

    READ = "read"
    WRITE = "write"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def validate_line(data: bytes) -> bytes:
    """Return ``data`` unchanged after checking it is a full cache line.

    Raises:
        ValueError: if ``data`` is not exactly :data:`CACHE_LINE_SIZE` bytes.
    """
    if not isinstance(data, (bytes, bytearray)):
        raise ValueError(f"cache line must be bytes, got {type(data).__name__}")
    if len(data) != CACHE_LINE_SIZE:
        raise ValueError(
            f"cache line must be {CACHE_LINE_SIZE} bytes, got {len(data)}"
        )
    return bytes(data)


def is_zero_line(data: bytes) -> bool:
    """True when every byte of the cache line is zero."""
    return data == ZERO_LINE


def line_words(data: bytes) -> list:
    """Split a 64-byte cache line into its eight 8-byte words.

    The per-word view matches the ECC granularity used by the paper: each
    8-byte word is protected by an 8-bit ECC, and the concatenation of the
    eight per-word codes forms the line's 64-bit ECC fingerprint.
    """
    validate_line(data)
    return [data[i * 8 : (i + 1) * 8] for i in range(WORDS_PER_LINE)]


@dataclass
class MemoryRequest:
    """One cache-line access presented to the memory controller.

    Attributes:
        address: Logical (CPU-visible) byte address of the cache line.  Always
            aligned to :data:`CACHE_LINE_SIZE`.
        access: Read or write.
        data: Payload for writes (exactly 64 bytes); ``None`` for reads.
        issue_time_ns: Simulated time at which the request reaches the memory
            controller.
        core: Index of the issuing core (used by the IPC model).
        seq: Monotonically increasing sequence number within a trace.
    """

    address: int
    access: AccessType
    data: Optional[bytes] = None
    issue_time_ns: float = 0.0
    core: int = 0
    seq: int = 0

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"address must be non-negative, got {self.address}")
        if self.address % CACHE_LINE_SIZE != 0:
            raise ValueError(
                f"address {self.address:#x} is not {CACHE_LINE_SIZE}-byte aligned"
            )
        if self.access is AccessType.WRITE:
            if self.data is None:
                raise ValueError("write request requires data")
            self.data = validate_line(self.data)
        elif self.data is not None:
            raise ValueError("read request must not carry data")

    @property
    def line_index(self) -> int:
        """Cache-line index (address divided by the line size)."""
        return self.address // CACHE_LINE_SIZE

    @property
    def is_write(self) -> bool:
        return self.access is AccessType.WRITE

    @property
    def is_read(self) -> bool:
        return self.access is AccessType.READ


def request_unchecked(address: int, access: AccessType,
                      data: "Optional[bytes]", issue_time_ns: float,
                      core: int, seq: int) -> MemoryRequest:
    """Build a :class:`MemoryRequest` bypassing ``__post_init__`` validation.

    For trusted batch producers only — the vectorized trace reader
    validates whole record arrays with numpy before constructing requests,
    and re-running the per-object checks would dominate deserialization
    time.  The caller guarantees the dataclass invariants: non-negative
    aligned address, writes carry exactly 64 ``bytes`` of data, reads carry
    ``None``.
    """
    request = MemoryRequest.__new__(MemoryRequest)
    # One dict display beats six attribute stores; plain (non-slots)
    # dataclass instances allow wholesale __dict__ assignment.
    request.__dict__ = {"address": address, "access": access, "data": data,
                        "issue_time_ns": issue_time_ns, "core": core,
                        "seq": seq}
    return request


@dataclass(frozen=True)
class PhysicalAddress:
    """ESD's packed 40-bit physical cache-line address.

    The paper stores physical locations as a 4-byte ``Addr_base`` plus a
    1-byte ``Addr_offsets``: the physical line number is
    ``(base << 8) | offset``, addressing up to 2**40 cache lines (64 TiB of
    data at 64 B lines).  This class keeps the packed representation honest:
    components are range-checked and conversion to/from flat line numbers is
    explicit.
    """

    base: int
    offset: int

    #: Width of the offset field in bits (1 byte).
    OFFSET_BITS = 8
    #: Width of the base field in bits (4 bytes).
    BASE_BITS = 32

    def __post_init__(self) -> None:
        if not 0 <= self.base < (1 << self.BASE_BITS):
            raise ValueError(f"Addr_base out of range: {self.base}")
        if not 0 <= self.offset < (1 << self.OFFSET_BITS):
            raise ValueError(f"Addr_offsets out of range: {self.offset}")

    @classmethod
    def from_line_number(cls, line_number: int) -> "PhysicalAddress":
        """Pack a flat physical cache-line number into base/offset fields."""
        if line_number < 0 or line_number >= (1 << (cls.BASE_BITS + cls.OFFSET_BITS)):
            raise ValueError(f"line number out of 40-bit range: {line_number}")
        return cls(base=line_number >> cls.OFFSET_BITS,
                   offset=line_number & ((1 << cls.OFFSET_BITS) - 1))

    @property
    def line_number(self) -> int:
        """Flat physical cache-line number (base << 8 | offset)."""
        return (self.base << self.OFFSET_BITS) | self.offset

    @property
    def byte_address(self) -> int:
        """Physical byte address of the line."""
        return self.line_number * CACHE_LINE_SIZE

    #: Size of one packed entry in bytes (4-byte base + 1-byte offset).
    PACKED_SIZE = 5


@dataclass
class OperationCost:
    """Latency/energy contribution of one step of a scheme's pipeline.

    Schemes accumulate these to produce the per-request latency profile that
    Figure 17 of the paper breaks down (fingerprint computation, fingerprint
    NVMM lookup, read-for-comparison, unique-line write).
    """

    latency_ns: float = 0.0
    energy_nj: float = 0.0

    def __add__(self, other: "OperationCost") -> "OperationCost":
        return OperationCost(self.latency_ns + other.latency_ns,
                             self.energy_nj + other.energy_nj)

    def __iadd__(self, other: "OperationCost") -> "OperationCost":
        self.latency_ns += other.latency_ns
        self.energy_nj += other.energy_nj
        return self


class WritePathStage(enum.Enum):
    """Named stages of the request critical paths.

    The first six are the write-path stages profiled in Figure 17; the
    last two appear only on the read path (LLC miss fills), which folds
    into a scheme's separate ``read_breakdown``.
    """

    FINGERPRINT_COMPUTE = "fingerprint_compute"
    FINGERPRINT_NVMM_LOOKUP = "fingerprint_nvmm_lookup"
    READ_FOR_COMPARISON = "read_for_comparison"
    WRITE_UNIQUE = "write_unique"
    ENCRYPTION = "encryption"
    METADATA = "metadata"
    #: Read path only: the PCM array access serving a miss fill.
    READ_FILL = "read_fill"
    #: Read path only: counter-mode decryption of the fetched line.
    DECRYPTION = "decryption"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    # Stage members key the per-request exposure dicts touched hundreds of
    # thousands of times per run; ``Enum.__hash__`` is a Python-level call
    # (hash of the member name), while identity hash is C-level and equally
    # stable — members are process singletons (pickle resolves by name).
    __hash__ = object.__hash__


@dataclass
class LatencyBreakdown:
    """Accumulated per-stage write latency for one scheme run."""

    by_stage: dict = field(default_factory=dict)

    def add(self, stage: WritePathStage, latency_ns: float) -> None:
        if latency_ns < 0:
            raise ValueError("latency must be non-negative")
        self.by_stage[stage] = self.by_stage.get(stage, 0.0) + latency_ns

    def total(self) -> float:
        return sum(self.by_stage.values())

    def fraction(self, stage: WritePathStage) -> float:
        """Share of total write latency attributable to ``stage``."""
        total = self.total()
        if total == 0.0:
            return 0.0
        return self.by_stage.get(stage, 0.0) / total

    def as_fractions(self) -> dict:
        """Map of stage -> share of total latency (sums to 1 when nonempty)."""
        total = self.total()
        if total == 0.0:
            return {stage: 0.0 for stage in self.by_stage}
        return {stage: v / total for stage, v in self.by_stage.items()}
