"""Configuration dataclasses mirroring Table I of the paper.

Every tunable in the reproduction lives here: processor/cache geometry, PCM
timing and energy, metadata cache sizes, and per-scheme options.  Defaults
reproduce the paper's experimental setup:

========================  =====================================================
Processor                 8 cores, x86-64, 2 GHz
L1 (private)              32 KB, 8-way, 64 B lines, 2-cycle latency
L2 (private)              256 KB, 8-way, 64 B lines, 8-cycle latency
L3 (shared LLC)           16 MB, 8-way, 64 B lines, 25-cycle latency
PCM capacity              16 GB
PCM latency               read 75 ns / write 150 ns
PCM energy                read 1.49 nJ / write 6.75 nJ
Metadata cache            EFIT 512 KB, AMT 512 KB
========================  =====================================================
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Mapping, Optional

from .errors import ConfigError
from .types import CACHE_LINE_SIZE
from .units import gib, is_power_of_two, kib, mib


@dataclass(frozen=True)
class CacheLevelConfig:
    """Geometry and access latency of one cache level."""

    name: str
    capacity_bytes: int
    associativity: int
    latency_cycles: int
    line_size: int = CACHE_LINE_SIZE

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigError(f"{self.name}: capacity must be positive")
        if self.associativity <= 0:
            raise ConfigError(f"{self.name}: associativity must be positive")
        if self.line_size <= 0 or not is_power_of_two(self.line_size):
            raise ConfigError(f"{self.name}: line size must be a power of two")
        if self.capacity_bytes % (self.line_size * self.associativity) != 0:
            raise ConfigError(
                f"{self.name}: capacity {self.capacity_bytes} not divisible by "
                f"line_size*associativity"
            )
        if not is_power_of_two(self.num_sets):
            raise ConfigError(f"{self.name}: number of sets must be a power of two")
        if self.latency_cycles < 0:
            raise ConfigError(f"{self.name}: latency must be non-negative")

    @property
    def num_lines(self) -> int:
        return self.capacity_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity


@dataclass(frozen=True)
class ProcessorConfig:
    """CPU core count, clock, and the three-level cache hierarchy."""

    cores: int = 8
    clock_ghz: float = 2.0
    l1: CacheLevelConfig = field(default_factory=lambda: CacheLevelConfig(
        name="L1", capacity_bytes=kib(32), associativity=8, latency_cycles=2))
    l2: CacheLevelConfig = field(default_factory=lambda: CacheLevelConfig(
        name="L2", capacity_bytes=kib(256), associativity=8, latency_cycles=8))
    l3: CacheLevelConfig = field(default_factory=lambda: CacheLevelConfig(
        name="L3", capacity_bytes=mib(16), associativity=8, latency_cycles=25))

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigError("cores must be positive")
        if self.clock_ghz <= 0:
            raise ConfigError("clock must be positive")

    @property
    def cycle_ns(self) -> float:
        """Duration of one core clock cycle in nanoseconds."""
        return 1.0 / self.clock_ghz

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles * self.cycle_ns


@dataclass(frozen=True)
class PCMConfig:
    """PCM device timing, energy, and geometry (Table I + Lee et al.)."""

    capacity_bytes: int = field(default_factory=lambda: gib(16))
    read_latency_ns: float = 75.0
    write_latency_ns: float = 150.0
    read_energy_nj: float = 1.49
    write_energy_nj: float = 6.75
    num_banks: int = 8
    line_size: int = CACHE_LINE_SIZE
    #: Row-buffer (NVMain-style) parameters: a read that hits the bank's
    #: open row is served from the row buffer at SRAM-like latency/energy.
    row_size_lines: int = 64
    row_hit_read_latency_ns: float = 15.0
    row_hit_read_energy_nj: float = 0.5
    #: PCM cell endurance (writes per cell before wear-out); 10-100M for PCM.
    endurance_writes: int = 100_000_000
    fail_on_endurance: bool = False

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigError("PCM capacity must be positive")
        if self.capacity_bytes % self.line_size != 0:
            raise ConfigError("PCM capacity must be line-aligned")
        if self.read_latency_ns <= 0 or self.write_latency_ns <= 0:
            raise ConfigError("PCM latencies must be positive")
        if self.read_energy_nj < 0 or self.write_energy_nj < 0:
            raise ConfigError("PCM energies must be non-negative")
        if self.num_banks <= 0 or not is_power_of_two(self.num_banks):
            raise ConfigError("num_banks must be a positive power of two")
        if self.row_size_lines <= 0 or not is_power_of_two(self.row_size_lines):
            raise ConfigError("row_size_lines must be a positive power of two")
        if self.row_hit_read_latency_ns <= 0:
            raise ConfigError("row-hit read latency must be positive")
        if self.row_hit_read_energy_nj < 0:
            raise ConfigError("row-hit read energy must be non-negative")

    @property
    def num_lines(self) -> int:
        return self.capacity_bytes // self.line_size


@dataclass(frozen=True)
class MetadataCacheConfig:
    """Sizes of the memory-controller metadata caches (EFIT and AMT)."""

    efit_bytes: int = field(default_factory=lambda: kib(512))
    amt_bytes: int = field(default_factory=lambda: kib(512))
    #: Latency of an on-chip metadata cache probe, folded into the controller
    #: pipeline; the paper treats it as negligible.
    probe_latency_ns: float = 1.0

    def __post_init__(self) -> None:
        if self.efit_bytes <= 0 or self.amt_bytes <= 0:
            raise ConfigError("metadata cache sizes must be positive")
        if self.probe_latency_ns < 0:
            raise ConfigError("probe latency must be non-negative")


@dataclass(frozen=True)
class ESDConfig:
    """ESD-specific knobs (Section III)."""

    #: Maximum reference count recorded per EFIT entry (1-byte referH).  When
    #: a line's count would exceed this, ESD treats the incoming line as new.
    refer_h_max: int = 255
    #: LRCU periodic refresh: every ``decay_period`` epoch events, all
    #: reference counters are decremented by ``decay_amount``.
    decay_period: int = 4096
    decay_amount: int = 1
    #: What advances the decay epoch: ``"ops"`` (default) counts every
    #: EFIT lookup/bump/insertion — the paper's *periodic* refresh, which
    #: keeps decaying through read/touch-heavy phases; ``"insert"`` counts
    #: insertions only (the pre-fix behaviour, kept for parity runs).
    decay_on: str = "ops"
    #: Use the LRCU policy; False degrades the EFIT to plain LRU (the
    #: "without LRCU" series of Figure 18).
    use_lrcu: bool = True

    def __post_init__(self) -> None:
        if not 1 <= self.refer_h_max <= 255:
            raise ConfigError("referH is a 1-byte field: 1..255")
        if self.decay_period <= 0:
            raise ConfigError("decay_period must be positive")
        if self.decay_amount < 0:
            raise ConfigError("decay_amount must be non-negative")
        if self.decay_on not in ("ops", "insert"):
            raise ConfigError("decay_on must be 'ops' or 'insert'")


@dataclass(frozen=True)
class DeWriteConfig:
    """DeWrite-specific knobs (Zuo et al., MICRO'18)."""

    #: Size of the per-line duplication-prediction history table (entries).
    predictor_entries: int = 4096
    #: Saturating-counter bits per predictor entry.
    predictor_bits: int = 2

    def __post_init__(self) -> None:
        if self.predictor_entries <= 0:
            raise ConfigError("predictor_entries must be positive")
        if not 1 <= self.predictor_bits <= 8:
            raise ConfigError("predictor_bits must be 1..8")


@dataclass(frozen=True)
class ObservabilityConfig:
    """Run-scoped instrumentation knobs (:mod:`repro.obs`).

    Disabled by default: with ``enabled=False`` no run scope is opened,
    every hook site reduces to one module-global ``is None`` check, and
    simulated results are bit-identical to an uninstrumented build (the
    obs parity property tests gate this).
    """

    #: Open a run scope (metrics registry + trace ring) around each
    #: engine run and attach the collected report to the result.
    enabled: bool = False
    #: Maximum trace events retained; older events are evicted (the ring
    #: reports how many were dropped).
    trace_capacity: int = 4096
    #: Trace one request in every N (1 = trace every request).  Metrics
    #: are never sampled — only trace events are.
    sample_every: int = 1

    def __post_init__(self) -> None:
        if self.trace_capacity <= 0:
            raise ConfigError("trace_capacity must be positive")
        if self.sample_every <= 0:
            raise ConfigError("sample_every must be positive")


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration wiring the whole simulated system together."""

    processor: ProcessorConfig = field(default_factory=ProcessorConfig)
    pcm: PCMConfig = field(default_factory=PCMConfig)
    metadata_cache: MetadataCacheConfig = field(default_factory=MetadataCacheConfig)
    esd: ESDConfig = field(default_factory=ESDConfig)
    dewrite: DeWriteConfig = field(default_factory=DeWriteConfig)
    #: Continuously verify that every read returns exactly the bytes most
    #: recently written to that logical address (dedup-safety invariant).
    verify_integrity: bool = True
    #: Protect the encryption counters with a Merkle integrity tree
    #: (Section III-E trust model): writes update the tree, reads verify
    #: against the on-chip root.  Off by default — the paper's evaluation
    #: treats counter protection as an orthogonal substrate.
    protect_counters: bool = False
    #: Per-level hash latency of the integrity tree walk (on-chip SHA
    #: engine), charged when ``protect_counters`` is enabled.
    integrity_hash_latency_ns: float = 5.0
    #: Content-addressed kernel fast path (:mod:`repro.perf`): memoize the
    #: pure ECC/crypto/fingerprint kernels in bounded LRU caches.  ``None``
    #: defers to the ``REPRO_FASTPATH`` environment variable (default on);
    #: ``True``/``False`` force the fast path on/off for runs using this
    #: config.  Purely a host-CPU optimisation — simulated results are
    #: bit-identical either way (gated by ``benchmarks/perf_smoke.py``).
    use_fastpath: Optional[bool] = None
    #: Epoch-batched execution engine (:mod:`repro.vec`): drain requests in
    #: fixed-size epochs and run bit-parallel numpy kernels (line ECC,
    #: fingerprint digests) over each epoch before the scalar per-line
    #: resolution.  ``None`` defers to the ``REPRO_VECTORIZED`` environment
    #: variable (default on); ``True``/``False`` force it per run.  Purely a
    #: host-CPU optimisation — simulated results are bit-identical either
    #: way (gated by ``tests/test_vec_parity.py`` and the perf smoke).
    use_vectorized: Optional[bool] = None
    #: Run-scoped instrumentation (:mod:`repro.obs`): metrics registry,
    #: per-request trace ring, and exporters.  Off by default; enabling it
    #: never changes simulated results (gated by the obs parity tests).
    observability: ObservabilityConfig = field(
        default_factory=ObservabilityConfig)
    #: RNG seed threaded through every stochastic component.
    seed: int = 2023

    def with_metadata_cache(self, *, efit_bytes: Optional[int] = None,
                            amt_bytes: Optional[int] = None) -> "SystemConfig":
        """Return a copy with resized metadata caches (Figure 18 sweeps)."""
        mc = self.metadata_cache
        new_mc = replace(
            mc,
            efit_bytes=efit_bytes if efit_bytes is not None else mc.efit_bytes,
            amt_bytes=amt_bytes if amt_bytes is not None else mc.amt_bytes,
        )
        return replace(self, metadata_cache=new_mc)

    def with_esd(self, **kwargs) -> "SystemConfig":
        """Return a copy with modified ESD options."""
        return replace(self, esd=replace(self.esd, **kwargs))

    def with_seed(self, seed: int) -> "SystemConfig":
        return replace(self, seed=seed)

    def with_observability(self, **kwargs) -> "SystemConfig":
        """Return a copy with modified observability options.

        ``cfg.with_observability(enabled=True, sample_every=8)``
        """
        return replace(
            self, observability=replace(self.observability, **kwargs))

    def with_options(self, options: "Mapping[str, object]") -> "SystemConfig":
        """Return a copy with dotted-path field overrides applied.

        ``cfg.with_options({"seed": 7, "esd.decay_period": 1024,
        "metadata_cache.efit_bytes": 16384})`` — each key names a
        (possibly nested) dataclass field, and values come straight from
        a JSON document, so this is the serving layer's per-tenant
        configuration surface (:mod:`repro.serve`).  Overrides are
        applied in sorted key order, and the nested dataclasses'
        ``__post_init__`` validation re-runs on every rebuilt level.

        Raises:
            ConfigError: when a path names no field or descends into a
                non-dataclass value.
        """
        config: "SystemConfig" = self
        for key in sorted(options):
            config = _replace_path(config, key, key.split("."),
                                   options[key])
        return config


def _replace_path(obj, path: str, parts, value):
    """Rebuild ``obj`` with the field at dotted ``path`` set to ``value``."""
    if not dataclasses.is_dataclass(obj) or isinstance(obj, type):
        raise ConfigError(
            f"config option {path!r}: {type(obj).__name__} has no "
            f"sub-fields to descend into")
    name = parts[0]
    if name not in {f.name for f in dataclasses.fields(obj)}:
        raise ConfigError(
            f"config option {path!r}: {type(obj).__name__} has no field "
            f"{name!r}")
    if len(parts) == 1:
        try:
            return replace(obj, **{name: value})
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"config option {path!r}: {exc}") from exc
    nested = _replace_path(getattr(obj, name), path, parts[1:], value)
    return replace(obj, **{name: nested})


def _canonical(obj):
    """Reduce a configuration value to a canonical JSON-compatible form.

    Dataclasses are tagged with their class name so that two structurally
    identical but semantically different configs never collide; floats rely
    on CPython's shortest-round-trip ``repr`` (stable across processes and
    platforms for IEEE-754 doubles).
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__class__": type(obj).__name__,
            "fields": {
                f.name: _canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, enum.Enum):
        return {"__enum__": type(obj).__name__, "value": obj.value}
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (bytes, bytearray)):
        return {"__bytes__": bytes(obj).hex()}
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    raise ConfigError(
        f"cannot canonicalize {type(obj).__name__} for digesting")


def config_digest(*objects) -> str:
    """A stable SHA-256 hex digest of one or more configuration objects.

    The digest is content-based (field names and values, recursively) and
    identical across processes and machines, which makes it suitable as a
    cache key: ``repro.sweep`` keys its persisted results by the digest of
    (job parameters, SystemConfig, EngineConfig, CryptoCosts), so any
    configuration change invalidates exactly the affected cells.
    """
    payload = json.dumps([_canonical(obj) for obj in objects],
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def default_config() -> SystemConfig:
    """The paper's Table I configuration."""
    return SystemConfig()


def small_test_config() -> SystemConfig:
    """A scaled-down configuration for fast unit tests.

    Shrinks the PCM device and metadata caches so tests exercising
    replacement and allocation pressure run in milliseconds.
    """
    return SystemConfig(
        pcm=PCMConfig(capacity_bytes=mib(4), num_banks=4),
        metadata_cache=MetadataCacheConfig(efit_bytes=kib(8), amt_bytes=kib(8)),
    )
