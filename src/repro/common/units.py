"""Unit helpers for the ESD simulator.

All time quantities in the simulator are expressed in *nanoseconds* (float),
all energy quantities in *nanojoules* (float), and all capacities in *bytes*
(int).  This module centralizes the named constants and conversion helpers so
configuration code reads like the paper ("75 ns", "6.75 nJ", "512 KB") instead
of raw magic numbers.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time (canonical unit: nanoseconds)
# ---------------------------------------------------------------------------

NANOSECOND = 1.0
MICROSECOND = 1_000.0
MILLISECOND = 1_000_000.0
SECOND = 1_000_000_000.0


def ns(value: float) -> float:
    """Express ``value`` nanoseconds in canonical time units."""
    return value * NANOSECOND


def us(value: float) -> float:
    """Express ``value`` microseconds in canonical time units."""
    return value * MICROSECOND


def ms(value: float) -> float:
    """Express ``value`` milliseconds in canonical time units."""
    return value * MILLISECOND


def seconds(value: float) -> float:
    """Express ``value`` seconds in canonical time units."""
    return value * SECOND


def to_us(value_ns: float) -> float:
    """Convert canonical time units (ns) to microseconds."""
    return value_ns / MICROSECOND


def to_ms(value_ns: float) -> float:
    """Convert canonical time units (ns) to milliseconds."""
    return value_ns / MILLISECOND


# ---------------------------------------------------------------------------
# Energy (canonical unit: nanojoules)
# ---------------------------------------------------------------------------

NANOJOULE = 1.0
PICOJOULE = 0.001
MICROJOULE = 1_000.0
MILLIJOULE = 1_000_000.0


def nj(value: float) -> float:
    """Express ``value`` nanojoules in canonical energy units."""
    return value * NANOJOULE


def pj(value: float) -> float:
    """Express ``value`` picojoules in canonical energy units."""
    return value * PICOJOULE


def to_mj(value_nj: float) -> float:
    """Convert canonical energy units (nJ) to millijoules."""
    return value_nj / MILLIJOULE


# ---------------------------------------------------------------------------
# Capacity (canonical unit: bytes)
# ---------------------------------------------------------------------------

BYTE = 1
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB


def kib(value: float) -> int:
    """Express ``value`` KiB in bytes."""
    return int(value * KIB)


def mib(value: float) -> int:
    """Express ``value`` MiB in bytes."""
    return int(value * MIB)


def gib(value: float) -> int:
    """Express ``value`` GiB in bytes."""
    return int(value * GIB)


def human_bytes(n: int) -> str:
    """Render a byte count using binary units, e.g. ``524288 -> '512.0 KiB'``."""
    size = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if size < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{int(size)} {unit}"
            return f"{size:.1f} {unit}"
        size /= 1024.0
    raise AssertionError("unreachable")


def is_power_of_two(n: int) -> bool:
    """Return True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0
