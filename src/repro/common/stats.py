"""Statistics collection: counters, latency samples, percentiles, CDFs.

The paper's evaluation reports averages (speedups, energy), distributions
(Figure 15's write-latency CDFs), and shares (Figure 17's latency profile).
:class:`LatencyRecorder` keeps raw samples (optionally reservoir-sampled for
long runs) and serves percentiles and CDF series; :class:`Counter` is a
simple named tally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..perf import memo as _memo


@dataclass
class Counter:
    """A named collection of monotonically increasing tallies."""

    values: Dict[str, int] = field(default_factory=dict)

    def incr(self, name: str, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        if _memo.ENABLED:
            # Fast path: schemes call incr() several times per request, so
            # the double ``self.values`` attribute lookup is worth a local.
            values = self.values
            values[name] = values.get(name, 0) + amount
            return
        self.values[name] = self.values.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self.values.get(name, 0)

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator``, or 0.0 when the denominator is zero."""
        denom = self.get(denominator)
        if denom == 0:
            return 0.0
        return self.get(numerator) / denom

    def as_dict(self) -> Dict[str, int]:
        return dict(self.values)


class RunningMean:
    """Numerically stable running mean/variance (Welford's algorithm)."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)


class LatencyRecorder:
    """Collects latency samples and serves summary statistics.

    For bounded memory on long simulations the recorder keeps at most
    ``max_samples`` raw values using reservoir sampling, while the running
    mean/min/max/sum remain exact over the full stream.
    """

    def __init__(self, max_samples: int = 200_000, *,
                 rng: Optional[np.random.Generator] = None) -> None:
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self._max_samples = max_samples
        self._samples: List[float] = []
        self._rng = rng or np.random.default_rng(0xE5D)
        self._running = RunningMean()
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._seen = 0

    def add(self, latency_ns: float) -> None:
        if latency_ns < 0:
            raise ValueError("latency must be non-negative")
        if not _memo.ENABLED:
            # Reference form (pre-fast-path implementation).
            self._seen += 1
            self._running.add(latency_ns)
            self._total += latency_ns
            self._min = min(self._min, latency_ns)
            self._max = max(self._max, latency_ns)
            if len(self._samples) < self._max_samples:
                self._samples.append(latency_ns)
            else:
                # Reservoir sampling keeps a uniform subsample.
                j = int(self._rng.integers(0, self._seen))
                if j < self._max_samples:
                    self._samples[j] = latency_ns
            return
        self._seen += 1
        # Welford update inlined (identical arithmetic to RunningMean.add);
        # this is the per-request recording path.
        running = self._running
        running.count += 1
        delta = latency_ns - running._mean
        running._mean += delta / running.count
        running._m2 += delta * (latency_ns - running._mean)
        self._total += latency_ns
        if latency_ns < self._min:
            self._min = latency_ns
        if latency_ns > self._max:
            self._max = latency_ns
        samples = self._samples
        if len(samples) < self._max_samples:
            samples.append(latency_ns)
        else:
            # Reservoir sampling keeps a uniform subsample of the stream.
            j = int(self._rng.integers(0, self._seen))
            if j < self._max_samples:
                samples[j] = latency_ns

    def add_many(self, latencies: Iterable[float]) -> None:
        """Record a batch of samples in order.

        Performs exactly the same per-sample arithmetic as repeated
        :meth:`add` calls (so the resulting statistics are bit-identical),
        but with the recorder state held in locals across the batch — the
        engine's fast-path loop collects each run's latencies in a plain
        list and flushes them here once.
        """
        running = self._running
        count = running.count
        mean = running._mean
        m2 = running._m2
        total = self._total
        low = self._min
        high = self._max
        samples = self._samples
        max_samples = self._max_samples
        seen = self._seen
        rng = self._rng
        for latency_ns in latencies:
            if latency_ns < 0:
                raise ValueError("latency must be non-negative")
            seen += 1
            count += 1
            delta = latency_ns - mean
            mean += delta / count
            m2 += delta * (latency_ns - mean)
            total += latency_ns
            if latency_ns < low:
                low = latency_ns
            if latency_ns > high:
                high = latency_ns
            if len(samples) < max_samples:
                samples.append(latency_ns)
            else:
                j = int(rng.integers(0, seen))
                if j < max_samples:
                    samples[j] = latency_ns
        running.count = count
        running._mean = mean
        running._m2 = m2
        self._total = total
        self._min = low
        self._max = high
        self._seen = seen

    def extend(self, latencies: Iterable[float]) -> None:
        for x in latencies:
            self.add(x)

    @property
    def count(self) -> int:
        return self._seen

    @property
    def total_ns(self) -> float:
        return self._total

    @property
    def mean_ns(self) -> float:
        return self._running.mean

    @property
    def stddev_ns(self) -> float:
        return self._running.stddev

    @property
    def min_ns(self) -> float:
        return self._min if self._seen else 0.0

    @property
    def max_ns(self) -> float:
        return self._max if self._seen else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0-100) of recorded samples.

        An empty recorder returns ``NaN``, never 0.0: a scheme or phase
        that saw no traffic must stay distinguishable from one with a
        genuinely zero-latency tail.  Export boundaries map the NaN to
        ``None``/empty cells (:mod:`repro.sim.export`).
        """
        if not 0 <= p <= 100:
            raise ValueError("percentile must be within [0, 100]")
        if not self._samples:
            return math.nan
        return float(np.percentile(np.asarray(self._samples), p))

    def tail_summary(self) -> Dict[str, float]:
        """Common tail percentiles (p50/p90/p99/p999) as a dict.

        All values are ``NaN`` when the recorder is empty (see
        :meth:`percentile`)."""
        return {
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "p999": self.percentile(99.9),
        }

    def cdf(self, points: int = 100) -> Tuple[List[float], List[float]]:
        """Empirical CDF as ``(latencies, cumulative_fractions)``.

        Suitable for plotting Figure 15: x is latency in ns, y rises from
        ~1/n to 1.0.
        """
        if points <= 0:
            raise ValueError("points must be positive")
        if not self._samples:
            return [], []
        data = np.sort(np.asarray(self._samples))
        if len(data) <= points:
            xs = data
            ys = (np.arange(1, len(data) + 1)) / len(data)
        else:
            # Sample the CDF at evenly spaced quantiles.
            qs = np.linspace(0, 100, points)
            xs = np.percentile(data, qs)
            ys = qs / 100.0
        return [float(x) for x in xs], [float(y) for y in ys]

    def samples(self) -> Sequence[float]:
        """The retained (possibly subsampled) raw latency values."""
        return tuple(self._samples)

    # ------------------------------------------------------------------
    # Exact serialization (repro.sweep result store)
    # ------------------------------------------------------------------

    def state_dict(self) -> Dict:
        """Full internal state as a JSON-serializable dict.

        Round-tripping through :meth:`from_state` reconstructs a recorder
        whose every observable statistic — mean, stddev, min/max, retained
        samples, percentiles, CDFs — is bit-identical to the original, and
        whose reservoir RNG would continue sampling identically.  This is
        what lets the sweep result store replay cached results that are
        byte-for-byte equal to a fresh simulation.
        """
        return {
            "max_samples": self._max_samples,
            "samples": list(self._samples),
            "seen": self._seen,
            "total_ns": self._total,
            "min_ns": self._min if self._seen else None,
            "max_ns": self._max if self._seen else None,
            "running": {"count": self._running.count,
                        "mean": self._running._mean,
                        "m2": self._running._m2},
            "rng_state": self._rng.bit_generator.state,
        }

    @classmethod
    def from_state(cls, state: Dict) -> "LatencyRecorder":
        """Reconstruct a recorder from :meth:`state_dict` output."""
        rec = cls(int(state["max_samples"]))
        rec._samples = [float(x) for x in state["samples"]]
        rec._seen = int(state["seen"])
        rec._total = float(state["total_ns"])
        rec._min = (float(state["min_ns"]) if state["min_ns"] is not None
                    else math.inf)
        rec._max = (float(state["max_ns"]) if state["max_ns"] is not None
                    else -math.inf)
        running = state["running"]
        rec._running.count = int(running["count"])
        rec._running._mean = float(running["mean"])
        rec._running._m2 = float(running["m2"])
        rng_state = state.get("rng_state")
        if rng_state is not None:
            # JSON round-trips turn the nested state ints into ints already;
            # numpy validates the bit-generator name on assignment.
            rec._rng.bit_generator.state = rng_state
        return rec


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; the conventional average for speedup ratios."""
    vals = [v for v in values]
    if not vals:
        return 0.0
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(vals))))


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean; appropriate for averaging rates such as IPC."""
    vals = [v for v in values]
    if not vals:
        return 0.0
    if any(v <= 0 for v in vals):
        raise ValueError("harmonic mean requires positive values")
    return len(vals) / sum(1.0 / v for v in vals)


def normalize_to(values: Dict[str, float], reference: str) -> Dict[str, float]:
    """Normalize a mapping of series values to one reference key.

    Matches the paper's presentation style ("normalized to the Baseline").
    """
    if reference not in values:
        raise KeyError(f"reference series {reference!r} missing")
    ref = values[reference]
    if ref == 0:
        raise ValueError("reference value is zero; cannot normalize")
    return {k: v / ref for k, v in values.items()}
