"""Crash-safe file replacement primitives.

Every durable artifact in the repo — sweep result rows, captured trace
files, mid-run checkpoints — goes through the same discipline: write to a
temp file in the destination directory, fsync the data, ``os.replace``
onto the final name, then fsync the directory so the rename itself is on
stable storage.  A reader can then trust any file it finds under the
final name: it is either the complete old content or the complete new
content, never a torn write, even across SIGKILL or power loss mid-write.

:func:`fsync_atomic_write` covers the common "replace with these bytes"
case (historically it lived in :mod:`repro.sweep.storage`, which still
re-exports it).  :func:`atomic_binary_writer` is the streaming variant:
it hands the caller an open temp-file handle so arbitrarily large content
(a multi-gigabyte trace capture) can be produced in bounded memory and
still finalized atomically.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import BinaryIO, Iterator, Union

__all__ = ["atomic_binary_writer", "fsync_atomic_write"]


def _fsync_dir(directory: Path) -> None:
    dir_fd = os.open(str(directory), os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def fsync_atomic_write(path: Path, data: Union[str, bytes]) -> None:
    """Atomically and durably replace ``path`` with ``data``.

    Write to a temp file in the same directory, fsync it, ``os.replace``
    onto the destination, then fsync the directory so the rename itself
    is on stable storage.  Readers see either the old or the complete new
    content — never a torn row — even across a crash mid-write.
    """
    payload = data.encode("utf-8") if isinstance(data, str) else data
    with atomic_binary_writer(Path(path)) as fh:
        fh.write(payload)


@contextmanager
def atomic_binary_writer(path: Path) -> Iterator[BinaryIO]:
    """Yield a temp-file handle that atomically replaces ``path`` on exit.

    The handle is an ordinary buffered binary file open for writing; the
    caller may stream any amount of data through it.  If the ``with``
    body completes, the temp file is fsynced and renamed onto ``path``
    (directory fsynced too).  If the body raises — or the process dies —
    the destination is untouched; at worst a ``.<name>.*.tmp`` orphan is
    left beside it.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                               prefix=f".{path.name}.", suffix=".tmp")
    fh = os.fdopen(fd, "wb")
    try:
        yield fh
        fh.flush()
        os.fsync(fh.fileno())
        fh.close()
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    except BaseException:
        try:
            fh.close()
        except OSError:
            pass
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
