"""Figure 14: IPC normalized to Baseline.

Paper: ESD improves IPC for all applications (up to 2.4x) and beats
Dedup_SHA1 (up to 2.5x) and DeWrite (up to 1.8x); Dedup_SHA1 lowers IPC
for most applications.
"""

from repro.analysis.experiments import fig14_ipc


def test_fig14_ipc(benchmark, evaluation_grid, emit):
    result = benchmark.pedantic(
        fig14_ipc, args=(evaluation_grid,), rounds=1, iterations=1)
    emit("fig14_ipc", result.render())
    assert result.geomean("ESD") > 1.0
    assert result.geomean("ESD") > result.geomean("Dedup_SHA1")
    assert result.geomean("ESD") > result.geomean("DeWrite")
    # Dedup_SHA1 lowers IPC for at least half the applications.
    below = sum(1 for per in result.ipc_ratios.values()
                if per["Dedup_SHA1"] < 1.0)
    assert below >= len(result.ipc_ratios) / 2
