"""Figure 2: worst-case performance of inline dedup (leela, lbm).

Paper: straightforwardly applying inline deduplication can significantly
degrade performance in the worst case; ESD does not.
"""

from repro.analysis.experiments import fig2_worst_case


def test_fig2_worst_case(benchmark, emit):
    result = benchmark.pedantic(
        fig2_worst_case, kwargs={"requests": 15_000}, rounds=1, iterations=1)
    emit("fig02_worst_case", result.render())
    leela = result.normalized_ipc["leela"]
    # Full dedup degrades the worst-case app; ESD stays at/above Baseline.
    assert leela["Dedup_SHA1"] < 0.8
    assert leela["DeWrite"] < 0.8
    assert leela["ESD"] > 0.95
    lbm = result.normalized_ipc["lbm"]
    assert lbm["ESD"] >= lbm["Dedup_SHA1"]
