"""Extension experiment: NV-Dedup (related work) and ESD-Delta.

Beyond the paper's evaluation grid: the NV-Dedup related-work scheme
(two-tier weak/strong fingerprinting, Wang et al. TC'18) and the ESD-Delta
extension (partial-match deduplication on ESD's per-word ECC structure,
in the spirit of the BCD work the paper cites).
"""

from repro.analysis.reporting import format_table
from repro.sim import run_app, scaled_system_config

SCHEMES = ["Baseline", "Dedup_SHA1", "NV-Dedup", "ESD", "ESD-Delta"]


def run_extensions(app: str = "mcf", requests: int = 15_000):
    system = scaled_system_config()
    out = {}
    for name in SCHEMES:
        out[name] = run_app(app, [name], requests=requests,
                            system=system)[name]
    return out


def test_extension_schemes(benchmark, emit):
    results = benchmark.pedantic(run_extensions, rounds=1, iterations=1)
    base = results["Baseline"]
    rows = []
    for name in SCHEMES:
        r = results[name]
        rows.append([
            name,
            r.write_reduction * 100,
            base.mean_write_latency_ns / r.mean_write_latency_ns,
            r.total_energy_nj / base.total_energy_nj,
            r.pcm_data_writes,
        ])
    emit("extension_schemes", format_table(
        ["scheme", "write_reduction_%", "write_speedup", "energy_vs_base",
         "pcm_data_writes"],
        rows, title="Extensions on mcf: NV-Dedup (related work) and "
                    "ESD-Delta (partial-match)"))

    # NV-Dedup sits between Dedup_SHA1 and ESD on write latency: it skips
    # strong hashes for unique lines but still pays them for duplicates
    # plus the full-dedup NVMM lookups.
    assert (results["NV-Dedup"].mean_write_latency_ns
            < results["Dedup_SHA1"].mean_write_latency_ns)
    assert (results["ESD"].mean_write_latency_ns
            < results["NV-Dedup"].mean_write_latency_ns)
    # ESD-Delta never writes more data lines than plain ESD.
    assert (results["ESD-Delta"].pcm_data_writes
            <= results["ESD"].pcm_data_writes)
    # All extensions remain integrity-clean (the engine would have raised).
    assert results["ESD-Delta"].write_reduction >= results[
        "ESD"].write_reduction - 0.01


def _near_duplicate_trace(num_writes: int = 6_000, seed: int = 31):
    """A stream where most lines are one-word mutations of hot bases.

    Exact dedup sees almost no duplicates here; word-granular delta dedup
    sees almost nothing *but* duplicates.
    """
    import numpy as np
    from repro.common.types import AccessType, MemoryRequest
    rng = np.random.default_rng(seed)
    bases = [rng.integers(0, 256, 64, dtype=np.uint8).tobytes()
             for _ in range(8)]
    trace = []
    t = 0.0
    for i in range(num_writes):
        t += float(rng.exponential(40.0))
        base = bases[int(rng.integers(0, len(bases)))]
        buf = bytearray(base)
        word = int(rng.integers(0, 8))
        buf[word * 8:(word + 1) * 8] = rng.integers(
            0, 256, 8, dtype=np.uint8).tobytes()
        trace.append(MemoryRequest(
            address=(i % 4096) * 64, access=AccessType.WRITE,
            data=bytes(buf), issue_time_ns=t, seq=i))
    return trace


def test_extension_delta_on_near_duplicates(benchmark, emit):
    """ESD-Delta's habitat: similar-but-not-identical content."""
    from repro.dedup import make_scheme
    from repro.sim import SimulationEngine

    def run():
        trace = _near_duplicate_trace()
        out = {}
        for name in ("ESD", "ESD-Delta"):
            engine = SimulationEngine(
                make_scheme(name, scaled_system_config()))
            out[name] = engine.run(iter(list(trace)), app="neardup",
                                   total_hint=len(trace))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    esd, delta = results["ESD"], results["ESD-Delta"]
    rows = [[name, r.pcm_data_writes,
             r.energy_nj.get("pcm_write", 0.0) / 1e3,
             r.write_reduction * 100]
            for name, r in results.items()]
    emit("extension_delta_neardup", format_table(
        ["scheme", "pcm_data_writes", "pcm_write_energy_uJ",
         "write_reduction_%"],
        rows, title="Near-duplicate stream (1 mutated word per line): "
                    "delta dedup vs exact dedup"))
    # Exact dedup is nearly blind to one-word mutations; delta dedup
    # eliminates the bulk of the full-line writes.
    assert esd.write_reduction < 0.2
    assert delta.write_reduction > 0.6
    assert delta.pcm_data_writes < esd.pcm_data_writes / 2
    # And the PCM write energy drops accordingly.
    assert (delta.energy_nj.get("pcm_write", 0.0)
            < esd.energy_nj.get("pcm_write", 0.0) / 2)
