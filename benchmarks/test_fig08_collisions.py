"""Figure 8: fingerprint collision probabilities normalized to CRC.

Paper: the CRC's collision probability is orders of magnitude above the
other fingerprints, which is why DeWrite must verify CRC matches by
reading and comparing; the 64-bit ECC matches MD5/SHA1 in practice once
matches are confirmed by byte comparison.
"""

from repro.analysis.experiments import fig8_collisions


def test_fig8_collision_probabilities(benchmark, emit):
    result = benchmark.pedantic(
        fig8_collisions, kwargs={"num_lines": 60_000}, rounds=1, iterations=1)
    emit("fig08_collisions", result.render())
    # CRC32's analytic collision probability towers over the rest.
    crc_prob = result.rows["crc32"][2]
    for name in ("ecc", "md5", "sha1"):
        assert result.rows[name][2] < crc_prob / 1e6
    # Empirically: zero collisions for ECC/MD5/SHA1 on this corpus.
    assert result.rows["ecc"][1] == 0
    assert result.rows["md5"][1] == 0
    assert result.rows["sha1"][1] == 0
