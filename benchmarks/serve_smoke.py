#!/usr/bin/env python3
"""CI smoke gate for the dedup-as-a-service front end.

Spawns the real CLI server as a subprocess (``repro serve`` on an
ephemeral port), streams deterministic traces through the
:class:`~repro.serve.client.ServeClient` SDK for several schemes, and
hard-gates on two properties:

* **Parity** — each served session's finalize payload (summary row and
  the full lossless result state) must be bit-identical to a direct
  in-process :meth:`SimulationEngine.run` of the same trace.  Sessions
  run sequentially, so no interleaving caveats apply: every byte,
  including the memo-cache statistics, must match.
* **Clean shutdown** — SIGTERM must drain and exit 0 with the CLI's
  "drained clean" notice.

Exit status: 0 on success, 2 on any parity or shutdown failure (the
serve path silently corrupting results or wedging on shutdown is a
correctness regression, never acceptable).  Timing is not measured
here — that is ``perf_smoke.py``'s ``serve_throughput`` section.

``--workers N`` runs the same gate against the multi-process engine
back end (each tenant gets its own label, so sessions spread across the
worker pool by the affinity hash); sequential sessions are full
bit-exact in every mode, so the parity check is unchanged.

Usage::

    PYTHONPATH=src python benchmarks/serve_smoke.py [--workers N]
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
from pathlib import Path
from typing import List, Tuple

REPO = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(0, str(REPO / "src"))

from repro.registry import make_scheme
from repro.serve import ServeClient
from repro.sim.engine import EngineConfig, SimulationEngine
from repro.sim.export import result_to_state
from repro.sim.runner import scaled_system_config
from repro.workloads.generator import TraceGenerator

#: (scheme, app, requests, seed) — the paper's headliner plus the two
#: bracketing baselines, each on a different workload profile.
SESSIONS: Tuple[Tuple[str, str, int, int], ...] = (
    ("ESD", "gcc", 3000, 11),
    ("Baseline", "lbm", 2000, 12),
    ("DeWrite", "deepsjeng", 2500, 13),
)

ANNOUNCE = re.compile(r"serving on .*:(\d+)")


def spawn_server(workers: int) -> Tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--workers", str(workers)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True)
    assert proc.stdout is not None
    line = proc.stdout.readline()
    match = ANNOUNCE.match(line)
    if not match:
        proc.kill()
        out, err = proc.communicate()
        raise SystemExit(f"FAIL: no announce line (got {line!r}); "
                         f"stderr:\n{err}")
    return proc, int(match.group(1))


def direct_payload(scheme: str, trace: List, app: str) -> dict:
    engine = SimulationEngine(make_scheme(scheme, scaled_system_config()),
                              EngineConfig())
    result = engine.run(iter(trace), app=app, total_hint=len(trace))
    return {"summary": result.summary_row(),
            "state": result_to_state(result)}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=1,
                        help="engine worker processes for the spawned "
                             "server (default: 1, the in-process path)")
    args = parser.parse_args()
    failures: List[str] = []
    proc, port = spawn_server(args.workers)
    try:
        for scheme, app, requests, seed in SESSIONS:
            trace = TraceGenerator(app, seed=seed).generate_list(requests)
            with ServeClient("127.0.0.1", port) as client:
                served = client.run_trace(
                    iter(trace), scheme, tenant=f"ci-{scheme}", app=app,
                    total_hint=len(trace))
            expected = direct_payload(scheme, trace, app)
            for part in ("summary", "state"):
                if served[part] != expected[part]:
                    failures.append(
                        f"{scheme}/{app}: served {part} != direct {part}")
            status = "ok" if served == expected else "MISMATCH"
            print(f"{scheme:10s} {app:10s} {requests:5d} requests: {status}")
        proc.send_signal(signal.SIGTERM)
        try:
            out, err = proc.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            out, err = proc.communicate()
            failures.append("server did not exit within 60s of SIGTERM")
        else:
            if proc.returncode != 0:
                failures.append(
                    f"server exited {proc.returncode} on SIGTERM; "
                    f"stderr:\n{err}")
            if "drained clean" not in out:
                failures.append(
                    f"no 'drained clean' notice; stdout:\n{out}")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 2
    print(f"serve smoke (workers={args.workers}): parity and clean "
          f"shutdown ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
