"""Shared fixtures for the benchmark harness.

The heavyweight input to most evaluation figures is the (apps x schemes)
simulation grid; it is built once per session and shared.  Each benchmark
prints the figure's rows/series (the paper-shaped output) and also writes
them to ``benchmarks/output/<figure>.txt`` so results survive the run.
"""

import pathlib

import pytest

from repro.analysis.experiments import REPRESENTATIVE_APPS, run_evaluation_grid

#: Requests per application for the shared grid.  Large enough for the
#: scaled metadata caches to come under pressure (the regime the paper's
#: full-scale traces live in), small enough for a minutes-scale run.
GRID_REQUESTS = 20_000

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def evaluation_grid():
    """The shared (8 representative apps x 4 schemes) simulation grid."""
    return run_evaluation_grid(REPRESENTATIVE_APPS, requests=GRID_REQUESTS)


@pytest.fixture(scope="session")
def output_dir():
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def emit(output_dir):
    """Print a figure's rendered rows and persist them to disk."""
    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (output_dir / f"{name}.txt").write_text(text + "\n")
    return _emit
