"""Shared fixtures for the benchmark harness.

The heavyweight input to most evaluation figures is the (apps x schemes)
simulation grid; it is built once per session and shared.  Each benchmark
prints the figure's rows/series (the paper-shaped output) and also writes
them to ``benchmarks/output/<figure>.txt`` so results survive the run.

Sweep orchestration: set ``REPRO_SWEEP_STORE`` to a directory to build the
grid through ``repro.sweep`` — parallel workers plus a content-addressed
result store, so repeated benchmark sessions (and any CLI sweeps over the
same configuration) reuse each other's simulations instead of recomputing
them.  ``REPRO_SWEEP_JOBS`` caps the worker count (default: cpu count).

    REPRO_SWEEP_STORE=.sweep_cache REPRO_SWEEP_JOBS=8 \
        PYTHONPATH=src python -m pytest benchmarks -q
"""

import os
import pathlib

import pytest

from repro.analysis.experiments import REPRESENTATIVE_APPS, run_evaluation_grid

#: Requests per application for the shared grid.  Large enough for the
#: scaled metadata caches to come under pressure (the regime the paper's
#: full-scale traces live in), small enough for a minutes-scale run.
GRID_REQUESTS = 20_000

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: Optional sweep-orchestration overrides (see module docstring).
SWEEP_STORE = os.environ.get("REPRO_SWEEP_STORE")
SWEEP_JOBS = int(os.environ.get("REPRO_SWEEP_JOBS", "0")) or None


@pytest.fixture(scope="session")
def evaluation_grid():
    """The shared (8 representative apps x 4 schemes) simulation grid."""
    if SWEEP_STORE or SWEEP_JOBS:
        return run_evaluation_grid(REPRESENTATIVE_APPS,
                                   requests=GRID_REQUESTS,
                                   jobs=SWEEP_JOBS, store=SWEEP_STORE)
    return run_evaluation_grid(REPRESENTATIVE_APPS, requests=GRID_REQUESTS)


@pytest.fixture(scope="session")
def output_dir():
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def emit(output_dir):
    """Print a figure's rendered rows and persist them to disk."""
    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (output_dir / f"{name}.txt").write_text(text + "\n")
    return _emit
