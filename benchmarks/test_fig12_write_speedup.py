"""Figure 12: write speedup normalized to Baseline.

Paper: ESD speeds up writes for every application (up to 3.4x) and beats
Dedup_SHA1 (by up to 4.3x) and DeWrite (by up to 2.6x); Dedup_SHA1 helps
only a few high-duplication applications.
"""

from repro.analysis.experiments import fig12_write_speedup


def test_fig12_write_speedup(benchmark, evaluation_grid, emit):
    result = benchmark.pedantic(
        fig12_write_speedup, args=(evaluation_grid,), rounds=1, iterations=1)
    emit("fig12_write_speedup", result.render())
    # ESD helps on average and peaks well above 2x.
    assert result.geomean("ESD") > 1.0
    assert result.best("ESD") > 2.0
    # Ordering: ESD > DeWrite > Dedup_SHA1 in the mean.
    assert result.geomean("ESD") > result.geomean("DeWrite")
    assert result.geomean("DeWrite") > result.geomean("Dedup_SHA1")
    # Dedup_SHA1 degrades writes for most applications.
    below = sum(1 for per in result.speedups.values()
                if per["Dedup_SHA1"] < 1.0)
    assert below >= len(result.speedups) / 2
