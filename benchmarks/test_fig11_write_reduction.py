"""Figure 11: cache-line write reduction normalized to Baseline.

Paper: ESD reduces 47.8 % of writes on average (up to 99.9 % for
deepsjeng/roms); full-dedup schemes reduce ~18 pp more because they also
catch low-reference-count duplicates.
"""

from repro.analysis.experiments import fig11_write_reduction


def test_fig11_write_reduction(benchmark, evaluation_grid, emit):
    result = benchmark.pedantic(
        fig11_write_reduction, args=(evaluation_grid,),
        rounds=1, iterations=1)
    emit("fig11_write_reduction", result.render())
    # ESD eliminates a large share of writes...
    assert result.mean_reduction("ESD") > 0.35
    # ...but full deduplication eliminates at least as much.
    assert (result.mean_reduction("Dedup_SHA1")
            >= result.mean_reduction("ESD") - 0.01)
    # The zero-dominated apps approach total elimination for every scheme.
    assert result.reductions["deepsjeng"]["ESD"] > 0.95
