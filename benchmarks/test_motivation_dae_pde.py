"""Motivation experiment (Section II-C): why not DaE or PDE?

Regenerates the paper's argument for dedup-*before*-encryption with
selective filtering:

* DaE's dedup rate collapses to ~0 under counter-mode diffusion;
* PDE recovers full dedup and hides hash latency behind encryption, but
  burns fingerprint + encryption energy on every line — the stated reason
  the paper rejects it;
* ESD matches (most of) the dedup with a fraction of the energy.
"""

from repro.analysis.reporting import format_table
from repro.sim import run_app, scaled_system_config

SCHEMES = ["Baseline", "DaE", "PDE", "Dedup_SHA1", "ESD"]


def run_motivation(app: str = "gcc", requests: int = 15_000):
    results = {}
    system = scaled_system_config()
    for name in SCHEMES:
        results[name] = run_app(app, [name], requests=requests,
                                system=system)[name]
    return results


def test_motivation_dae_pde(benchmark, emit):
    results = benchmark.pedantic(run_motivation, rounds=1, iterations=1)
    base = results["Baseline"]
    rows = []
    for name in SCHEMES:
        r = results[name]
        rows.append([
            name,
            r.write_reduction * 100,
            base.mean_write_latency_ns / r.mean_write_latency_ns,
            r.total_energy_nj / base.total_energy_nj,
        ])
    emit("motivation_dae_pde", format_table(
        ["scheme", "write_reduction_%", "write_speedup", "energy_vs_base"],
        rows,
        title="Section II-C motivation: rejected dedup/encryption orderings "
              "(gcc)"))

    # DaE: diffusion destroys all duplicate structure.
    assert results["DaE"].write_reduction < 0.01
    # PDE: dedups like full dedup...
    assert results["PDE"].write_reduction > 0.4
    # ...with better latency than serial Dedup_SHA1...
    assert (results["PDE"].mean_write_latency_ns
            < results["Dedup_SHA1"].mean_write_latency_ns)
    # ...but pays more energy than ESD (the paper's rejection ground).
    assert results["PDE"].total_energy_nj > results["ESD"].total_energy_nj
    # ESD dominates on both axes.
    assert (results["ESD"].mean_write_latency_ns
            < results["PDE"].mean_write_latency_ns)
