"""Figure 16: energy consumption normalized to Baseline.

Paper: ESD reduces energy for all 20 applications — up to 69.3 % vs
Baseline, 69.2 % vs Dedup_SHA1, and 56.6 % vs DeWrite — by eliminating
both fingerprint computation energy and NVMM fingerprint accesses.
"""

from repro.analysis.experiments import fig16_energy


def test_fig16_energy(benchmark, evaluation_grid, emit):
    result = benchmark.pedantic(
        fig16_energy, args=(evaluation_grid,), rounds=1, iterations=1)
    emit("fig16_energy", result.render())
    # ESD saves energy vs Baseline on every app, and is the cheapest scheme.
    for app, per in result.normalized.items():
        assert per["ESD"] < 1.0, app
        assert per["ESD"] <= per["DeWrite"] + 1e-9, app
        assert per["ESD"] <= per["Dedup_SHA1"] + 1e-9, app
    # Peak savings exceed 40% (paper: up to ~69%).
    assert min(per["ESD"] for per in result.normalized.values()) < 0.6
