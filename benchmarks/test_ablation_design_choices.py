"""Ablation benches for ESD's design choices (beyond the paper's Fig. 18).

Each bench isolates one decision DESIGN.md calls out:

* LRCU decay ("regular refresh") period,
* the 1-byte referH budget with its overflow-rewrite rule,
* the byte-by-byte comparison read (safety) vs. trusting the ECC,
* bank-level parallelism (how much of ESD's win is queueing relief),
* the row buffer (what comparison reads cost without array locality).
"""

from repro.analysis.ablations import (
    ablate_bank_count,
    ablate_comparison_read,
    ablate_lrcu_decay,
    ablate_referh_width,
    ablate_row_buffer,
)
from repro.analysis.reporting import format_table

REQUESTS = 10_000


def test_ablation_lrcu_decay(benchmark, emit):
    rows, headers = benchmark.pedantic(
        ablate_lrcu_decay, kwargs={"requests": REQUESTS},
        rounds=1, iterations=1)
    emit("ablation_lrcu_decay",
         format_table(headers, rows, title="Ablation: LRCU decay period"))
    hit_rates = [row[1] for row in rows]
    assert all(0.0 <= h <= 1.0 for h in hit_rates)


def test_ablation_referh_width(benchmark, emit):
    rows, headers = benchmark.pedantic(
        ablate_referh_width, kwargs={"requests": REQUESTS},
        rounds=1, iterations=1)
    emit("ablation_referh",
         format_table(headers, rows,
                      title="Ablation: referH saturation budget"))
    by_limit = {row[0]: row for row in rows}
    # A tight budget overflow-rewrites more and never dedups more.
    assert by_limit[3][2] >= by_limit[255][2]
    assert by_limit[255][1] >= by_limit[3][1] - 0.02


def test_ablation_comparison_read(benchmark, emit):
    rows, headers = benchmark.pedantic(
        ablate_comparison_read, kwargs={"requests": REQUESTS},
        rounds=1, iterations=1)
    emit("ablation_comparison_read",
         format_table(headers, rows,
                      title="Ablation: byte-compare (safe) vs trust-ECC "
                            "(unsafe bound)"))
    verified, trusting = rows
    # Verification costs latency but not dedup coverage.
    assert verified[1] >= trusting[1]
    assert abs(verified[2] - trusting[2]) < 0.02


def test_ablation_bank_count(benchmark, emit):
    rows, headers = benchmark.pedantic(
        ablate_bank_count, kwargs={"requests": REQUESTS},
        rounds=1, iterations=1)
    emit("ablation_banks",
         format_table(headers, rows,
                      title="Ablation: PCM bank-level parallelism"))
    # ESD keeps a speedup at every bank count, and the baseline's latency
    # falls monotonically as banks are added.
    baselines = [row[1] for row in rows]
    assert baselines == sorted(baselines, reverse=True)
    assert all(row[3] > 1.0 for row in rows)


def test_ablation_row_buffer(benchmark, emit):
    rows, headers = benchmark.pedantic(
        ablate_row_buffer, kwargs={"requests": REQUESTS},
        rounds=1, iterations=1)
    emit("ablation_row_buffer",
         format_table(headers, rows,
                      title="Ablation: row-buffer hit latency (75 ns = "
                            "no row buffer)"))
    # Slower row hits monotonically slow ESD's write path (its comparison
    # reads target hot rows).
    writes = [row[1] for row in rows]
    assert writes == sorted(writes)
