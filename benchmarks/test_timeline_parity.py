"""Timeline parity gate: the refactor-safe fingerprint of the grid.

The StageTimeline refactor promises that moving stage *attribution* into
the declarative timeline never moves the simulated *numbers*: summary
metrics are pure functions of completion times, which the timeline
reproduces operation-for-operation.  This gate freezes the full-precision
summary rows of the shared evaluation grid to
``benchmarks/output/timeline_parity.txt`` so any change to the write-path
plumbing can be diffed in one command:

    # before the change (any git ref), warm a shared result store:
    REPRO_SWEEP_STORE=.sweep_cache PYTHONPATH=src \
        python -m pytest benchmarks/test_timeline_parity.py -q
    cp benchmarks/output/timeline_parity.txt /tmp/parity_before.txt

    # after the change (cached cells replay instantly where digests agree):
    REPRO_SWEEP_STORE=.sweep_cache PYTHONPATH=src \
        python -m pytest benchmarks/test_timeline_parity.py -q
    diff /tmp/parity_before.txt benchmarks/output/timeline_parity.txt

An empty diff is bit-exact parity.  Floats are rendered with ``repr`` so
the file distinguishes values that differ only in the last ulp.

The test itself asserts the structural invariants the rows rely on:
every cell carries both a write-path and a read-path profile, and the
write profile's fractions form a distribution (the aggregate face of
timeline conservation — nothing double-counted, nothing dropped).
"""

import pytest


def _render_rows(grid) -> str:
    lines = []
    for (app, scheme) in sorted(grid):
        row = grid[(app, scheme)].summary_row()
        cells = " ".join(f"{key}={value!r}"
                         for key, value in sorted(row.items()))
        lines.append(f"{app}/{scheme} {cells}")
    return "\n".join(lines)


def test_timeline_parity(evaluation_grid, emit):
    emit("timeline_parity", _render_rows(evaluation_grid))

    for (app, scheme), result in evaluation_grid.items():
        breakdown_total = result.breakdown.total()
        assert breakdown_total > 0.0, f"{app}/{scheme} has no write profile"
        read_total = result.read_breakdown.total()
        assert read_total > 0.0, f"{app}/{scheme} has no read profile"

        # The profile fractions must form a distribution.
        fractions = result.breakdown.as_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
