"""Figure 3: reference-count distribution (content locality).

Paper: num1000+ lines are 0.08 % of unique lines yet 42.7 % of pre-dedup
volume, averaged over the 20 applications.
"""

from repro.analysis.experiments import fig3_content_locality


def test_fig3_content_locality(benchmark, emit):
    result = benchmark.pedantic(
        fig3_content_locality, kwargs={"requests": 20_000},
        rounds=1, iterations=1)
    emit("fig03_content_locality", result.render())
    unique_share, volume_share = result.headline
    # Content locality shape: a small sliver of unique lines carries an
    # outsized share of the written volume.  (The paper's 0.08 % / 42.7 %
    # headline uses billion-request footprints; at simulation scale the
    # unique-line population is small, inflating the unique share, but the
    # concentration shape is preserved.)
    assert unique_share < 0.05
    assert volume_share > 0.2
    assert volume_share > unique_share * 5
    # num1 is the mirror image: many lines, proportionally little volume.
    assert result.volume_shares["num1"] < result.unique_shares["num1"]
