"""Figure 17: write-latency profile by pipeline stage.

Paper: Dedup_SHA1 spends ~80 % of write latency computing fingerprints;
DeWrite ~10 % on (CRC) fingerprints plus ~23 % on fingerprint NVMM
lookups; ESD spends zero on either — its write latency is dominated by
the actual line reads and writes.
"""

from repro.analysis.experiments import fig17_latency_profile
from repro.common.types import WritePathStage


def test_fig17_latency_profile(benchmark, evaluation_grid, emit):
    result = benchmark.pedantic(
        fig17_latency_profile, args=(evaluation_grid,),
        rounds=1, iterations=1)
    emit("fig17_latency_profile", result.render())
    sha1 = result.profiles["Dedup_SHA1"]
    dewrite = result.profiles["DeWrite"]
    esd = result.profiles["ESD"]
    # SHA-1 fingerprint computation dominates Dedup_SHA1.
    assert sha1[WritePathStage.FINGERPRINT_COMPUTE] > 0.4
    # DeWrite's compute share is an order of magnitude smaller than SHA1's.
    assert (dewrite.get(WritePathStage.FINGERPRINT_COMPUTE, 0.0)
            < sha1[WritePathStage.FINGERPRINT_COMPUTE] / 3)
    # Both full-dedup schemes pay NVMM lookups; ESD pays neither stage.
    assert sha1.get(WritePathStage.FINGERPRINT_NVMM_LOOKUP, 0.0) > 0.0
    assert dewrite.get(WritePathStage.FINGERPRINT_NVMM_LOOKUP, 0.0) > 0.0
    assert WritePathStage.FINGERPRINT_COMPUTE not in esd
    assert WritePathStage.FINGERPRINT_NVMM_LOOKUP not in esd
    # ESD's latency is dominated by real line reads/writes.
    rw_share = (esd.get(WritePathStage.WRITE_UNIQUE, 0.0)
                + esd.get(WritePathStage.READ_FOR_COMPARISON, 0.0))
    assert rw_share > 0.5
