"""Figure 5: duplicate filter split + fingerprint NVMM_lookup overhead.

Paper: 51.0 % of duplicates are filtered by cached fingerprints and only
13.7 % by the NVMM-resident store, yet those NVMM lookups cost up to
90.7 % (avg 49.2 %) of write-path time in full-dedup schemes.
"""

from repro.analysis.experiments import fig5_lookup_overhead


def test_fig5_nvmm_lookup_overhead(benchmark, emit):
    result = benchmark.pedantic(
        fig5_lookup_overhead, kwargs={"requests": 20_000},
        rounds=1, iterations=1)
    emit("fig05_nvmm_lookup", result.render())
    cache_avg, nvmm_avg, lookup_share = result.averages()
    # Most duplicates are caught by the cache; a minority by NVMM.
    assert cache_avg > nvmm_avg
    assert nvmm_avg > 0.0
    # The NVMM lookups nonetheless consume a material share of write time.
    assert lookup_share > 0.05
