"""Figure 1: duplicate rate of cache lines across all 20 applications.

Paper: 33.1 %-99.9 % per application, 62.9 % mean; deepsjeng and roms at
~99.9 % driven by zero lines.
"""

from repro.analysis.experiments import fig1_duplicate_rate


def test_fig1_duplicate_rate(benchmark, emit):
    result = benchmark.pedantic(
        fig1_duplicate_rate, kwargs={"requests": 20_000},
        rounds=1, iterations=1)
    emit("fig01_duplicate_rate", result.render())
    # Shape assertions against the paper.
    assert abs(result.mean_rate - 0.629) < 0.05
    assert result.rates["deepsjeng"] > 0.99
    assert result.rates["roms"] > 0.99
    assert min(result.rates.values()) > 0.25
